//! Criterion microbenchmarks for the upper-bound computations (Table II's ingredients).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_core::bounds::{instance_upper_bound, BoundConfig, ExtraBound};
use rfc_core::problem::FairCliqueParams;
use rfc_datasets::synthetic::{power_law, PowerLawConfig};
use rfc_graph::VertexId;

fn bench_bounds(c: &mut Criterion) {
    let g = power_law(
        &PowerLawConfig {
            n: 2_000,
            edges_per_vertex: 8,
            triangle_prob: 0.4,
            prob_a: 0.5,
        },
        7,
    );
    let params = FairCliqueParams::new(3, 2).unwrap();
    // Bound the kind of instance the search actually evaluates: a vertex plus its
    // neighborhood (here, the highest-degree vertex).
    let v = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
    let mut instance: Vec<VertexId> = vec![v];
    instance.extend_from_slice(g.neighbors(v));

    let mut group = c.benchmark_group("bounds/neighborhood-instance");
    group.sample_size(30);
    for extra in ExtraBound::ALL {
        group.bench_with_input(
            BenchmarkId::new("instance_upper_bound", extra.label()),
            &extra,
            |b, &extra| {
                let config = BoundConfig::with_extra(extra);
                b.iter(|| instance_upper_bound(&g, &instance, params, &config));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("bounds/whole-graph-instance");
    group.sample_size(10);
    let all: Vec<VertexId> = g.vertices().collect();
    for extra in [
        ExtraBound::None,
        ExtraBound::ColorfulDegeneracy,
        ExtraBound::ColorfulPath,
    ] {
        group.bench_with_input(
            BenchmarkId::new("instance_upper_bound", extra.label()),
            &extra,
            |b, &extra| {
                let config = BoundConfig::with_extra(extra);
                b.iter(|| instance_upper_bound(&g, &all, params, &config));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
