//! Criterion microbenchmarks for the graph substrate: greedy coloring, core
//! decomposition, colorful core decomposition and the enhanced colorful k-core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_datasets::synthetic::{power_law, PowerLawConfig};
use rfc_graph::colorful::{colorful_core_decomposition, enhanced_colorful_k_core_mask};
use rfc_graph::coloring::greedy_coloring;
use rfc_graph::cores::core_decomposition;
use rfc_graph::AttributedGraph;

fn workload(n: usize) -> AttributedGraph {
    power_law(
        &PowerLawConfig {
            n,
            edges_per_vertex: 6,
            triangle_prob: 0.3,
            prob_a: 0.5,
        },
        42,
    )
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    group.sample_size(20);
    for n in [1_000usize, 4_000] {
        let g = workload(n);
        group.bench_with_input(BenchmarkId::new("greedy_coloring", n), &g, |b, g| {
            b.iter(|| greedy_coloring(g));
        });
    }
    group.finish();
}

fn bench_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("cores");
    group.sample_size(20);
    for n in [1_000usize, 4_000] {
        let g = workload(n);
        let coloring = greedy_coloring(&g);
        group.bench_with_input(BenchmarkId::new("core_decomposition", n), &g, |b, g| {
            b.iter(|| core_decomposition(g));
        });
        group.bench_with_input(
            BenchmarkId::new("colorful_core_decomposition", n),
            &g,
            |b, g| {
                b.iter(|| colorful_core_decomposition(g, &coloring));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("enhanced_colorful_3core", n),
            &g,
            |b, g| {
                b.iter(|| enhanced_colorful_k_core_mask(g, &coloring, 3));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coloring, bench_cores);
criterion_main!(benches);
