//! Benchmarks for the dynamic-graph subsystem: incremental commit+solve via
//! [`DynamicRfcSolver`] vs a full [`RfcSolver::new`] rebuild per batch, across churn
//! rates:
//!
//! * `low-churn` — tiny batches confined to the smallest component of the
//!   multi-component workload: the incremental solver re-reduces and re-searches
//!   only that component and replays everything else from cache.
//! * `high-churn` — large batches spread over the whole graph: close to the
//!   worst case for incrementality (most components dirty most of the time).
//!
//! Each measured iteration replays the entire update stream, paying the initial
//! full solve plus one commit+solve per batch, so the numbers compare end-to-end
//! maintenance cost. Both replay strategies must return identical per-batch optima
//! (asserted), and the dataset sweep writes machine-readable means to
//! `BENCH_dynamic.json` at the repository root.

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_bench::workloads::multi_component_graph;
use rfc_core::dynamic::DynamicRfcSolver;
use rfc_core::problem::FairnessModel;
use rfc_core::search::{SearchConfig, ThreadCount};
use rfc_core::solver::{Query, RfcSolver};
use rfc_datasets::updates::churn_stream;
use rfc_graph::delta::{GraphDelta, UpdateOp};
use rfc_graph::{AttributedGraph, VertexId};

fn query() -> Query {
    Query::new(FairnessModel::Relative { k: 3, delta: 1 })
        .with_config(SearchConfig::default().with_threads(ThreadCount::Serial))
}

/// One named workload: a base graph plus an update stream with commit markers.
struct Case {
    name: &'static str,
    graph: AttributedGraph,
    stream: Vec<UpdateOp>,
}

fn cases() -> Vec<Case> {
    let graph = multi_component_graph(6, 200, 7);
    // Low churn: 2-op batches confined to the smallest component (vertices 0..200).
    let small_component: Vec<VertexId> = (0..200).collect();
    let low = churn_stream(&graph, &small_component, 20, 2, 42);
    // High churn: 20-op batches across the whole graph.
    let everything: Vec<VertexId> = graph.vertices().collect();
    let high = churn_stream(&graph, &everything, 200, 20, 43);
    vec![
        Case {
            name: "low-churn",
            graph: graph.clone(),
            stream: low,
        },
        Case {
            name: "high-churn",
            graph,
            stream: high,
        },
    ]
}

/// Replays the stream through one [`DynamicRfcSolver`], solving after every
/// commit. Returns the sum of per-batch optimum sizes (a checksum both replay
/// strategies must agree on).
fn replay_incremental(base: &AttributedGraph, stream: &[UpdateOp]) -> u64 {
    let q = query();
    let mut solver = DynamicRfcSolver::new(base.clone());
    let mut checksum = solver
        .solve(&q)
        .expect("valid query")
        .best()
        .map_or(0, |c| c.size() as u64);
    for op in stream {
        if solver.apply_op(op).expect("stream is valid").is_some() {
            let solution = solver.solve(&q).expect("valid query");
            checksum += solution.best().map_or(0, |c| c.size() as u64);
        }
    }
    checksum
}

/// The baseline: maintains the graph through a [`GraphDelta`] and rebuilds a fresh
/// [`RfcSolver`] (full preprocessing + search) after every commit.
fn replay_rebuild(base: &AttributedGraph, stream: &[UpdateOp]) -> u64 {
    let q = query();
    let mut graph = base.clone();
    let mut delta = GraphDelta::new();
    let mut checksum = RfcSolver::new(graph.clone())
        .solve(&q)
        .expect("valid query")
        .best()
        .map_or(0, |c| c.size() as u64);
    for op in stream {
        if *op == UpdateOp::Commit {
            let tombstones = delta.tombstones();
            graph = delta.apply(&graph);
            delta = GraphDelta::with_tombstones(tombstones);
            let solution = RfcSolver::new(graph.clone())
                .solve(&q)
                .expect("valid query");
            checksum += solution.best().map_or(0, |c| c.size() as u64);
        } else {
            delta.apply_op(&graph, op).expect("stream is valid");
        }
    }
    checksum
}

fn bench_dynamic(c: &mut Criterion) {
    let cases = cases();
    let mut group = c.benchmark_group("dynamic/commit-solve");
    group.sample_size(10);
    for case in &cases {
        let expected = replay_rebuild(&case.graph, &case.stream);
        assert_eq!(
            replay_incremental(&case.graph, &case.stream),
            expected,
            "{}: incremental and rebuild optima diverged",
            case.name
        );
        group.bench_function(BenchmarkId::new("incremental", case.name), |b| {
            b.iter(|| black_box(replay_incremental(&case.graph, &case.stream)));
        });
        group.bench_function(BenchmarkId::new("rebuild", case.name), |b| {
            b.iter(|| black_box(replay_rebuild(&case.graph, &case.stream)));
        });
    }
    group.finish();

    // Machine-readable means -> BENCH_dynamic.json at the repository root.
    let mut entries = Vec::new();
    for case in &cases {
        for (label, replay) in [
            (
                "incremental",
                replay_incremental as fn(&AttributedGraph, &[UpdateOp]) -> u64,
            ),
            (
                "rebuild",
                replay_rebuild as fn(&AttributedGraph, &[UpdateOp]) -> u64,
            ),
        ] {
            let _warmup = replay(&case.graph, &case.stream);
            const RUNS: u32 = 5;
            let started = Instant::now();
            for _ in 0..RUNS {
                black_box(replay(&case.graph, &case.stream));
            }
            let mean_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS);
            entries.push((format!("{}/{label}", case.name), mean_us));
        }
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dynamic.json");
    match rfc_bench::report::write_json_results(&path, "dynamic/commit-solve", &entries) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
