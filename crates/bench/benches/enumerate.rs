//! Benchmarks for the maximal-fair-clique enumeration subsystem:
//!
//! * `enumerate/datasets` — full serial enumeration (counting sink, constant memory)
//!   across representative workloads: the multi-component parallel-scaling graph, a
//!   denser single-blob ER graph, and the NBA / IMDB case studies at their paper
//!   parameters.
//! * `enumerate/threads` — the multi-component workload under a serial, 2-worker and
//!   4-worker enumeration, exercising the channel-funneled parallel fan-out.
//!
//! Besides the human-readable criterion output, the dataset sweep writes
//! machine-readable mean timings *and clique counts* to `BENCH_enumerate.json` at the
//! repository root (via [`rfc_bench::report::write_json_counted_results`]) so the
//! enumeration trajectory can be tracked across commits alongside
//! `BENCH_parallel.json`.

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_bench::workloads::multi_component_graph;
use rfc_core::enumerate::{CountSink, EnumQuery};
use rfc_core::problem::FairnessModel;
use rfc_core::search::ThreadCount;
use rfc_core::solver::RfcSolver;
use rfc_datasets::case_study::CaseStudy;
use rfc_datasets::synthetic::erdos_renyi;
use rfc_graph::AttributedGraph;

/// The dataset sweep shared by the criterion group and the JSON emitter.
fn dataset_cases() -> Vec<(&'static str, AttributedGraph, FairnessModel)> {
    let mut cases: Vec<(&'static str, AttributedGraph, FairnessModel)> = vec![
        (
            "multi-component",
            multi_component_graph(6, 200, 7),
            FairnessModel::Relative { k: 3, delta: 1 },
        ),
        (
            "er-150-dense",
            erdos_renyi(150, 0.2, 0.5, 21),
            FairnessModel::Relative { k: 2, delta: 1 },
        ),
    ];
    for case in [CaseStudy::Nba, CaseStudy::Imdb] {
        let cs = case.generate();
        let model = FairnessModel::Relative {
            k: cs.default_k,
            delta: cs.default_delta,
        };
        let name = match case {
            CaseStudy::Nba => "nba",
            _ => "imdb",
        };
        cases.push((name, cs.graph, model));
    }
    cases
}

/// One full serial enumeration with a counting sink; returns the clique count.
fn enumerate_count(solver: &RfcSolver, model: FairnessModel, threads: ThreadCount) -> u64 {
    let mut sink = CountSink::new();
    let outcome = solver
        .enumerate(&EnumQuery::new(model).with_threads(threads), &mut sink)
        .expect("valid query");
    assert!(outcome.termination.is_complete());
    sink.count()
}

fn bench_datasets(c: &mut Criterion) {
    let cases = dataset_cases();
    let mut group = c.benchmark_group("enumerate/datasets");
    group.sample_size(10);
    for (name, graph, model) in &cases {
        let solver = RfcSolver::new(graph.clone());
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(enumerate_count(&solver, *model, ThreadCount::Serial)));
        });
    }
    group.finish();

    // Machine-readable mean timings + clique counts -> BENCH_enumerate.json at the
    // repository root, so the enumeration trajectory is tracked without parsing
    // stdout.
    let mut entries = Vec::new();
    for (name, graph, model) in &cases {
        let solver = RfcSolver::new(graph.clone());
        let count = enumerate_count(&solver, *model, ThreadCount::Serial); // warm-up
        const RUNS: u32 = 10;
        let started = Instant::now();
        for _ in 0..RUNS {
            black_box(enumerate_count(&solver, *model, ThreadCount::Serial));
        }
        let mean_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS);
        entries.push((name.to_string(), mean_us, count));
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_enumerate.json");
    match rfc_bench::report::write_json_counted_results(&path, "enumerate/datasets", &entries) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn bench_thread_scaling(c: &mut Criterion) {
    let g = multi_component_graph(6, 200, 7);
    let model = FairnessModel::Relative { k: 3, delta: 1 };
    let solver = RfcSolver::new(g);
    let serial_count = enumerate_count(&solver, model, ThreadCount::Serial);
    let mut group = c.benchmark_group("enumerate/threads");
    group.sample_size(10);
    for (label, threads) in [
        ("serial", ThreadCount::Serial),
        ("2-threads", ThreadCount::Fixed(2)),
        ("4-threads", ThreadCount::Fixed(4)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let count = enumerate_count(&solver, model, threads);
                assert_eq!(count, serial_count, "thread count changed the set size");
                black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datasets, bench_thread_scaling);
criterion_main!(benches);
