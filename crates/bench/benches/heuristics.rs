//! Criterion microbenchmarks for the heuristic framework (Fig. 8's HeurRFC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_core::heuristic::{colorful_deg_heur, deg_heur, heur_rfc, HeuristicConfig};
use rfc_core::problem::FairCliqueParams;
use rfc_datasets::PaperDataset;

fn bench_heuristics(c: &mut Criterion) {
    for dataset in [PaperDataset::Aminer, PaperDataset::Themarker] {
        let spec = dataset.spec();
        let g = spec.generate();
        let params = FairCliqueParams::new(spec.default_k, spec.default_delta).unwrap();
        let cfg = HeuristicConfig::default();
        let mut group = c.benchmark_group(format!("heuristics/{}", spec.name));
        group.sample_size(20);
        group.bench_function(BenchmarkId::from_parameter("DegHeur"), |b| {
            b.iter(|| deg_heur(&g, params, &cfg));
        });
        group.bench_function(BenchmarkId::from_parameter("ColorfulDegHeur"), |b| {
            b.iter(|| colorful_deg_heur(&g, params, &cfg));
        });
        group.bench_function(BenchmarkId::from_parameter("HeurRFC"), |b| {
            b.iter(|| heur_rfc(&g, params, &cfg));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
