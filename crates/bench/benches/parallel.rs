//! Scaling microbenchmarks for the parallel search subsystem:
//!
//! * `parallel/threads` — the full `max_fair_clique` on the multi-component scaling
//!   workload with a serial, 2-worker and 4-worker search. The workload plants the
//!   optimum in the largest (last-discovered) component, so largest-first dispatch plus
//!   the shared incumbent pay off even on a single hardware thread.
//! * `parallel/intersection` — the branch hot loop in isolation: `candidates ∩ N(v)`
//!   as the pre-PR sorted-vec filter (binary-searched `has_edge` per candidate) versus
//!   the bitset word-wise AND the search now uses.
//!
//! Besides the human-readable criterion output, the thread-scaling benchmark writes
//! machine-readable mean timings to `BENCH_parallel.json` at the repository root (via
//! [`rfc_bench::report::write_json_results`]) so the perf trajectory can be tracked
//! across commits.

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_bench::workloads::multi_component_graph;
use rfc_core::bounds::ExtraBound;
use rfc_core::problem::FairCliqueParams;
use rfc_core::reduction::ReductionConfig;
use rfc_core::search::{max_fair_clique, SearchConfig, ThreadCount};
use rfc_datasets::synthetic::erdos_renyi;
use rfc_graph::bitset::{BitMatrix, Bitset};
use rfc_graph::VertexId;

/// The thread-count sweep shared by the criterion group and the JSON emitter.
const THREAD_CASES: [(&str, ThreadCount); 3] = [
    ("serial", ThreadCount::Serial),
    ("2-threads", ThreadCount::Fixed(2)),
    ("4-threads", ThreadCount::Fixed(4)),
];

/// The measured configuration: no heuristic warm start (the incumbent must actually
/// travel between components for the dispatch order to matter) and only the
/// vertex-level reduction, so the measured time is dominated by the branch-and-bound
/// the thread pool actually scales rather than the shared reduction pipeline.
fn scaling_config(threads: ThreadCount) -> SearchConfig {
    SearchConfig {
        reductions: ReductionConfig::core_only(),
        threads,
        ..SearchConfig::with_bounds(ExtraBound::ColorfulDegeneracy)
    }
}

fn bench_thread_scaling(c: &mut Criterion) {
    let g = multi_component_graph(6, 200, 7);
    let params = FairCliqueParams::new(3, 1).unwrap();
    let mut group = c.benchmark_group("parallel/threads");
    group.sample_size(10);
    for (label, threads) in THREAD_CASES {
        let config = scaling_config(threads);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| max_fair_clique(&g, params, &config));
        });
    }
    group.finish();

    // Machine-readable mean timings per thread count -> BENCH_parallel.json at the
    // repository root, so the perf trajectory is tracked without parsing stdout.
    let mut entries = Vec::new();
    for (label, threads) in THREAD_CASES {
        let config = scaling_config(threads);
        black_box(max_fair_clique(&g, params, &config)); // warm-up
        const RUNS: u32 = 10;
        let started = Instant::now();
        for _ in 0..RUNS {
            black_box(max_fair_clique(&g, params, &config));
        }
        let mean_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS);
        entries.push((label.to_string(), mean_us));
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    match rfc_bench::report::write_json_results(&path, "parallel/threads", &entries) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn bench_candidate_intersection(c: &mut Criterion) {
    // One dense-ish component, the shape the branch recursion sees after reduction.
    let g = erdos_renyi(600, 0.08, 0.5, 13);
    let n = g.num_vertices();
    let mut group = c.benchmark_group("parallel/intersection");
    group.sample_size(20);

    // Pre-PR representation: candidates as a sorted Vec, intersection by per-candidate
    // binary-searched adjacency tests.
    let candidates: Vec<VertexId> = g.vertices().collect();
    group.bench_function(BenchmarkId::from_parameter("sorted-vec"), |b| {
        b.iter(|| {
            let mut survivors = 0usize;
            for v in g.vertices() {
                survivors += candidates
                    .iter()
                    .filter(|&&u| u > v && g.has_edge(u, v))
                    .count();
            }
            black_box(survivors)
        });
    });

    // Bitset representation: the same `candidates ∩ N(v)` as a word-wise AND against a
    // per-component adjacency matrix row (built once per component, as in the search).
    let mut adj = BitMatrix::new(n);
    for &(u, v) in g.edge_list() {
        adj.set_edge(u as usize, v as usize);
    }
    group.bench_function(BenchmarkId::from_parameter("bitset"), |b| {
        b.iter(|| {
            let mut survivors = 0usize;
            let mut cand = Bitset::full(n);
            for v in 0..n {
                cand.remove(v);
                survivors += cand.intersection_count(adj.row(v));
            }
            black_box(survivors)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_candidate_intersection);
criterion_main!(benches);
