//! Scaling microbenchmarks for the parallel search subsystem:
//!
//! * `parallel/threads` — the full `max_fair_clique` on the multi-component scaling
//!   workload with a serial, 2-worker and 4-worker search. The workload plants the
//!   optimum in the largest (last-discovered) component, so largest-first dispatch plus
//!   the shared incumbent pay off even on a single hardware thread.
//! * `parallel/intersection` — the branch hot loop in isolation: `candidates ∩ N(v)`
//!   as the pre-PR sorted-vec filter (binary-searched `has_edge` per candidate) versus
//!   the bitset word-wise AND the search now uses.
//!
//! Besides the human-readable criterion output, the thread-scaling benchmark writes
//! machine-readable mean timings to `BENCH_parallel.json` at the repository root (via
//! [`rfc_bench::report::write_json_results`]) so the perf trajectory can be tracked
//! across commits.

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_bench::workloads::{big_component_graph, multi_component_graph};
use rfc_core::bounds::ExtraBound;
use rfc_core::problem::FairCliqueParams;
use rfc_core::reduction::ReductionConfig;
use rfc_core::search::{max_fair_clique, SearchConfig, ThreadCount};
use rfc_datasets::synthetic::erdos_renyi;
use rfc_graph::bitset::{BitMatrix, Bitset};
use rfc_graph::{AttributedGraph, VertexId};

/// The thread-count sweep shared by the criterion group and the JSON emitter, run on
/// the multi-component workload (component-level dispatch dominates).
const THREAD_CASES: [(&str, ThreadCount); 3] = [
    ("serial", ThreadCount::Serial),
    ("2-threads", ThreadCount::Fixed(2)),
    ("4-threads", ThreadCount::Fixed(4)),
];

/// The same sweep on the one-big-component workload, where the graph is a single
/// connected component and every speedup has to come from the intra-component
/// work-stealing split (root subtrees as stealable tasks + the shared incumbent).
const BIG_THREAD_CASES: [(&str, ThreadCount); 3] = [
    ("big-serial", ThreadCount::Serial),
    ("big-2-threads", ThreadCount::Fixed(2)),
    ("big-4-threads", ThreadCount::Fixed(4)),
];

/// The measured configuration: no heuristic warm start (the incumbent must actually
/// travel between components for the dispatch order to matter) and only the
/// vertex-level reduction, so the measured time is dominated by the branch-and-bound
/// the thread pool actually scales rather than the shared reduction pipeline.
fn scaling_config(threads: ThreadCount) -> SearchConfig {
    SearchConfig {
        reductions: ReductionConfig::core_only(),
        threads,
        ..SearchConfig::with_bounds(ExtraBound::ColorfulDegeneracy)
    }
}

/// The one-big-component cases additionally drop the extra upper bound. The colorful
/// bounds are recomputed at every spawned subtree root, which would dominate the
/// measurement, and with them pruning is bound-driven almost regardless of incumbent
/// quality. Under the plain size/attribute bounds the tree size is governed by *how
/// early the strong incumbent lands* — exactly what intra-component work distribution
/// changes, and therefore what this workload is meant to measure.
fn big_scaling_config(threads: ThreadCount) -> SearchConfig {
    SearchConfig {
        reductions: ReductionConfig::core_only(),
        threads,
        ..SearchConfig::basic()
    }
}

/// One measured workload: the graph, its labeled thread-count cases, and the function
/// building the `SearchConfig` for each case.
type Workload<'a> = (
    &'a AttributedGraph,
    &'a [(&'a str, ThreadCount); 3],
    fn(ThreadCount) -> SearchConfig,
);

fn bench_thread_scaling(c: &mut Criterion) {
    let multi = multi_component_graph(6, 200, 7);
    let big = big_component_graph(800, 17);
    let params = FairCliqueParams::new(3, 1).unwrap();
    let workloads: [Workload<'_>; 2] = [
        (&multi, &THREAD_CASES, scaling_config),
        (&big, &BIG_THREAD_CASES, big_scaling_config),
    ];

    let mut group = c.benchmark_group("parallel/threads");
    group.sample_size(10);
    for (g, cases, make_config) in workloads {
        for &(label, threads) in cases {
            let config = make_config(threads);
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| max_fair_clique(g, params, &config));
            });
        }
    }
    group.finish();

    // Machine-readable mean timings per thread count -> BENCH_parallel.json at the
    // repository root, so the perf trajectory is tracked without parsing stdout.
    let mut entries = Vec::new();
    for (g, cases, make_config) in workloads {
        for &(label, threads) in cases {
            let config = make_config(threads);
            black_box(max_fair_clique(g, params, &config)); // warm-up
            const RUNS: u32 = 10;
            let started = Instant::now();
            for _ in 0..RUNS {
                black_box(max_fair_clique(g, params, &config));
            }
            let mean_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS);
            entries.push((label.to_string(), mean_us));
        }
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    match rfc_bench::report::write_json_results(&path, "parallel/threads", &entries) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn bench_candidate_intersection(c: &mut Criterion) {
    // One dense-ish component, the shape the branch recursion sees after reduction.
    let g = erdos_renyi(600, 0.08, 0.5, 13);
    let n = g.num_vertices();
    let mut group = c.benchmark_group("parallel/intersection");
    group.sample_size(20);

    // Pre-PR representation: candidates as a sorted Vec, intersection by per-candidate
    // binary-searched adjacency tests.
    let candidates: Vec<VertexId> = g.vertices().collect();
    group.bench_function(BenchmarkId::from_parameter("sorted-vec"), |b| {
        b.iter(|| {
            let mut survivors = 0usize;
            for v in g.vertices() {
                survivors += candidates
                    .iter()
                    .filter(|&&u| u > v && g.has_edge(u, v))
                    .count();
            }
            black_box(survivors)
        });
    });

    // Bitset representation: the same `candidates ∩ N(v)` as a word-wise AND against a
    // per-component adjacency matrix row (built once per component, as in the search).
    let mut adj = BitMatrix::new(n);
    for &(u, v) in g.edge_list() {
        adj.set_edge(u as usize, v as usize);
    }
    group.bench_function(BenchmarkId::from_parameter("bitset"), |b| {
        b.iter(|| {
            let mut survivors = 0usize;
            let mut cand = Bitset::full(n);
            for v in 0..n {
                cand.remove(v);
                survivors += cand.intersection_count(adj.row(v));
            }
            black_box(survivors)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_candidate_intersection);
criterion_main!(benches);
