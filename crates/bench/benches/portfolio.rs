//! Racing-portfolio and anytime-engine benchmarks for budget-bound solves:
//!
//! * `portfolio/budget` — the one-big-component workload under a fixed
//!   branch-node budget, solved three ways: the plain single-configuration
//!   solver, a 4-member racing portfolio, and the portfolio plus the anytime
//!   local-search improver. The interesting output is as much the *incumbent
//!   size* each mode reaches inside the budget as the wall time, so the JSON
//!   report records both (`count` = best clique size found).
//! * `portfolio/unbudgeted` — the same workload with no budget: what the
//!   diversified race costs (or saves) when the run is allowed to finish and
//!   the first member to prove optimality cancels the rest.
//!
//! Machine-readable results go to `BENCH_portfolio.json` at the repository
//! root (via [`rfc_bench::report::write_json_counted_results`]) so the
//! budget-bound quality trajectory is tracked across commits.

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_bench::workloads::big_component_graph;
use rfc_core::portfolio::PortfolioConfig;
use rfc_core::prelude::*;

/// A node budget small enough that no exact member finishes the workload, so
/// every mode is measured on its budget-bound behaviour.
const NODE_BUDGET: u64 = 2_000;

/// One measured mode: label plus the portfolio shape (`None` = plain solve).
const MODES: [(&str, Option<(usize, bool)>); 3] = [
    ("single-config", None),
    ("portfolio-4", Some((4, false))),
    ("portfolio-4-anytime", Some((4, true))),
];

/// The measured query: no heuristic warm start (the budget-bound incumbent
/// must come from the search/improver themselves, not a shared preamble) and a
/// serial base configuration so the portfolio's diversification is the only
/// parallelism in play.
fn budget_query(model: FairnessModel, budget: Budget) -> Query {
    Query::new(model)
        .with_config(SearchConfig {
            use_heuristic: false,
            ..SearchConfig::default()
        })
        .with_budget(budget)
}

/// Runs one mode, returning the size of the best clique it found.
fn run_mode(solver: &RfcSolver, query: &Query, mode: Option<(usize, bool)>) -> usize {
    match mode {
        None => solver.solve(query).unwrap().best_size(),
        Some((members, anytime)) => solver
            .solve_portfolio(query, &PortfolioConfig::new(members).with_anytime(anytime))
            .unwrap()
            .solution
            .best_size(),
    }
}

fn bench_budget_bound(c: &mut Criterion) {
    let graph = big_component_graph(800, 17);
    let solver = RfcSolver::new(graph);
    let model = FairnessModel::Relative { k: 3, delta: 1 };
    let budget = Budget::unlimited().with_node_limit(NODE_BUDGET);
    let query = budget_query(model, budget);

    let mut group = c.benchmark_group("portfolio/budget");
    group.sample_size(10);
    for (label, mode) in MODES {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(run_mode(&solver, &query, mode)));
        });
    }
    group.finish();

    // Unbudgeted race: the winner's cancellation fan-out means the whole pool
    // costs roughly one member's solve, not the sum.
    let full_query = budget_query(model, Budget::unlimited());
    let mut group = c.benchmark_group("portfolio/unbudgeted");
    group.sample_size(10);
    for (label, mode) in [("single-config", None), ("portfolio-4", Some((4, false)))] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(run_mode(&solver, &full_query, mode)));
        });
    }
    group.finish();

    // Machine-readable mean timings AND incumbent sizes -> BENCH_portfolio.json
    // at the repository root.
    let mut entries = Vec::new();
    for (label, mode) in MODES {
        black_box(run_mode(&solver, &query, mode)); // warm-up
        const RUNS: u32 = 5;
        let mut best = 0usize;
        let started = Instant::now();
        for _ in 0..RUNS {
            best = best.max(black_box(run_mode(&solver, &query, mode)));
        }
        let mean_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS);
        entries.push((label.to_string(), mean_us, best as u64));
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_portfolio.json");
    match rfc_bench::report::write_json_counted_results(&path, "portfolio/budget", &entries) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_budget_bound);
criterion_main!(benches);
