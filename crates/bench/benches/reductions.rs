//! Criterion microbenchmarks for the graph reduction techniques (the machinery behind
//! Fig. 4 / Fig. 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_core::problem::FairCliqueParams;
use rfc_core::reduction::{
    apply_reductions, colorful_core::en_colorful_core_reduction,
    colorful_sup::colorful_sup_reduction, en_colorful_sup::en_colorful_sup_reduction,
    ReductionConfig,
};
use rfc_datasets::PaperDataset;

fn bench_reductions(c: &mut Criterion) {
    let g = PaperDataset::Aminer.generate();
    let mut group = c.benchmark_group("reductions/aminer-analog");
    group.sample_size(10);
    for k in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("EnColorfulCore", k), &k, |b, &k| {
            b.iter(|| en_colorful_core_reduction(&g, k));
        });
        group.bench_with_input(BenchmarkId::new("ColorfulSup", k), &k, |b, &k| {
            b.iter(|| colorful_sup_reduction(&g, k));
        });
        group.bench_with_input(BenchmarkId::new("EnColorfulSup", k), &k, |b, &k| {
            b.iter(|| en_colorful_sup_reduction(&g, k));
        });
        group.bench_with_input(BenchmarkId::new("full_pipeline", k), &k, |b, &k| {
            let params = FairCliqueParams::new(k, 4).unwrap();
            b.iter(|| apply_reductions(&g, params, &ReductionConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
