//! Scale-tier benchmark: a million-vertex power-law instance through the full
//! disk pipeline — streaming generation to `.rfcg`, index load, out-of-core
//! fair-core peel, full streaming reduction, and an end-to-end solve that must
//! recover the planted 20-vertex fair clique.
//!
//! Each stage's mean time is written to `BENCH_scale.json` at the repository
//! root, together with the stage's throughput in **vertices per second** (the
//! `count` field), so the scale trajectory can be tracked across commits. The
//! instance is `ScaleConfig::new(1_000_000)`: average degree ~12, a planted
//! balanced clique of 20 on the highest ids, solved at `k = 8, δ = 1` where the
//! background cannot satisfy the fair-core criterion and the peel collapses the
//! graph to a residual around the planted clique.

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rfc_core::problem::{FairCliqueParams, FairnessModel};
use rfc_core::reduction::streaming::{fair_core_peel, reduce_store};
use rfc_core::reduction::ReductionConfig;
use rfc_core::solver::Query;
use rfc_core::ScaleSolver;
use rfc_datasets::scale::{generate_scale_rfcg, ScaleConfig};
use rfc_graph::disk::DiskCsr;
use rfc_graph::store::GraphStore;

/// One million vertices; edges land around `N * 6` (see `ScaleConfig::new`).
const N: usize = 1_000_000;
/// Fairness parameter of the planted-optimum query (planted half-size is 10).
const K: usize = 8;

fn bench_scale(_c: &mut Criterion) {
    let dir = std::env::temp_dir().join("rfc_scale_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let rfcg = dir.join(format!("{}_scale_1m.rfcg", std::process::id()));

    // (name, mean_us, vertices/sec) per stage.
    let mut entries: Vec<(String, f64, u64)> = Vec::new();
    let record = |entries: &mut Vec<(String, f64, u64)>, name: &str, mean_us: f64| {
        let per_sec = N as f64 / (mean_us / 1e6);
        println!("scale/{name}: {mean_us:.0} us  ({per_sec:.0} vertices/sec)");
        entries.push((name.to_string(), mean_us, per_sec as u64));
    };

    // Stage 0: streaming generation straight to disk (run once; it is the
    // workload, not the subject, but its throughput bounds experiment setup).
    let config = ScaleConfig::new(N);
    let started = Instant::now();
    let summary = generate_scale_rfcg(&config, 42, &rfcg).unwrap();
    record(
        &mut entries,
        "generate",
        started.elapsed().as_secs_f64() * 1e6,
    );
    assert_eq!(summary.csr.num_vertices, N);
    assert_eq!(summary.planted.len(), 20);
    println!(
        "scale/instance: {} vertices, {} edges, {} bytes on disk",
        summary.csr.num_vertices, summary.csr.num_edges, summary.csr.file_bytes
    );

    // Stage 1: load — open the store and validate/load the resident index
    // (offsets + attributes); neighbor lists stay on disk.
    const RUNS: u32 = 3;
    let started = Instant::now();
    for _ in 0..RUNS {
        black_box(DiskCsr::open(&rfcg).unwrap());
    }
    record(
        &mut entries,
        "load",
        started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS),
    );
    let store = DiskCsr::open(&rfcg).unwrap();

    // Stage 2: the out-of-core fair-core peel on its own.
    let started = Instant::now();
    let mut survivors = 0;
    for _ in 0..RUNS {
        survivors = black_box(fair_core_peel(&store, K).unwrap())
            .stats
            .surviving_vertices;
    }
    record(
        &mut entries,
        "peel",
        started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS),
    );
    println!("scale/peel-survivors: {survivors} of {N}");

    // Stage 3: the full streaming reduction (peel + extract + exact pipeline).
    let params = FairCliqueParams::new(K, 1).unwrap();
    let started = Instant::now();
    for _ in 0..RUNS {
        black_box(reduce_store(&store, params, &ReductionConfig::default()).unwrap());
    }
    record(
        &mut entries,
        "reduce",
        started.elapsed().as_secs_f64() * 1e6 / f64::from(RUNS),
    );

    // Stage 4: end to end — build the scale solver and solve to the planted
    // optimum (correctness asserted, as everywhere else in the bench suite).
    let query = Query::new(FairnessModel::Relative { k: K, delta: 1 });
    let started = Instant::now();
    let solver = ScaleSolver::from_store(&store, K).unwrap();
    let solution = solver.solve(&query).unwrap();
    record(
        &mut entries,
        "solve-end-to-end",
        started.elapsed().as_secs_f64() * 1e6,
    );
    let best = solution.best().expect("planted clique must be found");
    assert_eq!(
        best.vertices, summary.planted,
        "solver did not recover the planted optimum"
    );
    assert!(
        solver.residual_resident_bytes() < store.resident_bytes(),
        "residual outgrew the store's resident index"
    );
    println!(
        "scale/residual: {} vertices, {} bytes resident (store index: {} bytes)",
        solver.stats().residual_vertices,
        solver.residual_resident_bytes(),
        store.resident_bytes()
    );

    std::fs::remove_file(&rfcg).ok();

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    match rfc_bench::report::write_json_counted_results(&path, "scale/million-vertex", &entries) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
