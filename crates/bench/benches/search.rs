//! Criterion microbenchmarks for the end-to-end maximum fair clique search (the
//! quantities behind Fig. 6 / Fig. 7, at default parameters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rfc_core::bounds::ExtraBound;
use rfc_core::problem::FairCliqueParams;
use rfc_core::search::{max_fair_clique, SearchConfig};
use rfc_datasets::case_study::CaseStudy;
use rfc_datasets::PaperDataset;

fn bench_search_on_analog(c: &mut Criterion) {
    for dataset in [PaperDataset::Aminer, PaperDataset::Flixster] {
        let spec = dataset.spec();
        let g = spec.generate();
        let params = FairCliqueParams::new(spec.default_k, spec.default_delta).unwrap();
        let mut group = c.benchmark_group(format!("search/{}", spec.name));
        group.sample_size(10);
        for (label, config) in [
            ("MaxRFC", SearchConfig::basic()),
            (
                "MaxRFC+ub",
                SearchConfig::with_bounds(ExtraBound::ColorfulDegeneracy),
            ),
            (
                "MaxRFC+ub+HeurRFC",
                SearchConfig::full(ExtraBound::ColorfulDegeneracy),
            ),
        ] {
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| max_fair_clique(&g, params, &config));
            });
        }
        group.finish();
    }
}

fn bench_search_on_case_studies(c: &mut Criterion) {
    let mut group = c.benchmark_group("search/case-studies");
    group.sample_size(20);
    for case in CaseStudy::ALL {
        let cs = case.generate();
        let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
        group.bench_function(BenchmarkId::from_parameter(case.name()), |b| {
            b.iter(|| max_fair_clique(&cs.graph, params, &SearchConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search_on_analog,
    bench_search_on_case_studies
);
criterion_main!(benches);
