//! Load benchmark for the `maxfaircliqued` daemon: an in-process server on an
//! ephemeral port, hammered by concurrent TCP clients with a mixed
//! solve / enumerate / update workload. Reports sustained throughput and
//! per-request latency percentiles, and writes them to `BENCH_serve.json` at
//! the repository root.
//!
//! Every `update` request carries an insert-edge / remove-edge pair applied
//! atomically under the engine's per-graph lock, so the graph always returns to
//! its initial state — which lets the run end with an exact differential check:
//! the daemon's final answer must equal a fresh direct [`RfcSolver`] on the
//! same graph.
//!
//! Run with `cargo bench --bench serve`. This is a plain `harness = false`
//! binary (a sustained load run, not a criterion microbenchmark).

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::time::Instant;

use rfc_bench::report::{self, Table};
use rfc_bench::workloads::multi_component_graph;
use rfc_core::prelude::*;
use rfc_graph::json::JsonValue;
use rfc_obs::metrics::Histogram;
use rfc_serve::server::{ServeConfig, Server};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 1000; // 4 * 1000 = 4000 mixed requests
const SOLVE_LINE: &str = "{\"op\":\"solve\",\"graph\":\"bench\",\"k\":3,\"delta\":1}";
const ENUM_LINE: &str =
    "{\"op\":\"enumerate\",\"graph\":\"bench\",\"k\":3,\"delta\":1,\"limit\":5}";

/// One protocol connection that reads to the terminal line of each request.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to bench daemon");
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Sends `line`, drains stream lines, returns the terminal response.
    fn request(&mut self, line: &str) -> JsonValue {
        // Single write per request: payload and newline in one segment.
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        self.writer.flush().unwrap();
        loop {
            let mut raw = String::new();
            assert!(
                self.reader.read_line(&mut raw).unwrap() > 0,
                "daemon closed connection"
            );
            let value = JsonValue::parse(raw.trim_end()).expect("valid JSON");
            if value.get("ok").is_some() {
                return value;
            }
        }
    }
}

/// An update request toggling a per-client edge: net no-op, applied atomically.
fn update_line(client_id: usize) -> String {
    // The workload graph is multi-component; connect two vertices of component 0
    // that the generator never joins (component 0 spans ids 0..base_n).
    let u = 2 * client_id;
    let v = 2 * client_id + 1;
    format!(
        "{{\"op\":\"update\",\"graph\":\"bench\",\"ops\":[\
         {{\"op\":\"insert_edge\",\"u\":{u},\"v\":{v}}},\
         {{\"op\":\"remove_edge\",\"u\":{u},\"v\":{v}}}]}}"
    )
}

fn main() {
    // Ignore criterion-style CLI flags (`--bench`, filters) from `cargo bench`.
    let graph = multi_component_graph(4, 120, 7);
    let dir = std::env::temp_dir().join(format!("rfc-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.graph");
    rfc_graph::io::write_graph_to_path(&graph, &path).unwrap();

    let server = Server::bind(ServeConfig {
        port: 0,
        max_active: CLIENTS,
        max_queue: 4 * CLIENTS,
        ..ServeConfig::default()
    })
    .expect("bind bench daemon");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut setup = Client::connect(addr);
    let load = setup.request(&format!(
        "{{\"op\":\"load\",\"graph\":\"bench\",\"path\":\"{}\"}}",
        path.display()
    ));
    assert_eq!(
        load.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{load}"
    );

    // Warm the shared per-component caches once so the measured run reflects
    // steady-state serving, then record the reference answer.
    let reference = setup.request(SOLVE_LINE);
    let reference_best = best_size(&reference);

    // Shared lock-free latency histograms (the same type the daemon itself uses
    // for `rfc_request_latency_us`); every client thread records directly.
    let solve_h = Histogram::new();
    let enum_h = Histogram::new();
    let update_h = Histogram::new();
    let all_h = Histogram::new();

    let wall = Instant::now();
    std::thread::scope(|scope| {
        for id in 0..CLIENTS {
            let (solve_h, enum_h, update_h, all_h) = (&solve_h, &enum_h, &update_h, &all_h);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let update = update_line(id);
                for i in 0..REQUESTS_PER_CLIENT {
                    // 60% solve, 30% enumerate, 10% update.
                    let (line, hist) = match i % 10 {
                        0..=5 => (SOLVE_LINE, solve_h),
                        6..=8 => (ENUM_LINE, enum_h),
                        _ => (update.as_str(), update_h),
                    };
                    let start = Instant::now();
                    let response = client.request(line);
                    let us = start.elapsed().as_micros() as u64;
                    hist.observe(us);
                    all_h.observe(us);
                    assert_eq!(
                        response.get("ok").and_then(JsonValue::as_bool),
                        Some(true),
                        "request {i} on client {id}: {response}"
                    );
                }
            });
        }
    });
    let wall_us = wall.elapsed().as_micros();

    // Differential check: updates were net no-ops, so the daemon's answer must
    // still equal a fresh direct solver on the original graph.
    let final_solve = setup.request(SOLVE_LINE);
    assert_eq!(best_size(&final_solve), reference_best, "daemon drifted");
    let direct = RfcSolver::new(graph)
        .solve(&Query::new(FairnessModel::Relative { k: 3, delta: 1 }))
        .expect("direct solve");
    let direct_best = direct.best().map(|c| c.size() as u64).unwrap_or(0);
    assert_eq!(
        reference_best, direct_best,
        "daemon answer must match the direct library"
    );

    let shutdown = setup.request("{\"op\":\"shutdown\"}");
    assert_eq!(shutdown.get("ok").and_then(JsonValue::as_bool), Some(true));
    server_thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Aggregate and report straight from the histograms (no sorting pass).
    let total = all_h.count() as usize;
    let throughput = total as f64 / (wall_us as f64 / 1e6);
    let mut table = Table::new(
        format!("serve: {CLIENTS} clients, {total} mixed requests"),
        &["request", "count", "p50", "p99", "mean"],
    );
    let mut entries: Vec<(String, f64, u64)> = Vec::new();
    let groups: [(&str, &Histogram); 3] = [
        ("solve", &solve_h),
        ("enumerate", &enum_h),
        ("update", &update_h),
    ];
    for (name, hist) in groups {
        let (p50, p99, mean) = (hist.quantile(0.50), hist.quantile(0.99), hist.mean());
        table.add_row(vec![
            name.to_string(),
            hist.count().to_string(),
            format!("{p50} us"),
            format!("{p99} us"),
            format!("{mean:.0} us"),
        ]);
        entries.push((format!("{name}/p50"), p50 as f64, hist.count()));
        entries.push((format!("{name}/p99"), p99 as f64, hist.count()));
        entries.push((format!("{name}/mean"), mean, hist.count()));
    }
    entries.push((
        "all/p50".to_string(),
        all_h.quantile(0.50) as f64,
        total as u64,
    ));
    entries.push((
        "all/p99".to_string(),
        all_h.quantile(0.99) as f64,
        total as u64,
    ));
    // Throughput rides in the shared envelope as requests/second (not us).
    entries.push(("all/throughput_rps".to_string(), throughput, total as u64));
    entries.push(("all/wall_clock".to_string(), wall_us as f64, total as u64));
    table.print();
    println!("throughput: {throughput:.0} req/s over {total} requests");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    report::write_json_counted_results(&out, "serve/mixed-load", &entries)
        .expect("write BENCH_serve.json");
    println!("wrote {}", out.display());
}

fn best_size(response: &JsonValue) -> u64 {
    response
        .get("cliques")
        .and_then(JsonValue::as_array)
        .and_then(|c| c.first())
        .and_then(|c| c.get("size"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}
