//! Produces the committed reference trace `traces/big_component_trace.jsonl`:
//! a serial solve of the one-big-component workload (the hardest
//! `BENCH_parallel.json` shape) with the span tracer writing JSONL.
//!
//! ```text
//! cargo run --release -p rfc-bench --example big_component_trace
//! ```
//!
//! Serial on purpose: with one thread every span nests under the root `solve`
//! span, so the trace doubles as the "spans account for the wall time" fixture —
//! validate it with `cargo run --example trace_check -- traces/big_component_trace.jsonl 90`.

use std::path::Path;

use rfc_bench::workloads::big_component_graph;
use rfc_core::prelude::*;
use rfc_obs::trace::{self, FileSink};

fn main() {
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../traces");
    std::fs::create_dir_all(&out_dir).expect("create traces/");
    let out = out_dir.join("big_component_trace.jsonl");

    let graph = big_component_graph(800, 17);
    let query = Query::new(FairnessModel::Relative { k: 3, delta: 1 })
        .with_config(SearchConfig::default().with_threads(ThreadCount::Serial));

    let sink = FileSink::create(&out).expect("create trace file");
    let guard = trace::install(Box::new(sink));
    let solver = RfcSolver::new(graph);
    let solution = solver.solve(&query).expect("solve");
    drop(guard); // flush + close the trace before reporting

    let best = solution.best().map(|c| c.size()).unwrap_or(0);
    println!(
        "solved: best {best} vertices, {} branches, {} µs",
        solution.stats.branches, solution.stats.elapsed_micros
    );
    print!("{}", solution.trace_summary());
    println!("wrote {}", out.display());
}
