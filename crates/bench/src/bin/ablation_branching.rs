//! Ablation A1 — effect of the branching order on the search.
//!
//! The paper uses the colorful-core peeling order (`CalColorOD`); this ablation compares
//! it against the classic degeneracy order and a structure-free vertex-id order on the
//! DBLP analog (and any other selected datasets), reporting explored branches and
//! runtime. All orders must return the same optimum.
//!
//! ```text
//! cargo run --release -p rfc-bench --bin ablation_branching
//! ```

use rfc_bench::workloads::{default_params, load_workloads, timed};
use rfc_bench::Table;
use rfc_core::search::{max_fair_clique, BranchOrder, SearchConfig};

fn main() {
    println!("Ablation A1 — branching order (CalColorOD vs degeneracy vs vertex id)\n");
    if std::env::var("RFC_BENCH_DATASETS").is_err() {
        std::env::set_var("RFC_BENCH_DATASETS", "DBLP,Themarker,Aminer");
    }
    let mut table = Table::new(
        "Branching-order ablation at default (k, δ)",
        &[
            "dataset",
            "order",
            "MRFC size",
            "branches",
            "bound prunes",
            "time(µs)",
        ],
    );
    for workload in load_workloads() {
        let spec = &workload.spec;
        let params = default_params(spec);
        let mut sizes = Vec::new();
        for (label, order) in [
            ("ColorfulCore", BranchOrder::ColorfulCore),
            ("Degeneracy", BranchOrder::Degeneracy),
            ("VertexId", BranchOrder::VertexId),
        ] {
            let config = SearchConfig {
                branch_order: order,
                ..SearchConfig::default()
            };
            let (outcome, micros) = timed(|| max_fair_clique(&workload.graph, params, &config));
            let size = outcome.best.map(|c| c.size()).unwrap_or(0);
            sizes.push(size);
            table.add_row(vec![
                spec.name.to_string(),
                label.to_string(),
                size.to_string(),
                outcome.stats.branches.to_string(),
                outcome.stats.bound_prunes.to_string(),
                micros.to_string(),
            ]);
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "orders disagree on {}",
            spec.name
        );
        eprintln!("  [{}] done", spec.name);
    }
    table.print();
}
