//! Ablation A2 — contribution of each reduction stage to the end-to-end search.
//!
//! Runs `MaxRFC+ub+HeurRFC` at the default parameters with four reduction
//! configurations: none, `EnColorfulCore` only, `EnColorfulCore + ColorfulSup`, and the
//! full pipeline. Reports the surviving graph size, the explored branches and the total
//! runtime, separating how much of the speedup comes from each stage.
//!
//! ```text
//! cargo run --release -p rfc-bench --bin ablation_reduction_stages
//! ```

use rfc_bench::workloads::{default_params, load_workloads, preferred_extra_bound, timed};
use rfc_bench::Table;
use rfc_core::reduction::ReductionConfig;
use rfc_core::search::{max_fair_clique, SearchConfig};

fn main() {
    println!("Ablation A2 — reduction stages (none / core / +ColorfulSup / +EnColorfulSup)\n");
    let mut table = Table::new(
        "Reduction-stage ablation at default (k, δ)",
        &[
            "dataset",
            "reductions",
            "MRFC size",
            "final |V|",
            "final |E|",
            "branches",
            "total time(µs)",
        ],
    );
    for workload in load_workloads() {
        let spec = &workload.spec;
        let params = default_params(spec);
        let extra = preferred_extra_bound(workload.dataset);
        let mut sizes = Vec::new();
        for (label, reductions) in [
            ("none", ReductionConfig::none()),
            ("EnColorfulCore", ReductionConfig::core_only()),
            ("+ColorfulSup", ReductionConfig::up_to_colorful_sup()),
            ("+EnColorfulSup", ReductionConfig::default()),
        ] {
            let config = SearchConfig {
                reductions,
                ..SearchConfig::full(extra)
            };
            let (outcome, micros) = timed(|| max_fair_clique(&workload.graph, params, &config));
            let size = outcome.best.map(|c| c.size()).unwrap_or(0);
            sizes.push(size);
            table.add_row(vec![
                spec.name.to_string(),
                label.to_string(),
                size.to_string(),
                outcome.stats.reduction.final_vertices().to_string(),
                outcome.stats.reduction.final_edges().to_string(),
                outcome.stats.branches.to_string(),
                micros.to_string(),
            ]);
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "reduction configurations disagree on {}",
            spec.name
        );
        eprintln!("  [{}] done", spec.name);
    }
    table.print();
}
