//! Fig. 10 — case studies: the concrete teams returned by the maximum fair clique
//! search on four small attributed networks.
//!
//! ```text
//! cargo run --release -p rfc-bench --bin fig10_case_studies
//! ```

use rfc_bench::workloads::timed;
use rfc_bench::Table;
use rfc_core::problem::FairCliqueParams;
use rfc_core::search::{max_fair_clique, SearchConfig};
use rfc_core::verify;
use rfc_datasets::case_study::CaseStudy;

fn main() {
    println!("Experiment E8 — case studies (paper Fig. 10)\n");
    let mut summary = Table::new(
        "Case-study summary",
        &[
            "case",
            "n",
            "m",
            "k",
            "δ",
            "team size",
            "count(a)",
            "count(b)",
            "planted size",
            "time(µs)",
        ],
    );
    for case in CaseStudy::ALL {
        let cs = case.generate();
        let params = FairCliqueParams::new(cs.default_k, cs.default_delta).unwrap();
        let (outcome, micros) =
            timed(|| max_fair_clique(&cs.graph, params, &SearchConfig::default()));
        let team = outcome
            .best
            .unwrap_or_else(|| panic!("{}: no fair clique found", case.name()));
        assert!(verify::is_relative_fair_clique(
            &cs.graph,
            &team.vertices,
            params
        ));
        summary.add_row(vec![
            case.name().to_string(),
            cs.graph.num_vertices().to_string(),
            cs.graph.num_edges().to_string(),
            params.k.to_string(),
            params.delta.to_string(),
            team.size().to_string(),
            team.counts.a().to_string(),
            team.counts.b().to_string(),
            cs.planted_team.len().to_string(),
            micros.to_string(),
        ]);

        println!(
            "### {} — team of {} ({} {}, {} {})",
            case.name(),
            team.size(),
            team.counts.a(),
            cs.attribute_names.0,
            team.counts.b(),
            cs.attribute_names.1
        );
        for &member in &team.vertices {
            println!("  - {} [{}]", cs.label(member), cs.attribute_name(member));
        }
        println!();
    }
    summary.print();
}
