//! Fig. 4 / Fig. 5 — comparison of the graph reduction techniques.
//!
//! For every dataset analog and every `k` in the dataset's sweep range, applies the
//! reduction pipeline `EnColorfulCore → ColorfulSup → EnColorfulSup` and reports the
//! number of vertices and edges remaining after each stage (the quantities plotted in
//! Fig. 4(a)–(j) and Fig. 5(a)–(b)).
//!
//! ```text
//! cargo run --release -p rfc-bench --bin fig4_5_reduction
//! ```

use rfc_bench::workloads::{load_workloads, timed};
use rfc_bench::Table;
use rfc_core::problem::FairCliqueParams;
use rfc_core::reduction::{apply_reductions, ReductionConfig};

fn main() {
    println!("Experiment E1/E2 — graph reduction comparison (paper Fig. 4 and Fig. 5)\n");
    for workload in load_workloads() {
        let spec = &workload.spec;
        let graph = &workload.graph;
        let mut vertices_table = Table::new(
            format!(
                "{} — remaining vertices (original |V| = {}, δ = {})",
                spec.name,
                graph.num_non_isolated_vertices(),
                spec.default_delta
            ),
            &[
                "k",
                "Original |V|",
                "EnColorfulCore",
                "ColorfulSup",
                "EnColorfulSup",
            ],
        );
        let mut edges_table = Table::new(
            format!(
                "{} — remaining edges (original |E| = {}, δ = {})",
                spec.name,
                graph.num_edges(),
                spec.default_delta
            ),
            &[
                "k",
                "Original |E|",
                "EnColorfulCore",
                "ColorfulSup",
                "EnColorfulSup",
            ],
        );
        for k in spec.k_values() {
            let params = FairCliqueParams::new(k, spec.default_delta).unwrap();
            let ((_, stats), micros) =
                timed(|| apply_reductions(graph, params, &ReductionConfig::default()));
            let stage = |i: usize| stats.stages.get(i);
            vertices_table.add_row(vec![
                k.to_string(),
                graph.num_non_isolated_vertices().to_string(),
                stage(0).map(|s| s.vertices.to_string()).unwrap_or_default(),
                stage(1).map(|s| s.vertices.to_string()).unwrap_or_default(),
                stage(2).map(|s| s.vertices.to_string()).unwrap_or_default(),
            ]);
            edges_table.add_row(vec![
                k.to_string(),
                graph.num_edges().to_string(),
                stage(0).map(|s| s.edges.to_string()).unwrap_or_default(),
                stage(1).map(|s| s.edges.to_string()).unwrap_or_default(),
                stage(2).map(|s| s.edges.to_string()).unwrap_or_default(),
            ]);
            eprintln!("  [{}] k = {k}: pipeline took {micros} µs", spec.name);
        }
        vertices_table.print();
        edges_table.print();
    }
}
