//! Fig. 6 / Fig. 7 — runtime comparison of the maximum fair clique search algorithms.
//!
//! For every dataset analog, sweeps `k` (at the default `δ`) and `δ` (at the default
//! `k`) and compares three algorithms, exactly as the paper does:
//!
//! * `MaxRFC` — reductions + branch-and-bound with only the trivial size bound;
//! * `MaxRFC+ub` — plus the advanced bound group and the per-dataset best extra bound;
//! * `MaxRFC+ub+HeurRFC` — plus the heuristic warm start.
//!
//! Reported: runtime (µs), explored branches, and the optimum size (which must agree
//! across all three).
//!
//! ```text
//! cargo run --release -p rfc-bench --bin fig6_7_search
//! ```

use rfc_bench::report::speedup;
use rfc_bench::workloads::{figure6_configs, load_workloads, timed};
use rfc_bench::Table;
use rfc_core::problem::FairCliqueParams;
use rfc_core::search::max_fair_clique;
use rfc_graph::AttributedGraph;

fn run_setting(
    table: &mut Table,
    dataset: &str,
    param_name: &str,
    param_value: usize,
    graph: &AttributedGraph,
    params: FairCliqueParams,
    configs: &[(&'static str, rfc_core::search::SearchConfig); 3],
) {
    let mut sizes = Vec::new();
    let mut times = Vec::new();
    let mut branches = Vec::new();
    for (_, config) in configs {
        let (outcome, micros) = timed(|| max_fair_clique(graph, params, config));
        sizes.push(outcome.best.map(|c| c.size()).unwrap_or(0));
        times.push(micros);
        branches.push(outcome.stats.branches);
    }
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "algorithms disagree on {dataset} {param_name}={param_value}: {sizes:?}"
    );
    table.add_row(vec![
        dataset.to_string(),
        param_name.to_string(),
        param_value.to_string(),
        sizes[0].to_string(),
        times[0].to_string(),
        times[1].to_string(),
        times[2].to_string(),
        speedup(times[0], times[1]),
        speedup(times[0], times[2]),
        branches[0].to_string(),
        branches[1].to_string(),
        branches[2].to_string(),
    ]);
}

fn main() {
    println!(
        "Experiment E4/E5 — MaxRFC vs MaxRFC+ub vs MaxRFC+ub+HeurRFC (paper Fig. 6 / Fig. 7)\n"
    );
    let mut table = Table::new(
        "Fig. 6/7 analog — runtimes in µs",
        &[
            "dataset",
            "param",
            "value",
            "MRFC size",
            "MaxRFC(µs)",
            "+ub(µs)",
            "+ub+Heur(µs)",
            "speedup(+ub)",
            "speedup(+ub+Heur)",
            "branches",
            "branches(+ub)",
            "branches(+ub+Heur)",
        ],
    );
    for workload in load_workloads() {
        let spec = &workload.spec;
        let graph = &workload.graph;
        let configs = figure6_configs(workload.dataset);
        for k in spec.k_values() {
            let params = FairCliqueParams::new(k, spec.default_delta).unwrap();
            run_setting(&mut table, spec.name, "k", k, graph, params, &configs);
            eprintln!("  [{}] k = {k} done", spec.name);
        }
        for delta in spec.delta_values() {
            let params = FairCliqueParams::new(spec.default_k, delta).unwrap();
            run_setting(&mut table, spec.name, "δ", delta, graph, params, &configs);
            eprintln!("  [{}] δ = {delta} done", spec.name);
        }
    }
    table.print();
}
