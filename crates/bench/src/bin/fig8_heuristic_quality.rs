//! Fig. 8 — size of the fair clique found by `HeurRFC` vs. the exact maximum.
//!
//! For every dataset analog at its default parameters, reports the heuristic size, the
//! exact maximum size, the gap, and the heuristic's upper bound. The paper's observation
//! is that the gap is small (≤ 6 on most datasets, 0 on DBLP).
//!
//! ```text
//! cargo run --release -p rfc-bench --bin fig8_heuristic_quality
//! ```

use rfc_bench::workloads::{default_params, load_workloads, timed};
use rfc_bench::Table;
use rfc_core::heuristic::{heur_rfc, HeuristicConfig};
use rfc_core::search::{max_fair_clique, SearchConfig};

fn main() {
    println!("Experiment E6 — HeurRFC size vs maximum fair clique size (paper Fig. 8)\n");
    let mut table = Table::new(
        "Fig. 8 analog — heuristic quality at default (k, δ)",
        &[
            "dataset",
            "k",
            "δ",
            "HeurRFC size",
            "MRFC size",
            "gap",
            "HeurRFC ub",
            "HeurRFC(µs)",
            "MaxRFC(µs)",
        ],
    );
    for workload in load_workloads() {
        let spec = &workload.spec;
        let graph = &workload.graph;
        let params = default_params(spec);
        let (heur, heur_us) = timed(|| heur_rfc(graph, params, &HeuristicConfig::default()));
        let (exact, exact_us) = timed(|| max_fair_clique(graph, params, &SearchConfig::default()));
        let heur_size = heur.best.as_ref().map(|c| c.size()).unwrap_or(0);
        let exact_size = exact.best.as_ref().map(|c| c.size()).unwrap_or(0);
        assert!(
            heur_size <= exact_size,
            "{}: heuristic beat the optimum",
            spec.name
        );
        table.add_row(vec![
            spec.name.to_string(),
            params.k.to_string(),
            params.delta.to_string(),
            heur_size.to_string(),
            exact_size.to_string(),
            (exact_size - heur_size).to_string(),
            heur.upper_bound.to_string(),
            heur_us.to_string(),
            exact_us.to_string(),
        ]);
        eprintln!("  [{}] done", spec.name);
    }
    table.print();
}
