//! Fig. 9 — scalability test: runtime vs the fraction of edges / vertices kept.
//!
//! Following the paper, the Flixster analog is subsampled to 20%–100% of its edges
//! (Fig. 9(a)) and of its vertices (Fig. 9(b)), and the three search algorithms are run
//! on each subgraph at the dataset's default parameters.
//!
//! Set `RFC_BENCH_DATASETS` to run the sweep on other analogs as well.
//!
//! ```text
//! cargo run --release -p rfc-bench --bin fig9_scalability
//! ```

use rfc_bench::workloads::{default_params, figure6_configs, load_workloads, timed};
use rfc_bench::Table;
use rfc_core::search::max_fair_clique;
use rfc_datasets::scaling::{sample_edges, sample_vertices, FRACTIONS};
use rfc_datasets::PaperDataset;

fn main() {
    println!("Experiment E7 — scalability on subsampled graphs (paper Fig. 9)\n");
    // Default to Flixster like the paper; respect RFC_BENCH_DATASETS if set.
    if std::env::var("RFC_BENCH_DATASETS").is_err() {
        std::env::set_var("RFC_BENCH_DATASETS", "Flixster");
    }
    let workloads = load_workloads();
    for workload in &workloads {
        let spec = &workload.spec;
        let params = default_params(spec);
        let configs = figure6_configs(workload.dataset);
        for (axis, sampler) in [
            (
                "m",
                &sample_edges
                    as &dyn Fn(&rfc_graph::AttributedGraph, f64, u64) -> rfc_graph::AttributedGraph,
            ),
            ("n", &sample_vertices),
        ] {
            let mut table = Table::new(
                format!(
                    "{} — vary {axis} (k={}, δ={})",
                    spec.name, params.k, params.delta
                ),
                &[
                    "fraction",
                    "|V|",
                    "|E|",
                    "MRFC size",
                    "MaxRFC(µs)",
                    "+ub(µs)",
                    "+ub+Heur(µs)",
                ],
            );
            for &fraction in &FRACTIONS {
                let sampled = sampler(&workload.graph, fraction, 0x5CA1E + workload.dataset as u64);
                let mut times = Vec::new();
                let mut size = 0usize;
                for (_, config) in &configs {
                    let (outcome, micros) = timed(|| max_fair_clique(&sampled, params, config));
                    size = outcome.best.map(|c| c.size()).unwrap_or(0);
                    times.push(micros);
                }
                table.add_row(vec![
                    format!("{:.0}%", fraction * 100.0),
                    sampled.num_vertices().to_string(),
                    sampled.num_edges().to_string(),
                    size.to_string(),
                    times[0].to_string(),
                    times[1].to_string(),
                    times[2].to_string(),
                ]);
                eprintln!(
                    "  [{} vary {axis}] {:.0}% done",
                    spec.name,
                    fraction * 100.0
                );
            }
            table.print();
        }
    }
    // Keep the binary honest even if the dataset filter excluded everything.
    if workloads.is_empty() {
        eprintln!("no datasets selected; check RFC_BENCH_DATASETS");
        let _ = PaperDataset::ALL;
    }
}
