//! Table II — running time of `MaxRFC` under the different upper bounds.
//!
//! For every dataset analog, sweeps `k` (at the default `δ`) and `δ` (at the default
//! `k`) and, for each setting, runs `MaxRFC+ub` with the six bound configurations of the
//! paper (`ubAD`, `ubAD+ub△`, `ubAD+ubh`, `ubAD+ubcd`, `ubAD+ubch`, `ubAD+ubcp`),
//! reporting the runtime in microseconds. The smallest time per row is marked with `*`,
//! matching the highlighting of Table II.
//!
//! ```text
//! cargo run --release -p rfc-bench --bin table2_bounds
//! ```

use rfc_bench::workloads::{default_params, load_workloads, timed};
use rfc_bench::Table;
use rfc_core::bounds::ExtraBound;
use rfc_core::problem::FairCliqueParams;
use rfc_core::search::{max_fair_clique, SearchConfig};
use rfc_graph::AttributedGraph;

fn run_row(graph: &AttributedGraph, params: FairCliqueParams) -> Vec<u128> {
    ExtraBound::ALL
        .iter()
        .map(|&extra| {
            let config = SearchConfig::with_bounds(extra);
            let (_, micros) = timed(|| max_fair_clique(graph, params, &config));
            micros
        })
        .collect()
}

fn format_row(prefix: Vec<String>, times: &[u128]) -> Vec<String> {
    let best = times.iter().copied().min().unwrap_or(0);
    let mut row = prefix;
    for &t in times {
        if t == best {
            row.push(format!("{t}*"));
        } else {
            row.push(t.to_string());
        }
    }
    row
}

fn main() {
    println!("Experiment E3 — MaxRFC runtime with different upper bounds (paper Table II)\n");
    let headers: Vec<&str> = {
        let mut h = vec!["dataset", "param", "value"];
        for extra in ExtraBound::ALL {
            h.push(extra.label());
        }
        h
    };
    let mut table = Table::new(
        "Table II analog — runtimes in µs (* = fastest per row)",
        &headers,
    );

    for workload in load_workloads() {
        let spec = &workload.spec;
        let graph = &workload.graph;
        for k in spec.k_values() {
            let params = FairCliqueParams::new(k, spec.default_delta).unwrap();
            let times = run_row(graph, params);
            table.add_row(format_row(
                vec![spec.name.to_string(), "k".to_string(), k.to_string()],
                &times,
            ));
            eprintln!("  [{}] k = {k} done", spec.name);
        }
        for delta in spec.delta_values() {
            let params = FairCliqueParams::new(spec.default_k, delta).unwrap();
            let times = run_row(graph, params);
            table.add_row(format_row(
                vec![spec.name.to_string(), "δ".to_string(), delta.to_string()],
                &times,
            ));
            eprintln!("  [{}] δ = {delta} done", spec.name);
        }
        // Also report the optimum size at the defaults as a sanity anchor.
        let params = default_params(spec);
        let outcome = max_fair_clique(graph, params, &SearchConfig::default());
        eprintln!(
            "  [{}] optimum at defaults {params}: {}",
            spec.name,
            outcome.best.map(|c| c.size()).unwrap_or(0)
        );
    }
    table.print();
}
