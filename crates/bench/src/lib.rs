//! # rfc-bench — experiment harness for the maximum fair clique paper
//!
//! One binary per table/figure of the paper's evaluation section (Section VI), plus
//! Criterion microbenchmarks for the individual components. Every binary prints a
//! plain-text table with the same rows/series as the corresponding paper artifact, so
//! the qualitative shape (who wins, by roughly what factor, where the trends bend) can
//! be compared directly; absolute numbers differ because the workloads are scaled-down
//! synthetic analogs (see `rfc-datasets` and EXPERIMENTS.md).
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig4_5_reduction` | Fig. 4 / Fig. 5 — graph reduction comparison |
//! | `table2_bounds` | Table II — MaxRFC runtime under different upper bounds |
//! | `fig6_7_search` | Fig. 6 / Fig. 7 — MaxRFC vs +ub vs +ub+HeurRFC |
//! | `fig8_heuristic_quality` | Fig. 8 — HeurRFC size vs exact maximum |
//! | `fig9_scalability` | Fig. 9 — runtime vs 20–100% of n and m |
//! | `fig10_case_studies` | Fig. 10 — case studies |
//! | `ablation_branching` | (extra) branching-order ablation |
//! | `ablation_reduction_stages` | (extra) reduction-stage ablation |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod workloads;

pub use report::Table;
