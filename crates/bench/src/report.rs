//! Minimal plain-text table formatting used by every experiment binary.
//!
//! No external dependency: the harness prints fixed-width aligned tables to stdout and
//! can also emit tab-separated values for downstream plotting.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as tab-separated values (header row included).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table (and, when `RFC_BENCH_TSV=1`, the TSV form) to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        if std::env::var("RFC_BENCH_TSV").as_deref() == Ok("1") {
            println!("{}", self.to_tsv());
        }
    }
}

/// Formats a microsecond count the way the paper's tables do (raw integer µs).
pub fn micros(us: u128) -> String {
    us.to_string()
}

/// Formats a ratio like `12.3x`.
pub fn speedup(baseline_us: u128, other_us: u128) -> String {
    if other_us == 0 {
        return "inf".to_string();
    }
    format!("{:.1}x", baseline_us as f64 / other_us as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["dataset", "k", "time(us)"]);
        t.add_row(vec!["Themarker".into(), "2".into(), "12345".into()]);
        t.add_row(vec!["Google".into(), "9".into(), "7".into()]);
        let rendered = t.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("Themarker"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let tsv = t.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.lines().nth(1).unwrap().starts_with("Themarker\t2\t"));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(micros(42), "42");
        assert_eq!(speedup(100, 10), "10.0x");
        assert_eq!(speedup(100, 0), "inf");
    }
}
