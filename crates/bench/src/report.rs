//! Minimal plain-text table formatting used by every experiment binary, plus a
//! machine-readable JSON emitter for tracked benchmark results.
//!
//! No external dependency: the harness prints fixed-width aligned tables to stdout and
//! can also emit tab-separated values for downstream plotting. [`write_json_results`]
//! writes `BENCH_*.json` files (benchmark name + mean timings per case) so the perf
//! trajectory of the repo can be tracked across commits without parsing stdout.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as tab-separated values (header row included).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table (and, when `RFC_BENCH_TSV=1`, the TSV form) to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        if std::env::var("RFC_BENCH_TSV").as_deref() == Ok("1") {
            println!("{}", self.to_tsv());
        }
    }
}

/// Serializes benchmark results as a small JSON document:
///
/// ```json
/// {
///   "benchmark": "parallel/threads",
///   "unit": "us",
///   "results": [
///     { "name": "serial", "mean_us": 15380.123 },
///     { "name": "2-threads", "mean_us": 12200.456 }
///   ]
/// }
/// ```
///
/// `entries` are `(case name, mean microseconds)` pairs, emitted in order.
pub fn json_results(benchmark: &str, entries: &[(String, f64)]) -> String {
    json_document(
        benchmark,
        entries.iter().map(|(name, mean_us)| {
            format!(
                "{{ \"name\": \"{}\", \"mean_us\": {:.3} }}",
                escape_json(name),
                mean_us
            )
        }),
    )
}

/// Writes [`json_results`] to `path` (atomically enough for a benchmark artifact:
/// create/truncate then a single write).
pub fn write_json_results(
    path: &Path,
    benchmark: &str,
    entries: &[(String, f64)],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(json_results(benchmark, entries).as_bytes())
}

/// Like [`json_results`] but with an extra integer `count` per case — used by
/// benchmarks whose workload size matters as much as the timing (e.g. the
/// enumeration bench records how many maximal fair cliques each dataset yields):
///
/// ```json
/// {
///   "benchmark": "enumerate/serial",
///   "unit": "us",
///   "results": [
///     { "name": "multi-component", "mean_us": 1234.500, "count": 42 }
///   ]
/// }
/// ```
pub fn json_counted_results(benchmark: &str, entries: &[(String, f64, u64)]) -> String {
    json_document(
        benchmark,
        entries.iter().map(|(name, mean_us, count)| {
            format!(
                "{{ \"name\": \"{}\", \"mean_us\": {:.3}, \"count\": {} }}",
                escape_json(name),
                mean_us,
                count
            )
        }),
    )
}

/// The shared `BENCH_*.json` envelope: one pre-rendered result object per line.
fn json_document(benchmark: &str, rows: impl Iterator<Item = String>) -> String {
    let rows: Vec<String> = rows.collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"benchmark\": \"{}\",\n",
        escape_json(benchmark)
    ));
    out.push_str("  \"unit\": \"us\",\n");
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("    {row}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`json_counted_results`] to `path`.
pub fn write_json_counted_results(
    path: &Path,
    benchmark: &str,
    entries: &[(String, f64, u64)],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(json_counted_results(benchmark, entries).as_bytes())
}

/// JSON string escaping, shared with every other JSON producer in the workspace
/// (handles quotes, backslashes *and* control characters — see [`rfc_graph::json`]).
fn escape_json(s: &str) -> String {
    rfc_graph::json::escaped(s)
}

/// Formats a microsecond count the way the paper's tables do (raw integer µs).
pub fn micros(us: u128) -> String {
    us.to_string()
}

/// Formats a ratio like `12.3x`.
pub fn speedup(baseline_us: u128, other_us: u128) -> String {
    if other_us == 0 {
        return "inf".to_string();
    }
    format!("{:.1}x", baseline_us as f64 / other_us as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["dataset", "k", "time(us)"]);
        t.add_row(vec!["Themarker".into(), "2".into(), "12345".into()]);
        t.add_row(vec!["Google".into(), "9".into(), "7".into()]);
        let rendered = t.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("Themarker"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let tsv = t.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.lines().nth(1).unwrap().starts_with("Themarker\t2\t"));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_results_are_well_formed() {
        let entries = vec![
            ("serial".to_string(), 15380.1234),
            ("2-threads".to_string(), 12200.0),
        ];
        let json = json_results("parallel/threads", &entries);
        assert!(json.contains("\"benchmark\": \"parallel/threads\""));
        assert!(json.contains("\"unit\": \"us\""));
        assert!(json.contains("{ \"name\": \"serial\", \"mean_us\": 15380.123 },"));
        assert!(json.contains("{ \"name\": \"2-threads\", \"mean_us\": 12200.000 }\n"));
        // Exactly one trailing-comma-free last entry; braces balance.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Quotes and backslashes in names are escaped.
        let tricky = json_results("a\"b", &[("c\\d".to_string(), 1.0)]);
        assert!(tricky.contains("a\\\"b"));
        assert!(tricky.contains("c\\\\d"));
    }

    #[test]
    fn json_counted_results_are_well_formed() {
        let entries = vec![
            ("multi-component".to_string(), 1234.5, 42u64),
            ("er-dense".to_string(), 99.0, 7),
        ];
        let json = json_counted_results("enumerate/serial", &entries);
        assert!(json.contains("\"benchmark\": \"enumerate/serial\""));
        assert!(json
            .contains("{ \"name\": \"multi-component\", \"mean_us\": 1234.500, \"count\": 42 },"));
        assert!(json.contains("{ \"name\": \"er-dense\", \"mean_us\": 99.000, \"count\": 7 }\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let dir = std::env::temp_dir().join("rfc_bench_report_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_counted_test.json");
        write_json_counted_results(&path, "enumerate/serial", &entries).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            json_counted_results("enumerate/serial", &entries)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_results_round_trip_to_disk() {
        let dir = std::env::temp_dir().join("rfc_bench_report_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        write_json_results(&path, "demo", &[("x".to_string(), 2.5)]).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, json_results("demo", &[("x".to_string(), 2.5)]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(micros(42), "42");
        assert_eq!(speedup(100, 10), "10.0x");
        assert_eq!(speedup(100, 0), "inf");
    }
}
