//! Shared helpers for the experiment binaries: dataset iteration, timing, and the
//! per-dataset algorithm configurations used in the paper.

use std::time::Instant;

use rfc_core::bounds::ExtraBound;
use rfc_core::problem::FairCliqueParams;
use rfc_core::search::SearchConfig;
use rfc_datasets::{DatasetSpec, PaperDataset};
use rfc_graph::AttributedGraph;

/// A generated dataset analog together with its spec.
pub struct Workload {
    /// The dataset identifier.
    pub dataset: PaperDataset,
    /// The analog specification (parameter ranges, defaults).
    pub spec: DatasetSpec,
    /// The generated graph.
    pub graph: AttributedGraph,
}

/// Generates the requested datasets (all six by default).
///
/// Set `RFC_BENCH_DATASETS` to a comma-separated list of names (e.g.
/// `"Themarker,Aminer"`) to restrict an experiment run to a subset.
pub fn load_workloads() -> Vec<Workload> {
    let filter: Option<Vec<String>> = std::env::var("RFC_BENCH_DATASETS")
        .ok()
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect());
    PaperDataset::ALL
        .iter()
        .copied()
        .filter(|ds| {
            filter
                .as_ref()
                .map(|f| f.iter().any(|name| name == &ds.name().to_lowercase()))
                .unwrap_or(true)
        })
        .map(|dataset| {
            let spec = dataset.spec();
            let graph = spec.generate();
            Workload {
                dataset,
                spec,
                graph,
            }
        })
        .collect()
}

/// Default parameters of a workload (`k`, `δ` at their per-dataset defaults).
pub fn default_params(spec: &DatasetSpec) -> FairCliqueParams {
    FairCliqueParams::new(spec.default_k, spec.default_delta).expect("spec defaults are valid")
}

/// The extra bound the paper selects for each dataset when running `MaxRFC+ub`
/// (Section VI-B: `ubcp` for Themarker, Google and Pokec; `ubcd` for the others).
pub fn preferred_extra_bound(dataset: PaperDataset) -> ExtraBound {
    match dataset {
        PaperDataset::Themarker | PaperDataset::Google | PaperDataset::Pokec => {
            ExtraBound::ColorfulPath
        }
        _ => ExtraBound::ColorfulDegeneracy,
    }
}

/// The three algorithm configurations compared in Fig. 6 / Fig. 7 / Fig. 9, in order:
/// `MaxRFC`, `MaxRFC+ub`, `MaxRFC+ub+HeurRFC`.
pub fn figure6_configs(dataset: PaperDataset) -> [(&'static str, SearchConfig); 3] {
    let extra = preferred_extra_bound(dataset);
    [
        ("MaxRFC", SearchConfig::basic()),
        ("MaxRFC+ub", SearchConfig::with_bounds(extra)),
        ("MaxRFC+ub+HeurRFC", SearchConfig::full(extra)),
    ]
}

/// Runs a closure and returns its result together with the elapsed wall-clock time in
/// microseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_micros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (value, micros) = timed(|| (0..10_000u64).sum::<u64>());
        assert_eq!(value, 49_995_000);
        // Some time passed but not absurdly much.
        assert!(micros < 1_000_000);
    }

    #[test]
    fn preferred_bounds_match_paper_choices() {
        assert_eq!(
            preferred_extra_bound(PaperDataset::Themarker),
            ExtraBound::ColorfulPath
        );
        assert_eq!(
            preferred_extra_bound(PaperDataset::Dblp),
            ExtraBound::ColorfulDegeneracy
        );
    }

    #[test]
    fn figure6_configs_are_ordered() {
        let configs = figure6_configs(PaperDataset::Flixster);
        assert_eq!(configs[0].0, "MaxRFC");
        assert!(!configs[0].1.use_heuristic);
        assert!(configs[2].1.use_heuristic);
    }
}
