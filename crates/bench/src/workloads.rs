//! Shared helpers for the experiment binaries: dataset iteration, timing, and the
//! per-dataset algorithm configurations used in the paper.

use std::time::Instant;

use rfc_core::bounds::ExtraBound;
use rfc_core::problem::FairCliqueParams;
use rfc_core::search::SearchConfig;
use rfc_datasets::synthetic::{
    add_dense_community, disjoint_union, erdos_renyi, one_big_component, plant_cliques_in_pool,
    BigComponentConfig, DenseCommunity, PlantedClique,
};
use rfc_datasets::{DatasetSpec, PaperDataset};
use rfc_graph::AttributedGraph;

/// A generated dataset analog together with its spec.
pub struct Workload {
    /// The dataset identifier.
    pub dataset: PaperDataset,
    /// The analog specification (parameter ranges, defaults).
    pub spec: DatasetSpec,
    /// The generated graph.
    pub graph: AttributedGraph,
}

/// Generates the requested datasets (all six by default).
///
/// Set `RFC_BENCH_DATASETS` to a comma-separated list of names (e.g.
/// `"Themarker,Aminer"`) to restrict an experiment run to a subset.
pub fn load_workloads() -> Vec<Workload> {
    let filter: Option<Vec<String>> = std::env::var("RFC_BENCH_DATASETS")
        .ok()
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect());
    PaperDataset::ALL
        .iter()
        .copied()
        .filter(|ds| {
            filter
                .as_ref()
                .map(|f| f.iter().any(|name| name == &ds.name().to_lowercase()))
                .unwrap_or(true)
        })
        .map(|dataset| {
            let spec = dataset.spec();
            let graph = spec.generate();
            Workload {
                dataset,
                spec,
                graph,
            }
        })
        .collect()
}

/// Default parameters of a workload (`k`, `δ` at their per-dataset defaults).
pub fn default_params(spec: &DatasetSpec) -> FairCliqueParams {
    FairCliqueParams::new(spec.default_k, spec.default_delta).expect("spec defaults are valid")
}

/// The extra bound the paper selects for each dataset when running `MaxRFC+ub`
/// (Section VI-B: `ubcp` for Themarker, Google and Pokec; `ubcd` for the others).
pub fn preferred_extra_bound(dataset: PaperDataset) -> ExtraBound {
    match dataset {
        PaperDataset::Themarker | PaperDataset::Google | PaperDataset::Pokec => {
            ExtraBound::ColorfulPath
        }
        _ => ExtraBound::ColorfulDegeneracy,
    }
}

/// The three algorithm configurations compared in Fig. 6 / Fig. 7 / Fig. 9, in order:
/// `MaxRFC`, `MaxRFC+ub`, `MaxRFC+ub+HeurRFC`.
pub fn figure6_configs(dataset: PaperDataset) -> [(&'static str, SearchConfig); 3] {
    let extra = preferred_extra_bound(dataset);
    [
        ("MaxRFC", SearchConfig::basic()),
        ("MaxRFC+ub", SearchConfig::with_bounds(extra)),
        ("MaxRFC+ub+HeurRFC", SearchConfig::full(extra)),
    ]
}

/// A scaling workload for the parallel search: the disjoint union of `blobs`
/// components of *increasing* size, each an Erdős–Rényi background with a dense
/// community that survives the reductions and makes its branch-and-bound non-trivial.
/// Only the largest (and last, in vertex-id order) component additionally hides a big
/// planted fair clique inside its community.
///
/// That shape is exactly where component-level dispatch order matters: the serial
/// search visits components in discovery (vertex-id) order and only finds the strong
/// incumbent at the very end, while the parallel search starts the largest component
/// first and shares its incumbent with every other worker immediately, pruning the
/// dense-but-cliqueless components near their roots.
pub fn multi_component_graph(blobs: usize, base_n: usize, seed: u64) -> AttributedGraph {
    let parts: Vec<AttributedGraph> = (0..blobs)
        .map(|i| {
            let n = base_n + i * base_n / 2;
            let p = 12.0 / n as f64; // constant average background degree
            let background = erdos_renyi(n, p, 0.5, seed.wrapping_add(i as u64));
            let community = DenseCommunity {
                size: 45,
                edge_prob: 0.5,
            };
            let (blob, pool) =
                add_dense_community(&background, &community, seed.wrapping_add(7 * i as u64));
            if i + 1 < blobs {
                return blob;
            }
            let planted = PlantedClique {
                count_a: 8,
                count_b: 8,
            };
            plant_cliques_in_pool(&blob, &[planted], &pool, seed ^ 0xfeed).0
        })
        .collect();
    disjoint_union(&parts)
}

/// A *single connected component* stress workload for the intra-component
/// work-stealing search: an Erdős–Rényi background at constant average degree, a dense
/// community on the tail vertex ids and a planted fair clique on the very highest ids.
///
/// With exactly one component, component-level dispatch cannot help at all — every
/// speedup has to come from splitting the branch-and-bound *inside* the component.
/// Because workers pop their own deque LIFO, a parallel worker descends into the
/// *last* root subtree (where the colorful-core order puts the planted clique) almost
/// immediately and shares the strong incumbent, while the serial search grinds through
/// the background subtrees first with a weak incumbent.
pub fn big_component_graph(n: usize, seed: u64) -> AttributedGraph {
    let config = BigComponentConfig {
        n,
        edge_prob: 16.0 / n as f64,
        community: 240,
        community_prob: 0.55,
        planted_half: 18,
        prob_a: 0.5,
    };
    one_big_component(&config, seed).0
}

/// Runs a closure and returns its result together with the elapsed wall-clock time in
/// microseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_micros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (value, micros) = timed(|| (0..10_000u64).sum::<u64>());
        assert_eq!(value, 49_995_000);
        // Some time passed but not absurdly much.
        assert!(micros < 1_000_000);
    }

    #[test]
    fn multi_component_graph_has_the_requested_shape() {
        let g = multi_component_graph(4, 100, 11);
        // Sizes 100 + 150 + 200 + 250.
        assert_eq!(g.num_vertices(), 700);
        let comps = rfc_graph::components::connected_components(&g);
        // ER blobs at average degree 14 are connected with overwhelming probability;
        // allow a couple of stray isolated vertices but require the four cores.
        assert!(comps.num_components >= 4);
        assert!(comps.largest_size() >= 240);
        assert_eq!(
            multi_component_graph(4, 100, 11),
            g,
            "deterministic per seed"
        );
    }

    #[test]
    fn big_component_graph_is_one_component() {
        let g = big_component_graph(300, 17);
        assert_eq!(g.num_vertices(), 300);
        let comps = rfc_graph::components::connected_components(&g);
        assert_eq!(
            comps.num_components, 1,
            "the path edges guarantee connectivity"
        );
        assert_eq!(big_component_graph(300, 17), g, "deterministic per seed");
    }

    #[test]
    fn preferred_bounds_match_paper_choices() {
        assert_eq!(
            preferred_extra_bound(PaperDataset::Themarker),
            ExtraBound::ColorfulPath
        );
        assert_eq!(
            preferred_extra_bound(PaperDataset::Dblp),
            ExtraBound::ColorfulDegeneracy
        );
    }

    #[test]
    fn figure6_configs_are_ordered() {
        let configs = figure6_configs(PaperDataset::Flixster);
        assert_eq!(configs[0].0, "MaxRFC");
        assert!(!configs[0].1.use_heuristic);
        assert!(configs[2].1.use_heuristic);
    }
}
