//! Minimal dependency-free argument parsing for the `maxfairclique` CLI.

use rfc_core::bounds::ExtraBound;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
maxfairclique — maximum relative fair clique search

USAGE:
  maxfairclique solve     --graph FILE | --edges FILE [--attributes FILE]
                          -k K -d DELTA [--bound cd|cp|d|h|ch|none] [--basic]
                          [--no-heuristic] [--weak] [--strong] [--threads N]
                          [--time-limit SECS] [--node-limit N] [--top N]
                          [--portfolio N] [--anytime] [--format text|json]
                          [--trace FILE] [--verbose]
  maxfairclique enumerate --graph FILE | --edges FILE [--attributes FILE]
                          -k K -d DELTA [--weak] [--strong] [--limit N]
                          [--min-size S] [--format text|jsonl] [--threads N]
                          [--time-limit SECS] [--node-limit N] [--trace FILE]
  maxfairclique update    --graph FILE | --edges FILE [--attributes FILE]
                          --stream FILE -k K -d DELTA [--weak] [--strong]
                          [--enumerate] [--threads N] [--trace FILE]
  maxfairclique heuristic --graph FILE | --edges FILE [--attributes FILE]
                          -k K -d DELTA [--seeds N] [--weak] [--strong]
  maxfairclique reduce    --graph FILE | --edges FILE [--attributes FILE]
                          -k K [--output FILE]
  maxfairclique stats     --graph FILE | --edges FILE [--attributes FILE]
                          [--verbose]
  maxfairclique convert   --graph FILE | --edges FILE [--attributes FILE]
                          --output FILE.rfcg
  maxfairclique generate  --dataset NAME | --case-study NAME | --scale N
                          [--output FILE] [--seed S] [--planted-half H]
                          [--prob-a P]
  maxfairclique serve     [--host H] [--port P] [--workers N] [--max-active N]
                          [--max-queue N] [--cache-cap N] [--time-limit SECS]
  maxfairclique client    --connect HOST:PORT
                          ( --load NAME --path FILE | --solve NAME
                          | --enumerate NAME | --update NAME --stream FILE
                          | --stats | --metrics | --ping | --shutdown
                          | --raw LINE )
                          [-k K] [-d DELTA] [--weak] [--strong] [--top N]
                          [--limit N] [--min-size S] [--time-limit SECS]
                          [--node-limit N]
  maxfairclique worker    [--cache-cap N]   (internal: spawned by `serve --workers`)

SCALE TIER:
  `--graph FILE.rfcg` routes solve / enumerate / heuristic / reduce / stats
  through the on-disk binary CSR: the graph is peeled out-of-core and only the
  residual is materialized in memory. `convert` writes the binary format;
  `generate --scale N` streams a power-law graph with a planted fair clique
  straight to `.rfcg` (requires `--output`).

OPTIONS:
  --graph FILE        graph in the maxfairclique text format (n/v/e records),
                      or a binary `.rfcg` on-disk CSR (by extension)
  --edges FILE        whitespace edge list (u v per line, # comments)
  --attributes FILE   attribute list (vertex a|b per line); defaults to attribute a
  -k K                minimum vertices per attribute (default 2)
  -d, --delta D       maximum attribute imbalance (default 1)
  --bound B           extra bound: cd (default), cp, d, h, ch, none
  --basic             basic MaxRFC (size bound only, no heuristic)
  --no-heuristic      disable the HeurRFC warm start
  --weak              weak fairness (no imbalance constraint; ignores --delta)
  --strong            strong fairness (exactly equal counts; ignores --delta)
  --threads N         worker threads for the search (default / 0: all cores;
                      1: deterministic serial; parallel runs may return a
                      different maximum clique of the same optimal size)
  --time-limit SECS   wall-clock budget for the search phase (fractional ok);
                      on exhaustion the verified best-so-far clique is printed
  --node-limit N      branch-and-bound node budget for the search phase
  --top N             report the N largest fair cliques instead of just one
  --portfolio N       race N diversified solver configurations in parallel on
                      a shared incumbent; the first member to prove optimality
                      cancels the rest (useful with --time-limit/--node-limit:
                      the budget-bound answer carries a certified optimality
                      gap). Per-member reports are printed with --verbose
  --anytime           with --portfolio: also run a fairness-preserving local
                      search improver that keeps tightening the incumbent
                      until the budget runs out or a member proves optimality
  --format F          output format: solve takes text (default) or json (one
                      machine-readable object); enumerate takes text (default)
                      or jsonl (one JSON object per clique, pipe-safe)
  --trace FILE        write a hierarchical span trace of the run to FILE as
                      JSONL (one open/close event per line; see the README
                      \"Observability\" section for the schema)
  --stream FILE       JSONL update stream for `update` (one op per line:
                      insert_edge, remove_edge, insert_vertex, restore_vertex,
                      remove_vertex, commit; see the README \"Dynamic graphs\"
                      section); each commit line re-solves incrementally
  --enumerate         after each commit also count the maximal fair cliques
  --limit N           stop enumerating after N maximal fair cliques
  --min-size S        only enumerate maximal fair cliques with >= S vertices
  --seeds N           number of greedy seeds for the heuristic (default 8)
  --dataset NAME      themarker | google | dblp | flixster | pokec | aminer
  --case-study NAME   aminer | dbai | nba | imdb
  --scale N           stream an N-vertex power-law graph with a planted fair
                      clique to `--output FILE.rfcg` (bounded memory)
  --seed S            RNG seed for `generate --scale` (default 42)
  --planted-half H    planted clique has H vertices per attribute (default 10)
  --prob-a P          background attribute-a probability (default 0.5)
  --output FILE       where to write the generated / reduced / converted graph
  --verbose           also print memory-footprint estimates (CSR bytes,
                      bit-matrix bytes, resident bytes of `.rfcg` stores)
  -h, --help          show this help

SERVING (see the README \"Serving\" section for the wire protocol):
  --host H            daemon bind interface (default 127.0.0.1)
  --port P            daemon port (default 7464; 0 picks an ephemeral port,
                      printed on the `listening on` line)
  --workers N         worker child processes; 0 (default) serves in-process,
                      N >= 1 shards every query across N replica processes
  --max-active N      concurrent requests before new ones queue (default 4)
  --max-queue N       queued requests before `overloaded` errors (default 16)
  --cache-cap N       LRU capacity of the per-component result caches
                      (default: unbounded; 0 disables caching)
  --connect ADDR      daemon address for `client` (HOST:PORT)
  --load NAME         client: load the graph at `--path` under NAME
  --path FILE         daemon-side path of the graph file for `--load`
  --solve NAME        client: maximum fair clique query against NAME
  --update NAME       client: apply the `--stream` JSONL ops to NAME
  --stats             client: fetch daemon statistics
  --metrics           client: dump the daemon's metrics registry (Prometheus
                      text exposition format)
  --ping              client: health check
  --shutdown          client: stop the daemon
  --raw LINE          client: send one raw protocol line verbatim
";

/// Which graph input was requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphInput {
    /// Combined-format file (`n`/`v`/`e` records).
    Combined(String),
    /// Raw edge list with an optional attribute list.
    EdgeList {
        /// Path to the edge-list file.
        edges: String,
        /// Optional path to the attribute-list file.
        attributes: Option<String>,
    },
}

/// Output format for the machine-readable subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable lines (the default everywhere).
    #[default]
    Text,
    /// One machine-readable JSON object for the whole result (`solve`).
    Json,
    /// One JSON object per clique, newline-delimited (`enumerate`).
    Jsonl,
}

/// The fairness model to solve for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fairness {
    /// Relative fairness (`k`, `δ`).
    Relative,
    /// Weak fairness (`k` only).
    Weak,
    /// Strong fairness (equal counts, both ≥ `k`).
    Strong,
}

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Exact maximum fair clique search.
    Solve {
        /// Input graph.
        input: GraphInput,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Extra bound selection.
        bound: ExtraBound,
        /// Run the basic configuration (size bound only, no heuristic).
        basic: bool,
        /// Disable the heuristic warm start.
        no_heuristic: bool,
        /// Fairness model.
        fairness: Fairness,
        /// Worker threads for the search (`None`: default, i.e. all cores).
        threads: Option<usize>,
        /// Wall-clock budget for the search phase, in seconds.
        time_limit: Option<f64>,
        /// Branch-node budget for the search phase.
        node_limit: Option<u64>,
        /// Report the N largest fair cliques instead of a single maximum one.
        top: Option<usize>,
        /// Race this many diversified configurations on a shared incumbent.
        portfolio: Option<usize>,
        /// With `portfolio`: also run the anytime local-search improver.
        anytime: bool,
        /// Output format (text or one JSON object).
        format: OutputFormat,
        /// Write a JSONL span trace of the run to this path.
        trace: Option<String>,
        /// Also print memory-footprint estimates.
        verbose: bool,
    },
    /// Enumerate every maximal fair clique.
    Enumerate {
        /// Input graph.
        input: GraphInput,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Fairness model.
        fairness: Fairness,
        /// Stop after this many cliques (`None`: all of them).
        limit: Option<u64>,
        /// Only emit cliques with at least this many vertices.
        min_size: usize,
        /// Output format (text or JSON lines).
        format: OutputFormat,
        /// Worker threads for the enumeration (`None`: default, i.e. all cores).
        threads: Option<usize>,
        /// Wall-clock budget for the enumeration, in seconds.
        time_limit: Option<f64>,
        /// Branch-node budget for the enumeration.
        node_limit: Option<u64>,
        /// Write a JSONL span trace of the run to this path.
        trace: Option<String>,
    },
    /// Replay a JSONL update stream, re-solving incrementally at every commit.
    Update {
        /// Input graph.
        input: GraphInput,
        /// Path to the JSONL update-stream file.
        stream: String,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Fairness model.
        fairness: Fairness,
        /// Also enumerate (count) the maximal fair cliques after each commit.
        enumerate: bool,
        /// Worker threads for the per-commit re-solves (`None`: default, all cores).
        threads: Option<usize>,
        /// Write a JSONL span trace of the replay to this path.
        trace: Option<String>,
    },
    /// Linear-time heuristic only.
    Heuristic {
        /// Input graph.
        input: GraphInput,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Number of greedy seeds.
        seeds: usize,
        /// Fairness model.
        fairness: Fairness,
    },
    /// Run the reduction pipeline and optionally write the reduced graph.
    Reduce {
        /// Input graph.
        input: GraphInput,
        /// Parameter `k`.
        k: usize,
        /// Optional output path.
        output: Option<String>,
    },
    /// Print graph statistics.
    Stats {
        /// Input graph.
        input: GraphInput,
        /// Also print memory-footprint estimates.
        verbose: bool,
    },
    /// Convert a text graph to the binary `.rfcg` on-disk CSR format.
    Convert {
        /// Input graph (text formats).
        input: GraphInput,
        /// Output `.rfcg` path.
        output: String,
    },
    /// Generate a dataset analog, case-study graph, or streamed scale-tier graph.
    Generate {
        /// Dataset analog name (mutually exclusive with the other sources).
        dataset: Option<String>,
        /// Case-study name.
        case_study: Option<String>,
        /// Scale-tier vertex count: stream a power-law + planted-clique graph
        /// straight to `.rfcg` (requires `output`).
        scale: Option<usize>,
        /// RNG seed for `--scale`.
        seed: u64,
        /// Planted-clique half-size for `--scale`.
        planted_half: usize,
        /// Background attribute-`a` probability for `--scale`.
        prob_a: f64,
        /// Optional output path (stdout summary only when absent).
        output: Option<String>,
    },
    /// Run the `maxfaircliqued` daemon.
    Serve {
        /// Bind interface.
        host: String,
        /// Bind port (`0`: ephemeral).
        port: u16,
        /// Worker child processes (`0`: in-process engine).
        workers: usize,
        /// Concurrent requests before queueing.
        max_active: usize,
        /// Queued requests before `overloaded`.
        max_queue: usize,
        /// LRU capacity of the per-component result caches (`None`: unbounded).
        cache_cap: Option<usize>,
        /// Default wall-clock budget for queries that set none, in seconds.
        time_limit: Option<f64>,
    },
    /// One-shot protocol client against a running daemon.
    Client {
        /// Daemon address (`HOST:PORT`).
        connect: String,
        /// The single action to perform.
        action: ClientAction,
    },
    /// Internal: serve the protocol over stdin/stdout (spawned by
    /// `serve --workers`).
    Worker {
        /// LRU capacity of the per-component result caches (`None`: unbounded).
        cache_cap: Option<usize>,
    },
    /// Print the usage text.
    Help,
}

/// The one action a `client` invocation performs.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Load a graph file (daemon-side path) under a registry name.
    Load {
        /// Registry name.
        graph: String,
        /// Daemon-side path of the graph file.
        path: String,
    },
    /// Maximum (or top-N) fair clique query.
    Solve {
        /// Registry name.
        graph: String,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Fairness model.
        fairness: Fairness,
        /// Report the N largest cliques.
        top: Option<usize>,
        /// Wall-clock budget in seconds.
        time_limit: Option<f64>,
        /// Branch-node budget.
        node_limit: Option<u64>,
    },
    /// Stream every maximal fair clique.
    Enumerate {
        /// Registry name.
        graph: String,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Fairness model.
        fairness: Fairness,
        /// Stop after this many cliques.
        limit: Option<u64>,
        /// Only emit cliques with at least this many vertices.
        min_size: usize,
        /// Wall-clock budget in seconds.
        time_limit: Option<f64>,
        /// Branch-node budget.
        node_limit: Option<u64>,
    },
    /// Apply a JSONL op stream as one update batch.
    Update {
        /// Registry name.
        graph: String,
        /// Local path of the JSONL op stream.
        stream: String,
    },
    /// Fetch daemon statistics.
    Stats,
    /// Dump the daemon's metrics registry (Prometheus text exposition format).
    Metrics,
    /// Health check.
    Ping,
    /// Stop the daemon.
    Shutdown,
    /// Send one raw protocol line verbatim.
    Raw {
        /// The line to send.
        line: String,
    },
}

/// Parses the command line (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().peekable();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) if s == "-h" || s == "--help" => return Ok(Command::Help),
        Some(s) => s.clone(),
    };

    // Collect flag/value pairs.
    let mut flags: Vec<(String, Option<String>)> = Vec::new();
    while let Some(arg) = it.next() {
        if arg == "-h" || arg == "--help" {
            return Ok(Command::Help);
        }
        if !arg.starts_with('-') {
            return Err(format!("unexpected positional argument `{arg}`"));
        }
        let takes_value = matches!(
            arg.as_str(),
            "--graph"
                | "--edges"
                | "--attributes"
                | "-k"
                | "-d"
                | "--delta"
                | "--bound"
                | "--threads"
                | "--time-limit"
                | "--node-limit"
                | "--top"
                | "--portfolio"
                | "--format"
                | "--trace"
                | "--limit"
                | "--min-size"
                | "--seeds"
                | "--stream"
                | "--dataset"
                | "--case-study"
                | "--scale"
                | "--seed"
                | "--planted-half"
                | "--prob-a"
                | "--output"
                | "--host"
                | "--port"
                | "--workers"
                | "--max-active"
                | "--max-queue"
                | "--cache-cap"
                | "--connect"
                | "--load"
                | "--solve"
                | "--update"
                | "--path"
                | "--raw"
        ) || (sub == "client" && arg == "--enumerate");
        if takes_value {
            let value = it
                .next()
                .ok_or_else(|| format!("flag `{arg}` expects a value"))?;
            flags.push((arg.clone(), Some(value.clone())));
        } else {
            flags.push((arg.clone(), None));
        }
    }

    let get = |name: &str| -> Option<String> {
        flags
            .iter()
            .find(|(f, _)| f == name)
            .and_then(|(_, v)| v.clone())
    };
    let has = |name: &str| flags.iter().any(|(f, _)| f == name);
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        match get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("invalid value for `{name}`: `{v}`")),
        }
    };

    let input = || -> Result<GraphInput, String> {
        if let Some(path) = get("--graph") {
            Ok(GraphInput::Combined(path))
        } else if let Some(edges) = get("--edges") {
            Ok(GraphInput::EdgeList {
                edges,
                attributes: get("--attributes"),
            })
        } else {
            Err("an input graph is required (`--graph FILE` or `--edges FILE`)".to_string())
        }
    };

    let fairness = || -> Result<Fairness, String> {
        match (has("--weak"), has("--strong")) {
            (true, true) => Err("`--weak` and `--strong` are mutually exclusive".into()),
            (true, false) => Ok(Fairness::Weak),
            (false, true) => Ok(Fairness::Strong),
            (false, false) => Ok(Fairness::Relative),
        }
    };
    // `-d` and `--delta` are aliases; the long form must be looked up *before*
    // defaulting (a `parse_usize("-d", 1)` fallback chain never reaches `--delta`
    // because the default is an `Ok`).
    let delta = || -> Result<usize, String> {
        match get("-d").or_else(|| get("--delta")) {
            None => Ok(1),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("invalid value for `-d`/`--delta`: `{v}`")),
        }
    };
    let threads = || -> Result<Option<usize>, String> {
        match get("--threads") {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("invalid value for `--threads`: `{v}`")),
        }
    };
    let time_limit = || -> Result<Option<f64>, String> {
        match get("--time-limit") {
            None => Ok(None),
            Some(v) => {
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("invalid value for `--time-limit`: `{v}`"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("invalid value for `--time-limit`: `{v}`"));
                }
                Ok(Some(secs))
            }
        }
    };
    let node_limit = || -> Result<Option<u64>, String> {
        match get("--node-limit") {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("invalid value for `--node-limit`: `{v}`")),
        }
    };

    match sub.as_str() {
        "solve" => {
            let bound = match get("--bound").as_deref() {
                None | Some("cd") => ExtraBound::ColorfulDegeneracy,
                Some("cp") => ExtraBound::ColorfulPath,
                Some("d") => ExtraBound::Degeneracy,
                Some("h") => ExtraBound::HIndex,
                Some("ch") => ExtraBound::ColorfulHIndex,
                Some("none") => ExtraBound::None,
                Some(other) => return Err(format!("unknown bound `{other}`")),
            };
            let format = match get("--format").as_deref() {
                None | Some("text") => OutputFormat::Text,
                Some("json") => OutputFormat::Json,
                Some(other) => {
                    return Err(format!(
                        "unknown format `{other}` for `solve` (expected text or json)"
                    ))
                }
            };
            let top = match get("--top") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err(format!("invalid value for `--top`: `{v}` (need N >= 1)")),
                },
            };
            let portfolio = match get("--portfolio") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        return Err(format!(
                            "invalid value for `--portfolio`: `{v}` (need N >= 1)"
                        ))
                    }
                },
            };
            if has("--anytime") && portfolio.is_none() {
                return Err("`--anytime` requires `--portfolio N`".to_string());
            }
            Ok(Command::Solve {
                input: input()?,
                k: parse_usize("-k", 2)?,
                delta: delta()?,
                bound,
                basic: has("--basic"),
                no_heuristic: has("--no-heuristic"),
                fairness: fairness()?,
                threads: threads()?,
                time_limit: time_limit()?,
                node_limit: node_limit()?,
                top,
                portfolio,
                anytime: has("--anytime"),
                format,
                trace: get("--trace"),
                verbose: has("--verbose"),
            })
        }
        "enumerate" => {
            let format = match get("--format").as_deref() {
                None | Some("text") => OutputFormat::Text,
                Some("jsonl") => OutputFormat::Jsonl,
                Some(other) => {
                    return Err(format!(
                        "unknown format `{other}` for `enumerate` (expected text or jsonl)"
                    ))
                }
            };
            let limit = match get("--limit") {
                None => None,
                Some(v) => match v.parse::<u64>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err(format!("invalid value for `--limit`: `{v}` (need N >= 1)")),
                },
            };
            Ok(Command::Enumerate {
                input: input()?,
                k: parse_usize("-k", 2)?,
                delta: delta()?,
                fairness: fairness()?,
                limit,
                min_size: parse_usize("--min-size", 0)?,
                format,
                threads: threads()?,
                time_limit: time_limit()?,
                node_limit: node_limit()?,
                trace: get("--trace"),
            })
        }
        "update" => Ok(Command::Update {
            input: input()?,
            stream: get("--stream")
                .ok_or_else(|| "`update` needs `--stream FILE` (a JSONL op stream)".to_string())?,
            k: parse_usize("-k", 2)?,
            delta: delta()?,
            fairness: fairness()?,
            enumerate: has("--enumerate"),
            threads: threads()?,
            trace: get("--trace"),
        }),
        "heuristic" => Ok(Command::Heuristic {
            input: input()?,
            k: parse_usize("-k", 2)?,
            delta: delta()?,
            seeds: parse_usize("--seeds", 8)?,
            fairness: fairness()?,
        }),
        "reduce" => Ok(Command::Reduce {
            input: input()?,
            k: parse_usize("-k", 2)?,
            output: get("--output"),
        }),
        "stats" => Ok(Command::Stats {
            input: input()?,
            verbose: has("--verbose"),
        }),
        "convert" => Ok(Command::Convert {
            input: input()?,
            output: get("--output")
                .ok_or_else(|| "`convert` needs `--output FILE.rfcg`".to_string())?,
        }),
        "generate" => {
            let dataset = get("--dataset");
            let case_study = get("--case-study");
            let scale = match get("--scale") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err(format!("invalid value for `--scale`: `{v}` (need N >= 1)")),
                },
            };
            let sources = [dataset.is_some(), case_study.is_some(), scale.is_some()];
            match sources.iter().filter(|&&s| s).count() {
                0 => {
                    return Err(
                        "`generate` needs `--dataset NAME`, `--case-study NAME` or `--scale N`"
                            .into(),
                    )
                }
                1 => {}
                _ => {
                    return Err(
                        "`--dataset`, `--case-study` and `--scale` are mutually exclusive".into(),
                    )
                }
            }
            let seed = match get("--seed") {
                None => 42,
                Some(v) => v
                    .parse::<u64>()
                    .map_err(|_| format!("invalid value for `--seed`: `{v}`"))?,
            };
            let prob_a = match get("--prob-a") {
                None => 0.5,
                Some(v) => match v.parse::<f64>() {
                    Ok(p) if (0.0..=1.0).contains(&p) => p,
                    _ => {
                        return Err(format!(
                            "invalid value for `--prob-a`: `{v}` (need 0 <= P <= 1)"
                        ))
                    }
                },
            };
            Ok(Command::Generate {
                dataset,
                case_study,
                scale,
                seed,
                planted_half: parse_usize("--planted-half", 10)?,
                prob_a,
                output: get("--output"),
            })
        }
        "serve" => {
            let port = match get("--port") {
                None => 7464,
                Some(v) => v
                    .parse::<u16>()
                    .map_err(|_| format!("invalid value for `--port`: `{v}`"))?,
            };
            let cache_cap = match get("--cache-cap") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid value for `--cache-cap`: `{v}`"))?,
                ),
            };
            Ok(Command::Serve {
                host: get("--host").unwrap_or_else(|| "127.0.0.1".to_string()),
                port,
                workers: parse_usize("--workers", 0)?,
                max_active: parse_usize("--max-active", 4)?,
                max_queue: parse_usize("--max-queue", 16)?,
                cache_cap,
                time_limit: time_limit()?,
            })
        }
        "client" => {
            let connect = get("--connect")
                .ok_or_else(|| "`client` needs `--connect HOST:PORT`".to_string())?;
            let actions = [
                has("--load"),
                has("--solve"),
                has("--enumerate"),
                has("--update"),
                has("--stats"),
                has("--metrics"),
                has("--ping"),
                has("--shutdown"),
                has("--raw"),
            ];
            if actions.iter().filter(|&&a| a).count() != 1 {
                return Err(
                    "`client` needs exactly one action: `--load NAME --path FILE`, \
                     `--solve NAME`, `--enumerate NAME`, `--update NAME --stream FILE`, \
                     `--stats`, `--metrics`, `--ping`, `--shutdown`, or `--raw LINE`"
                        .to_string(),
                );
            }
            let action = if let Some(graph) = get("--load") {
                ClientAction::Load {
                    graph,
                    path: get("--path").ok_or_else(|| {
                        "`client --load NAME` needs `--path FILE` (a daemon-side path)".to_string()
                    })?,
                }
            } else if let Some(graph) = get("--solve") {
                let top = match get("--top") {
                    None => None,
                    Some(v) => match v.parse::<usize>() {
                        Ok(n) if n >= 1 => Some(n),
                        _ => return Err(format!("invalid value for `--top`: `{v}` (need N >= 1)")),
                    },
                };
                ClientAction::Solve {
                    graph,
                    k: parse_usize("-k", 2)?,
                    delta: delta()?,
                    fairness: fairness()?,
                    top,
                    time_limit: time_limit()?,
                    node_limit: node_limit()?,
                }
            } else if let Some(graph) = get("--enumerate") {
                let limit = match get("--limit") {
                    None => None,
                    Some(v) => match v.parse::<u64>() {
                        Ok(n) if n >= 1 => Some(n),
                        _ => {
                            return Err(format!("invalid value for `--limit`: `{v}` (need N >= 1)"))
                        }
                    },
                };
                ClientAction::Enumerate {
                    graph,
                    k: parse_usize("-k", 2)?,
                    delta: delta()?,
                    fairness: fairness()?,
                    limit,
                    min_size: parse_usize("--min-size", 0)?,
                    time_limit: time_limit()?,
                    node_limit: node_limit()?,
                }
            } else if let Some(graph) = get("--update") {
                ClientAction::Update {
                    graph,
                    stream: get("--stream").ok_or_else(|| {
                        "`client --update NAME` needs `--stream FILE` (a JSONL op stream)"
                            .to_string()
                    })?,
                }
            } else if let Some(line) = get("--raw") {
                ClientAction::Raw { line }
            } else if has("--stats") {
                ClientAction::Stats
            } else if has("--metrics") {
                ClientAction::Metrics
            } else if has("--ping") {
                ClientAction::Ping
            } else {
                ClientAction::Shutdown
            };
            Ok(Command::Client { connect, action })
        }
        "worker" => {
            let cache_cap = match get("--cache-cap") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid value for `--cache-cap`: `{v}`"))?,
                ),
            };
            Ok(Command::Worker { cache_cap })
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_solve_with_defaults() {
        let cmd = parse(&argv("solve --graph g.graph")).unwrap();
        match cmd {
            Command::Solve {
                input,
                k,
                delta,
                bound,
                basic,
                no_heuristic,
                fairness,
                threads,
                time_limit,
                node_limit,
                top,
                portfolio,
                anytime,
                format,
                trace,
                verbose,
            } => {
                assert_eq!(input, GraphInput::Combined("g.graph".into()));
                assert_eq!((k, delta), (2, 1));
                assert_eq!(bound, ExtraBound::ColorfulDegeneracy);
                assert!(!basic && !no_heuristic);
                assert_eq!(fairness, Fairness::Relative);
                assert_eq!(threads, None);
                assert_eq!((time_limit, node_limit, top), (None, None, None));
                assert_eq!((portfolio, anytime), (None, false));
                assert_eq!(format, OutputFormat::Text);
                assert_eq!(trace, None);
                assert!(!verbose);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_solve_with_everything() {
        let cmd = parse(&argv(
            "solve --edges e.txt --attributes a.txt -k 4 -d 2 --bound cp --basic --no-heuristic --strong --threads 4 --time-limit 2.5 --node-limit 1000 --top 3 --portfolio 6 --anytime --format json --trace t.jsonl --verbose",
        ))
        .unwrap();
        match cmd {
            Command::Solve {
                input,
                k,
                delta,
                bound,
                basic,
                no_heuristic,
                fairness,
                threads,
                time_limit,
                node_limit,
                top,
                portfolio,
                anytime,
                format,
                trace,
                verbose,
            } => {
                assert_eq!(
                    input,
                    GraphInput::EdgeList {
                        edges: "e.txt".into(),
                        attributes: Some("a.txt".into())
                    }
                );
                assert_eq!((k, delta), (4, 2));
                assert_eq!(bound, ExtraBound::ColorfulPath);
                assert!(basic && no_heuristic);
                assert_eq!(fairness, Fairness::Strong);
                assert_eq!(threads, Some(4));
                assert_eq!(time_limit, Some(2.5));
                assert_eq!(node_limit, Some(1000));
                assert_eq!(top, Some(3));
                assert_eq!((portfolio, anytime), (Some(6), true));
                assert_eq!(format, OutputFormat::Json);
                assert_eq!(trace.as_deref(), Some("t.jsonl"));
                assert!(verbose);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anytime_without_portfolio_is_rejected() {
        let err = parse(&argv("solve --graph g.graph --anytime")).unwrap_err();
        assert!(err.contains("--portfolio"), "{err}");
        let err = parse(&argv("solve --graph g.graph --portfolio 0")).unwrap_err();
        assert!(err.contains("--portfolio"), "{err}");
        assert!(matches!(
            parse(&argv("solve --graph g.graph --portfolio 2")).unwrap(),
            Command::Solve {
                portfolio: Some(2),
                anytime: false,
                ..
            }
        ));
    }

    #[test]
    fn long_form_delta_is_honored() {
        // Regression: `--delta D` used to be silently ignored (the `-d` lookup
        // returned its default before the fallback could run).
        for sub in ["solve", "enumerate", "heuristic"] {
            let cmd = parse(&argv(&format!("{sub} --graph g.graph -k 2 --delta 3"))).unwrap();
            let delta = match cmd {
                Command::Solve { delta, .. }
                | Command::Enumerate { delta, .. }
                | Command::Heuristic { delta, .. } => delta,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(delta, 3, "{sub}");
        }
        // `-d` wins when both are given (it is listed first).
        assert!(matches!(
            parse(&argv("solve --graph g -d 2 --delta 9")).unwrap(),
            Command::Solve { delta: 2, .. }
        ));
    }

    #[test]
    fn parses_enumerate_with_defaults_and_everything() {
        match parse(&argv("enumerate --graph g.graph")).unwrap() {
            Command::Enumerate {
                input,
                k,
                delta,
                fairness,
                limit,
                min_size,
                format,
                threads,
                time_limit,
                node_limit,
                trace,
            } => {
                assert_eq!(input, GraphInput::Combined("g.graph".into()));
                assert_eq!((k, delta), (2, 1));
                assert_eq!(fairness, Fairness::Relative);
                assert_eq!((limit, min_size), (None, 0));
                assert_eq!(format, OutputFormat::Text);
                assert_eq!((threads, time_limit, node_limit), (None, None, None));
                assert_eq!(trace, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "enumerate --edges e.txt -k 3 --weak --limit 10 --min-size 8 --format jsonl --threads 2 --time-limit 1.5 --node-limit 99 --trace t.jsonl",
        ))
        .unwrap()
        {
            Command::Enumerate {
                k,
                fairness,
                limit,
                min_size,
                format,
                threads,
                time_limit,
                node_limit,
                trace,
                ..
            } => {
                assert_eq!(k, 3);
                assert_eq!(fairness, Fairness::Weak);
                assert_eq!(limit, Some(10));
                assert_eq!(min_size, 8);
                assert_eq!(format, OutputFormat::Jsonl);
                assert_eq!(threads, Some(2));
                assert_eq!(time_limit, Some(1.5));
                assert_eq!(node_limit, Some(99));
                assert_eq!(trace.as_deref(), Some("t.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_other_subcommands() {
        assert!(matches!(
            parse(&argv("heuristic --graph g.graph -k 3 -d 2 --seeds 16")).unwrap(),
            Command::Heuristic {
                seeds: 16,
                k: 3,
                delta: 2,
                fairness: Fairness::Relative,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("heuristic --graph g.graph -k 3 --weak")).unwrap(),
            Command::Heuristic {
                fairness: Fairness::Weak,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("reduce --graph g.graph -k 5 --output out.graph")).unwrap(),
            Command::Reduce {
                k: 5,
                output: Some(_),
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("stats --edges e.txt")).unwrap(),
            Command::Stats { verbose: false, .. }
        ));
        assert!(matches!(
            parse(&argv("stats --edges e.txt --verbose")).unwrap(),
            Command::Stats { verbose: true, .. }
        ));
        assert!(matches!(
            parse(&argv("convert --graph g.graph --output g.rfcg")).unwrap(),
            Command::Convert { .. }
        ));
        assert!(parse(&argv("convert --graph g.graph")).is_err()); // missing output
        match parse(&argv(
            "generate --scale 1000 --seed 7 --planted-half 3 --prob-a 0.25 --output g.rfcg",
        ))
        .unwrap()
        {
            Command::Generate {
                scale,
                seed,
                planted_half,
                prob_a,
                output,
                dataset,
                case_study,
            } => {
                assert_eq!(scale, Some(1000));
                assert_eq!(seed, 7);
                assert_eq!(planted_half, 3);
                assert_eq!(prob_a, 0.25);
                assert_eq!(output.as_deref(), Some("g.rfcg"));
                assert!(dataset.is_none() && case_study.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("generate --scale 0")).is_err());
        assert!(parse(&argv("generate --scale ten")).is_err());
        assert!(parse(&argv("generate --scale 10 --dataset dblp")).is_err());
        assert!(parse(&argv("generate --scale 10 --prob-a 1.5")).is_err());
        assert!(parse(&argv("generate --scale 10 --seed minus")).is_err());
        assert!(matches!(
            parse(&argv("generate --dataset aminer --output g.graph")).unwrap(),
            Command::Generate {
                dataset: Some(_),
                case_study: None,
                ..
            }
        ));
        assert!(matches!(parse(&argv("--help")).unwrap(), Command::Help));
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn parses_update() {
        match parse(&argv(
            "update --graph g.graph --stream s.jsonl -k 3 --delta 2 --strong --enumerate --threads 2",
        ))
        .unwrap()
        {
            Command::Update {
                input,
                stream,
                k,
                delta,
                fairness,
                enumerate,
                threads,
                trace,
            } => {
                assert_eq!(input, GraphInput::Combined("g.graph".into()));
                assert_eq!(stream, "s.jsonl");
                assert_eq!((k, delta), (3, 2));
                assert_eq!(fairness, Fairness::Strong);
                assert!(enumerate);
                assert_eq!(threads, Some(2));
                assert_eq!(trace, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&argv("update --edges e.txt --stream s.jsonl")).unwrap(),
            Command::Update {
                k: 2,
                delta: 1,
                fairness: Fairness::Relative,
                enumerate: false,
                threads: None,
                ..
            }
        ));
        assert!(parse(&argv("update --graph g.graph")).is_err()); // missing stream
        assert!(parse(&argv("update --stream s.jsonl")).is_err()); // missing input
        assert!(parse(&argv("update --graph g --stream s --weak --strong")).is_err());
    }

    #[test]
    fn parses_serve_client_worker() {
        match parse(&argv("serve")).unwrap() {
            Command::Serve {
                host,
                port,
                workers,
                max_active,
                max_queue,
                cache_cap,
                time_limit,
            } => {
                assert_eq!(host, "127.0.0.1");
                assert_eq!(port, 7464);
                assert_eq!((workers, max_active, max_queue), (0, 4, 16));
                assert_eq!((cache_cap, time_limit), (None, None));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "serve --host 0.0.0.0 --port 0 --workers 3 --max-active 2 --max-queue 1 --cache-cap 64 --time-limit 0.5",
        ))
        .unwrap()
        {
            Command::Serve {
                host,
                port,
                workers,
                max_active,
                max_queue,
                cache_cap,
                time_limit,
            } => {
                assert_eq!(host, "0.0.0.0");
                assert_eq!(port, 0);
                assert_eq!((workers, max_active, max_queue), (3, 2, 1));
                assert_eq!(cache_cap, Some(64));
                assert_eq!(time_limit, Some(0.5));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "client --connect 127.0.0.1:7464 --solve g -k 3 -d 2 --top 5 --node-limit 100",
        ))
        .unwrap()
        {
            Command::Client { connect, action } => {
                assert_eq!(connect, "127.0.0.1:7464");
                assert_eq!(
                    action,
                    ClientAction::Solve {
                        graph: "g".into(),
                        k: 3,
                        delta: 2,
                        fairness: Fairness::Relative,
                        top: Some(5),
                        time_limit: None,
                        node_limit: Some(100),
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // `--enumerate` takes a value under `client` (unlike `update --enumerate`).
        match parse(&argv(
            "client --connect h:1 --enumerate g --limit 10 --min-size 4 --weak",
        ))
        .unwrap()
        {
            Command::Client {
                action:
                    ClientAction::Enumerate {
                        graph,
                        fairness,
                        limit,
                        min_size,
                        ..
                    },
                ..
            } => {
                assert_eq!(graph, "g");
                assert_eq!(fairness, Fairness::Weak);
                assert_eq!((limit, min_size), (Some(10), 4));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&argv("client --connect h:1 --load g --path /tmp/g.graph")).unwrap(),
            Command::Client {
                action: ClientAction::Load { .. },
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("client --connect h:1 --update g --stream ops.jsonl")).unwrap(),
            Command::Client {
                action: ClientAction::Update { .. },
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("client --connect h:1 --stats")).unwrap(),
            Command::Client {
                action: ClientAction::Stats,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("client --connect h:1 --metrics")).unwrap(),
            Command::Client {
                action: ClientAction::Metrics,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("client --connect h:1 --shutdown")).unwrap(),
            Command::Client {
                action: ClientAction::Shutdown,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("worker --cache-cap 8")).unwrap(),
            Command::Worker { cache_cap: Some(8) }
        ));
        assert!(matches!(
            parse(&argv("worker")).unwrap(),
            Command::Worker { cache_cap: None }
        ));
    }

    #[test]
    fn rejects_malformed_serve_client() {
        assert!(parse(&argv("serve --port notaport")).is_err());
        assert!(parse(&argv("serve --port 70000")).is_err());
        assert!(parse(&argv("serve --cache-cap many")).is_err());
        assert!(parse(&argv("client --solve g")).is_err()); // missing --connect
        assert!(parse(&argv("client --connect h:1")).is_err()); // no action
        assert!(parse(&argv("client --connect h:1 --solve g --stats")).is_err()); // two actions
        assert!(parse(&argv("client --connect h:1 --metrics --ping")).is_err()); // two actions
        assert!(parse(&argv("client --connect h:1 --load g")).is_err()); // missing --path
        assert!(parse(&argv("client --connect h:1 --update g")).is_err()); // missing --stream
        assert!(parse(&argv("client --connect h:1 --solve g --top 0")).is_err());
        assert!(parse(&argv("client --connect h:1 --enumerate g --limit 0")).is_err());
        assert!(parse(&argv("client --connect h:1 --solve g --weak --strong")).is_err());
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("solve")).is_err()); // missing input
        assert!(parse(&argv("solve --graph")).is_err()); // missing value
        assert!(parse(&argv("solve --graph g -k nope")).is_err());
        assert!(parse(&argv("solve --graph g --bound bogus")).is_err());
        assert!(parse(&argv("solve --graph g --threads many")).is_err());
        assert!(parse(&argv("solve --graph g --threads")).is_err());
        assert!(parse(&argv("solve --graph g --weak --strong")).is_err());
        assert!(parse(&argv("heuristic --graph g --weak --strong")).is_err());
        assert!(parse(&argv("solve --graph g --time-limit fast")).is_err());
        assert!(parse(&argv("solve --graph g --time-limit -1")).is_err());
        assert!(parse(&argv("solve --graph g --node-limit many")).is_err());
        assert!(parse(&argv("solve --graph g --top 0")).is_err());
        assert!(parse(&argv("solve --graph g --top three")).is_err());
        assert!(parse(&argv("solve --graph g --delta nope")).is_err());
        assert!(parse(&argv("solve --graph g --format jsonl")).is_err());
        assert!(parse(&argv("solve --graph g --format bogus")).is_err());
        assert!(parse(&argv("enumerate")).is_err()); // missing input
        assert!(parse(&argv("enumerate --graph g --format json")).is_err());
        assert!(parse(&argv("enumerate --graph g --limit 0")).is_err());
        assert!(parse(&argv("enumerate --graph g --limit many")).is_err());
        assert!(parse(&argv("enumerate --graph g --min-size tall")).is_err());
        assert!(parse(&argv("enumerate --graph g --weak --strong")).is_err());
        assert!(parse(&argv("enumerate --graph g --time-limit -2")).is_err());
        assert!(parse(&argv("generate")).is_err());
        assert!(parse(&argv("generate --dataset a --case-study b")).is_err());
        assert!(parse(&argv("solve positional")).is_err());
    }
}
