//! Minimal dependency-free argument parsing for the `maxfairclique` CLI.

use rfc_core::bounds::ExtraBound;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
maxfairclique — maximum relative fair clique search

USAGE:
  maxfairclique solve     --graph FILE | --edges FILE [--attributes FILE]
                          -k K -d DELTA [--bound cd|cp|d|h|ch|none] [--basic]
                          [--no-heuristic] [--weak] [--strong] [--threads N]
                          [--time-limit SECS] [--node-limit N] [--top N]
  maxfairclique heuristic --graph FILE | --edges FILE [--attributes FILE]
                          -k K -d DELTA [--seeds N] [--weak] [--strong]
  maxfairclique reduce    --graph FILE | --edges FILE [--attributes FILE]
                          -k K [--output FILE]
  maxfairclique stats     --graph FILE | --edges FILE [--attributes FILE]
  maxfairclique generate  --dataset NAME | --case-study NAME [--output FILE]

OPTIONS:
  --graph FILE        graph in the maxfairclique text format (n/v/e records)
  --edges FILE        whitespace edge list (u v per line, # comments)
  --attributes FILE   attribute list (vertex a|b per line); defaults to attribute a
  -k K                minimum vertices per attribute (default 2)
  -d, --delta D       maximum attribute imbalance (default 1)
  --bound B           extra bound: cd (default), cp, d, h, ch, none
  --basic             basic MaxRFC (size bound only, no heuristic)
  --no-heuristic      disable the HeurRFC warm start
  --weak              weak fairness (no imbalance constraint; ignores --delta)
  --strong            strong fairness (exactly equal counts; ignores --delta)
  --threads N         worker threads for the search (default / 0: all cores;
                      1: deterministic serial; parallel runs may return a
                      different maximum clique of the same optimal size)
  --time-limit SECS   wall-clock budget for the search phase (fractional ok);
                      on exhaustion the verified best-so-far clique is printed
  --node-limit N      branch-and-bound node budget for the search phase
  --top N             report the N largest fair cliques instead of just one
  --seeds N           number of greedy seeds for the heuristic (default 8)
  --dataset NAME      themarker | google | dblp | flixster | pokec | aminer
  --case-study NAME   aminer | dbai | nba | imdb
  --output FILE       where to write the generated / reduced graph
  -h, --help          show this help
";

/// Which graph input was requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphInput {
    /// Combined-format file (`n`/`v`/`e` records).
    Combined(String),
    /// Raw edge list with an optional attribute list.
    EdgeList {
        /// Path to the edge-list file.
        edges: String,
        /// Optional path to the attribute-list file.
        attributes: Option<String>,
    },
}

/// The fairness model to solve for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fairness {
    /// Relative fairness (`k`, `δ`).
    Relative,
    /// Weak fairness (`k` only).
    Weak,
    /// Strong fairness (equal counts, both ≥ `k`).
    Strong,
}

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Exact maximum fair clique search.
    Solve {
        /// Input graph.
        input: GraphInput,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Extra bound selection.
        bound: ExtraBound,
        /// Run the basic configuration (size bound only, no heuristic).
        basic: bool,
        /// Disable the heuristic warm start.
        no_heuristic: bool,
        /// Fairness model.
        fairness: Fairness,
        /// Worker threads for the search (`None`: default, i.e. all cores).
        threads: Option<usize>,
        /// Wall-clock budget for the search phase, in seconds.
        time_limit: Option<f64>,
        /// Branch-node budget for the search phase.
        node_limit: Option<u64>,
        /// Report the N largest fair cliques instead of a single maximum one.
        top: Option<usize>,
    },
    /// Linear-time heuristic only.
    Heuristic {
        /// Input graph.
        input: GraphInput,
        /// Parameter `k`.
        k: usize,
        /// Parameter `δ`.
        delta: usize,
        /// Number of greedy seeds.
        seeds: usize,
        /// Fairness model.
        fairness: Fairness,
    },
    /// Run the reduction pipeline and optionally write the reduced graph.
    Reduce {
        /// Input graph.
        input: GraphInput,
        /// Parameter `k`.
        k: usize,
        /// Optional output path.
        output: Option<String>,
    },
    /// Print graph statistics.
    Stats {
        /// Input graph.
        input: GraphInput,
    },
    /// Generate a dataset analog or case-study graph.
    Generate {
        /// Dataset analog name (mutually exclusive with `case_study`).
        dataset: Option<String>,
        /// Case-study name.
        case_study: Option<String>,
        /// Optional output path (stdout summary only when absent).
        output: Option<String>,
    },
    /// Print the usage text.
    Help,
}

/// Parses the command line (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().peekable();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) if s == "-h" || s == "--help" => return Ok(Command::Help),
        Some(s) => s.clone(),
    };

    // Collect flag/value pairs.
    let mut flags: Vec<(String, Option<String>)> = Vec::new();
    while let Some(arg) = it.next() {
        if arg == "-h" || arg == "--help" {
            return Ok(Command::Help);
        }
        if !arg.starts_with('-') {
            return Err(format!("unexpected positional argument `{arg}`"));
        }
        let takes_value = matches!(
            arg.as_str(),
            "--graph"
                | "--edges"
                | "--attributes"
                | "-k"
                | "-d"
                | "--delta"
                | "--bound"
                | "--threads"
                | "--time-limit"
                | "--node-limit"
                | "--top"
                | "--seeds"
                | "--dataset"
                | "--case-study"
                | "--output"
        );
        if takes_value {
            let value = it
                .next()
                .ok_or_else(|| format!("flag `{arg}` expects a value"))?;
            flags.push((arg.clone(), Some(value.clone())));
        } else {
            flags.push((arg.clone(), None));
        }
    }

    let get = |name: &str| -> Option<String> {
        flags
            .iter()
            .find(|(f, _)| f == name)
            .and_then(|(_, v)| v.clone())
    };
    let has = |name: &str| flags.iter().any(|(f, _)| f == name);
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        match get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("invalid value for `{name}`: `{v}`")),
        }
    };

    let input = || -> Result<GraphInput, String> {
        if let Some(path) = get("--graph") {
            Ok(GraphInput::Combined(path))
        } else if let Some(edges) = get("--edges") {
            Ok(GraphInput::EdgeList {
                edges,
                attributes: get("--attributes"),
            })
        } else {
            Err("an input graph is required (`--graph FILE` or `--edges FILE`)".to_string())
        }
    };

    let fairness = || -> Result<Fairness, String> {
        match (has("--weak"), has("--strong")) {
            (true, true) => Err("`--weak` and `--strong` are mutually exclusive".into()),
            (true, false) => Ok(Fairness::Weak),
            (false, true) => Ok(Fairness::Strong),
            (false, false) => Ok(Fairness::Relative),
        }
    };

    match sub.as_str() {
        "solve" => {
            let bound = match get("--bound").as_deref() {
                None | Some("cd") => ExtraBound::ColorfulDegeneracy,
                Some("cp") => ExtraBound::ColorfulPath,
                Some("d") => ExtraBound::Degeneracy,
                Some("h") => ExtraBound::HIndex,
                Some("ch") => ExtraBound::ColorfulHIndex,
                Some("none") => ExtraBound::None,
                Some(other) => return Err(format!("unknown bound `{other}`")),
            };
            let threads = match get("--threads") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid value for `--threads`: `{v}`"))?,
                ),
            };
            let time_limit = match get("--time-limit") {
                None => None,
                Some(v) => {
                    let secs = v
                        .parse::<f64>()
                        .map_err(|_| format!("invalid value for `--time-limit`: `{v}`"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(format!("invalid value for `--time-limit`: `{v}`"));
                    }
                    Some(secs)
                }
            };
            let node_limit = match get("--node-limit") {
                None => None,
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid value for `--node-limit`: `{v}`"))?,
                ),
            };
            let top = match get("--top") {
                None => None,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err(format!("invalid value for `--top`: `{v}` (need N >= 1)")),
                },
            };
            Ok(Command::Solve {
                input: input()?,
                k: parse_usize("-k", 2)?,
                delta: parse_usize("-d", 1).or_else(|_| parse_usize("--delta", 1))?,
                bound,
                basic: has("--basic"),
                no_heuristic: has("--no-heuristic"),
                fairness: fairness()?,
                threads,
                time_limit,
                node_limit,
                top,
            })
        }
        "heuristic" => Ok(Command::Heuristic {
            input: input()?,
            k: parse_usize("-k", 2)?,
            delta: parse_usize("-d", 1).or_else(|_| parse_usize("--delta", 1))?,
            seeds: parse_usize("--seeds", 8)?,
            fairness: fairness()?,
        }),
        "reduce" => Ok(Command::Reduce {
            input: input()?,
            k: parse_usize("-k", 2)?,
            output: get("--output"),
        }),
        "stats" => Ok(Command::Stats { input: input()? }),
        "generate" => {
            let dataset = get("--dataset");
            let case_study = get("--case-study");
            if dataset.is_none() && case_study.is_none() {
                return Err("`generate` needs `--dataset NAME` or `--case-study NAME`".into());
            }
            if dataset.is_some() && case_study.is_some() {
                return Err("`--dataset` and `--case-study` are mutually exclusive".into());
            }
            Ok(Command::Generate {
                dataset,
                case_study,
                output: get("--output"),
            })
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_solve_with_defaults() {
        let cmd = parse(&argv("solve --graph g.graph")).unwrap();
        match cmd {
            Command::Solve {
                input,
                k,
                delta,
                bound,
                basic,
                no_heuristic,
                fairness,
                threads,
                time_limit,
                node_limit,
                top,
            } => {
                assert_eq!(input, GraphInput::Combined("g.graph".into()));
                assert_eq!((k, delta), (2, 1));
                assert_eq!(bound, ExtraBound::ColorfulDegeneracy);
                assert!(!basic && !no_heuristic);
                assert_eq!(fairness, Fairness::Relative);
                assert_eq!(threads, None);
                assert_eq!((time_limit, node_limit, top), (None, None, None));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_solve_with_everything() {
        let cmd = parse(&argv(
            "solve --edges e.txt --attributes a.txt -k 4 -d 2 --bound cp --basic --no-heuristic --strong --threads 4 --time-limit 2.5 --node-limit 1000 --top 3",
        ))
        .unwrap();
        match cmd {
            Command::Solve {
                input,
                k,
                delta,
                bound,
                basic,
                no_heuristic,
                fairness,
                threads,
                time_limit,
                node_limit,
                top,
            } => {
                assert_eq!(
                    input,
                    GraphInput::EdgeList {
                        edges: "e.txt".into(),
                        attributes: Some("a.txt".into())
                    }
                );
                assert_eq!((k, delta), (4, 2));
                assert_eq!(bound, ExtraBound::ColorfulPath);
                assert!(basic && no_heuristic);
                assert_eq!(fairness, Fairness::Strong);
                assert_eq!(threads, Some(4));
                assert_eq!(time_limit, Some(2.5));
                assert_eq!(node_limit, Some(1000));
                assert_eq!(top, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_other_subcommands() {
        assert!(matches!(
            parse(&argv("heuristic --graph g.graph -k 3 -d 2 --seeds 16")).unwrap(),
            Command::Heuristic {
                seeds: 16,
                k: 3,
                delta: 2,
                fairness: Fairness::Relative,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("heuristic --graph g.graph -k 3 --weak")).unwrap(),
            Command::Heuristic {
                fairness: Fairness::Weak,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("reduce --graph g.graph -k 5 --output out.graph")).unwrap(),
            Command::Reduce {
                k: 5,
                output: Some(_),
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("stats --edges e.txt")).unwrap(),
            Command::Stats { .. }
        ));
        assert!(matches!(
            parse(&argv("generate --dataset aminer --output g.graph")).unwrap(),
            Command::Generate {
                dataset: Some(_),
                case_study: None,
                ..
            }
        ));
        assert!(matches!(parse(&argv("--help")).unwrap(), Command::Help));
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("solve")).is_err()); // missing input
        assert!(parse(&argv("solve --graph")).is_err()); // missing value
        assert!(parse(&argv("solve --graph g -k nope")).is_err());
        assert!(parse(&argv("solve --graph g --bound bogus")).is_err());
        assert!(parse(&argv("solve --graph g --threads many")).is_err());
        assert!(parse(&argv("solve --graph g --threads")).is_err());
        assert!(parse(&argv("solve --graph g --weak --strong")).is_err());
        assert!(parse(&argv("heuristic --graph g --weak --strong")).is_err());
        assert!(parse(&argv("solve --graph g --time-limit fast")).is_err());
        assert!(parse(&argv("solve --graph g --time-limit -1")).is_err());
        assert!(parse(&argv("solve --graph g --node-limit many")).is_err());
        assert!(parse(&argv("solve --graph g --top 0")).is_err());
        assert!(parse(&argv("solve --graph g --top three")).is_err());
        assert!(parse(&argv("generate")).is_err());
        assert!(parse(&argv("generate --dataset a --case-study b")).is_err());
        assert!(parse(&argv("solve positional")).is_err());
    }
}
