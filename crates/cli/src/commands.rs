//! Execution of the parsed CLI commands.

use std::collections::HashMap;
use std::fs::File;
use std::time::Duration;

use rfc_core::bounds::BoundConfig;
use rfc_core::dynamic::DynamicRfcSolver;
use rfc_core::enumerate::{
    clique_json, CliqueSink, CountSink, EnumOutcome, EnumQuery, EnumTermination, JsonlSink,
    LimitSink, SinkFlow,
};
use rfc_core::heuristic::HeuristicConfig;
use rfc_core::portfolio::PortfolioConfig;
use rfc_core::problem::{FairClique, FairCliqueParams, FairnessModel};
use rfc_core::reduction::streaming::reduce_store;
use rfc_core::reduction::{apply_reductions, ReductionConfig};
use rfc_core::scale::ScaleSolver;
use rfc_core::search::{SearchConfig, ThreadCount};
use rfc_core::solver::{Budget, Objective, Query, RfcSolver, Solution, Termination};
use rfc_core::verify;
use rfc_datasets::case_study::CaseStudy;
use rfc_datasets::scale::{generate_scale_rfcg, ScaleConfig};
use rfc_datasets::PaperDataset;
use rfc_graph::delta::UpdateOp;
use rfc_graph::disk::{write_rfcg, DiskCsr};
use rfc_graph::io;
use rfc_graph::store::GraphStore;
use rfc_graph::AttributedGraph;

use rfc_graph::json::JsonValue;
use rfc_serve::engine::EngineConfig;
use rfc_serve::protocol::{self, EnumSpec, QuerySpec, Request};
use rfc_serve::server::{ServeConfig, Server};

use crate::args::{ClientAction, Command, Fairness, GraphInput, OutputFormat, USAGE};
use crate::output::{errln, outln, Output};

/// Returns the path when the input is a binary `.rfcg` store (routed through the
/// scale tier instead of the text readers).
fn rfcg_path(input: &GraphInput) -> Option<&str> {
    match input {
        GraphInput::Combined(path) if path.ends_with(".rfcg") => Some(path),
        _ => None,
    }
}

/// Opens a `.rfcg` store in streaming mode with a path-prefixed error.
fn open_rfcg(path: &str) -> Result<DiskCsr, String> {
    DiskCsr::open(path).map_err(|e| format!("{path}: {e}"))
}

/// Builds a [`ScaleSolver`] (out-of-core peel + residual extraction) over a store,
/// reporting the store → residual shrink under `--verbose`. The CLI budget also
/// covers this construction phase: a `--time-limit` that expires mid-peel
/// surfaces as a clean `budget exhausted` error instead of an unbounded scan.
fn scale_solver(
    out: &mut Output,
    path: &str,
    store: &DiskCsr,
    k: usize,
    budget: &Budget,
    verbose: bool,
) -> Result<ScaleSolver, String> {
    let solver = ScaleSolver::from_store_budgeted(store, k, budget, None).map_err(|e| match e {
        rfc_core::scale::ScaleError::BudgetExhausted => format!(
            "{path}: budget exhausted during the out-of-core reduction \
                 (raise --time-limit / --node-limit)"
        ),
        other => format!("{path}: {other}"),
    })?;
    if verbose {
        let s = solver.stats();
        outln!(
            out,
            "scale tier: store {} vertices / {} edges -> peel survivors {} -> \
             residual {} vertices / {} edges ({} µs scan, {} µs cascade, {} µs extract)",
            s.store_vertices,
            s.store_edges,
            s.peel.surviving_vertices,
            s.residual_vertices,
            s.residual_edges,
            s.peel.scan_micros,
            s.peel.cascade_micros,
            s.extract_micros
        );
        outln!(
            out,
            "resident bytes: store {} (streaming), residual graph {}",
            store.resident_bytes(),
            solver.residual_resident_bytes()
        );
    }
    Ok(solver)
}

/// Either of the two solver backends: in-memory, or scale-tier over a `.rfcg`
/// store. Both answer the same queries; the scale variant reports store ids.
enum AnySolver {
    /// The classic in-memory solver.
    Mem(RfcSolver),
    /// The out-of-core peel + residual solver.
    Scale(ScaleSolver),
}

impl AnySolver {
    fn enumerate(
        &self,
        query: &EnumQuery,
        sink: &mut dyn CliqueSink,
    ) -> Result<EnumOutcome, String> {
        match self {
            AnySolver::Mem(solver) => solver.enumerate(query, sink).map_err(|e| e.to_string()),
            AnySolver::Scale(solver) => solver.enumerate(query, sink).map_err(|e| e.to_string()),
        }
    }
}

/// Installs a JSONL file sink for `--trace FILE`. The returned guard keeps tracing
/// enabled for the rest of the command and flushes + closes the file on drop.
fn install_trace(trace: Option<&str>) -> Result<Option<rfc_obs::trace::TraceGuard>, String> {
    match trace {
        None => Ok(None),
        Some(path) => {
            let sink =
                rfc_obs::trace::FileSink::create(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Some(rfc_obs::trace::install(Box::new(sink))))
        }
    }
}

/// Maps the CLI `--threads N` value onto a search [`ThreadCount`]: absent or `0` means
/// all cores, `1` means the deterministic serial path, anything else a fixed pool.
fn thread_count(threads: Option<usize>) -> ThreadCount {
    match threads {
        None | Some(0) => ThreadCount::Auto,
        Some(1) => ThreadCount::Serial,
        Some(n) => ThreadCount::Fixed(n),
    }
}

/// Maps the CLI fairness selection onto the core's first-class [`FairnessModel`] —
/// the weak/strong δ handling lives in `rfc_core` now, not here.
fn fairness_model(fairness: Fairness, k: usize, delta: usize) -> FairnessModel {
    match fairness {
        Fairness::Relative => FairnessModel::Relative { k, delta },
        Fairness::Weak => FairnessModel::Weak { k },
        Fairness::Strong => FairnessModel::Strong { k },
    }
}

/// Builds a search/enumeration [`Budget`] from the CLI's `--time-limit`/`--node-limit`
/// values, rejecting time limits beyond what [`Duration`] can represent.
fn build_budget(time_limit: Option<f64>, node_limit: Option<u64>) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    if let Some(secs) = time_limit {
        let limit = Duration::try_from_secs_f64(secs)
            .map_err(|_| format!("`--time-limit {secs}` is out of range"))?;
        budget = budget.with_time_limit(limit);
    }
    if let Some(nodes) = node_limit {
        budget = budget.with_node_limit(nodes);
    }
    Ok(budget)
}

/// One-line human description of how an enumeration run ended. A sink-driven stop
/// is only attributed to `--limit` when that limit was actually given and reached
/// (the JSONL sink also stops on a consumer-closed pipe).
fn enum_termination_desc(
    termination: EnumTermination,
    limit: Option<u64>,
    emitted: u64,
) -> &'static str {
    match termination {
        EnumTermination::Complete => "complete",
        EnumTermination::SinkStopped if limit == Some(emitted) => "stopped at the requested limit",
        EnumTermination::SinkStopped => "stopped by the sink",
        EnumTermination::BudgetExhausted => "budget exhausted: partial",
        EnumTermination::Cancelled => "cancelled: partial",
    }
}

/// The stable machine-readable name of a [`Termination`].
fn termination_str(termination: Termination) -> &'static str {
    match termination {
        Termination::Optimal => "optimal",
        Termination::Infeasible => "infeasible",
        Termination::BudgetExhausted => "budget_exhausted",
        Termination::Cancelled => "cancelled",
    }
}

/// Renders a [`Solution`] as one machine-readable JSON object (the `solve
/// --format json` output).
fn solution_json(model: FairnessModel, solution: &Solution) -> String {
    use std::fmt::Write as _;
    let termination = termination_str(solution.termination);
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"model\":\"{}\",\"termination\":\"{termination}\",\"cliques\":[",
        rfc_graph::json::escaped(&model.to_string())
    );
    for (i, clique) in solution.cliques.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&clique_json(clique));
    }
    let stats = &solution.stats;
    let heuristic = stats
        .heuristic_size
        .map_or_else(|| "null".to_string(), |n| n.to_string());
    let _ = write!(
        s,
        "],\"stats\":{{\"branches\":{},\"bound_prunes\":{},\"feasibility_prunes\":{},\
         \"components\":{},\"elapsed_us\":{},\"cpu_us\":{},\"reduction\":{{\"original_edges\":{},\
         \"final_edges\":{}}}}},\"heuristic_size\":{},\"upper_bound\":{},\
         \"optimality_gap\":{},\"reduction_cache_hit\":{}}}",
        stats.branches,
        stats.bound_prunes,
        stats.feasibility_prunes,
        stats.components_searched,
        stats.elapsed_micros,
        stats.cpu_micros,
        stats.reduction.original_edges,
        stats.reduction.final_edges(),
        heuristic,
        opt_usize_json(solution.upper_bound),
        opt_usize_json(solution.optimality_gap()),
        solution.reduction_cache_hit,
    );
    s
}

/// `Option<usize>` as a JSON number or `null`.
fn opt_usize_json(value: Option<usize>) -> String {
    value.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// Runs a parsed command, returning a human-readable error on failure.
///
/// All regular output goes through [`Output`], which turns a consumer-closed pipe
/// (`maxfairclique … | head`) into a clean exit instead of a broken-pipe panic.
pub fn run(command: Command) -> Result<(), String> {
    let mut out = Output::stdout();
    match command {
        Command::Help => {
            outln!(out, "{USAGE}");
            Ok(())
        }
        Command::Stats { input, verbose } => {
            if let Some(path) = rfcg_path(&input) {
                let store = open_rfcg(path)?;
                let counts = store.attribute_counts();
                outln!(
                    out,
                    "rfcg store: n={} m={} attrs=(a: {}, b: {})",
                    store.num_vertices(),
                    store.num_edges(),
                    counts.a(),
                    counts.b()
                );
                if verbose {
                    outln!(
                        out,
                        "memory: resident {} bytes (streaming mode; neighbor lists stay on disk)",
                        store.resident_bytes()
                    );
                }
                return Ok(());
            }
            let graph = load_graph(&input)?;
            let stats = graph.stats();
            outln!(out, "{stats}");
            outln!(
                out,
                "non-isolated vertices: {}",
                graph.num_non_isolated_vertices()
            );
            if verbose {
                outln!(
                    out,
                    "memory: csr {} bytes, dense bit-matrix {} bytes if built",
                    stats.csr_bytes,
                    stats.bitmatrix_bytes
                );
            }
            Ok(())
        }
        Command::Solve {
            input,
            k,
            delta,
            bound,
            basic,
            no_heuristic,
            fairness,
            threads,
            time_limit,
            node_limit,
            top,
            portfolio,
            anytime,
            format,
            trace,
            verbose,
        } => {
            let _trace_guard = install_trace(trace.as_deref())?;
            let model = fairness_model(fairness, k, delta);
            let config = if basic {
                SearchConfig::basic()
            } else {
                SearchConfig {
                    bounds: BoundConfig::with_extra(bound),
                    use_heuristic: !no_heuristic,
                    ..SearchConfig::default()
                }
            }
            .with_threads(thread_count(threads));
            let budget = build_budget(time_limit, node_limit)?;
            let mut query = Query::new(model).with_config(config).with_budget(budget);
            if let Some(n) = top {
                query = query.with_objective(Objective::TopK(n));
            }
            let racing = portfolio.map(|n| PortfolioConfig::new(n).with_anytime(anytime));
            let (solution, members) = if let Some(path) = rfcg_path(&input) {
                let store = open_rfcg(path)?;
                let solver = scale_solver(&mut out, path, &store, model.k(), &budget, verbose)?;
                match &racing {
                    Some(cfg) => {
                        let outcome = solver
                            .solve_portfolio(&query, cfg)
                            .map_err(|e| e.to_string())?;
                        (outcome.solution, outcome.members)
                    }
                    None => (solver.solve(&query).map_err(|e| e.to_string())?, Vec::new()),
                }
            } else {
                let graph = load_graph(&input)?;
                if verbose {
                    let stats = graph.stats();
                    outln!(
                        out,
                        "memory: csr {} bytes, dense bit-matrix {} bytes if built",
                        stats.csr_bytes,
                        stats.bitmatrix_bytes
                    );
                }
                let solver = RfcSolver::new(graph);
                let (solution, members) = match &racing {
                    Some(cfg) => {
                        let outcome = solver
                            .solve_portfolio(&query, cfg)
                            .map_err(|e| e.to_string())?;
                        (outcome.solution, outcome.members)
                    }
                    None => (solver.solve(&query).map_err(|e| e.to_string())?, Vec::new()),
                };
                for clique in &solution.cliques {
                    debug_assert!(verify::is_fair_clique_under(
                        solver.graph(),
                        &clique.vertices,
                        model
                    ));
                }
                (solution, members)
            };

            if format == OutputFormat::Json {
                outln!(out, "{}", solution_json(model, &solution));
                return Ok(());
            }
            outln!(out, "model: {model} fairness");
            match solution.termination {
                Termination::BudgetExhausted => outln!(
                    out,
                    "search budget exhausted: showing the verified best-so-far"
                ),
                Termination::Cancelled => {
                    outln!(out, "search cancelled: showing the verified best-so-far")
                }
                Termination::Optimal | Termination::Infeasible => {}
            }
            if !solution.termination.is_complete() {
                match (solution.optimality_gap(), solution.upper_bound) {
                    (Some(gap), Some(ub)) => {
                        outln!(out, "optimality gap: <= {gap} (certified upper bound {ub})")
                    }
                    _ => outln!(out, "optimality gap: unknown (no certified upper bound)"),
                }
            }
            if verbose {
                for member in &members {
                    outln!(
                        out,
                        "portfolio member {}: {}, {} branches, {} µs{}",
                        member.label,
                        termination_str(member.termination),
                        member.branches,
                        member.elapsed_micros,
                        if member.winner { " (winner)" } else { "" }
                    );
                }
            }
            match solution.cliques.as_slice() {
                [] if solution.termination == Termination::Infeasible => {
                    outln!(out, "no fair clique exists under {model} fairness")
                }
                [] => outln!(out, "no fair clique found within the budget"),
                cliques => {
                    let best = &cliques[0];
                    outln!(
                        out,
                        "maximum fair clique: {} vertices (a: {}, b: {})",
                        best.size(),
                        best.counts.a(),
                        best.counts.b()
                    );
                    if cliques.len() > 1 {
                        for (rank, clique) in cliques.iter().enumerate() {
                            outln!(
                                out,
                                "top {}: {} vertices (a: {}, b: {}): {:?}",
                                rank + 1,
                                clique.size(),
                                clique.counts.a(),
                                clique.counts.b(),
                                clique.vertices
                            );
                        }
                    } else {
                        outln!(out, "vertices: {:?}", best.vertices);
                    }
                }
            }
            let stats = &solution.stats;
            outln!(
                out,
                "reduction: {} -> {} edges; search: {} branches, {} bound prunes, \
                 {} µs wall ({} µs cpu)",
                stats.reduction.original_edges,
                stats.reduction.final_edges(),
                stats.branches,
                stats.bound_prunes,
                stats.elapsed_micros,
                stats.cpu_micros
            );
            Ok(())
        }
        Command::Enumerate {
            input,
            k,
            delta,
            fairness,
            limit,
            min_size,
            format,
            threads,
            time_limit,
            node_limit,
            trace,
        } => {
            let _trace_guard = install_trace(trace.as_deref())?;
            let model = fairness_model(fairness, k, delta);
            let budget = build_budget(time_limit, node_limit)?;
            let query = EnumQuery::new(model)
                .with_min_size(min_size)
                .with_budget(budget)
                .with_threads(thread_count(threads));
            let solver = if let Some(path) = rfcg_path(&input) {
                let store = open_rfcg(path)?;
                AnySolver::Scale(scale_solver(
                    &mut out,
                    path,
                    &store,
                    model.k(),
                    &budget,
                    false,
                )?)
            } else {
                AnySolver::Mem(RfcSolver::new(load_graph(&input)?))
            };

            match format {
                OutputFormat::Jsonl => {
                    // Pure JSONL on stdout (summary goes to stderr); the sink turns a
                    // consumer-closed pipe into a clean early stop.
                    let mut jsonl =
                        JsonlSink::new(std::io::BufWriter::new(std::io::stdout().lock()));
                    let outcome = match limit {
                        Some(n) => {
                            let mut limited = LimitSink::new(&mut jsonl, n);
                            solver.enumerate(&query, &mut limited)
                        }
                        None => solver.enumerate(&query, &mut jsonl),
                    }
                    .map_err(|e| e.to_string())?;
                    // Report what actually reached stdout: on a closed pipe the last
                    // clique handed to the sink was never written.
                    let written = jsonl.written();
                    jsonl.finish().map_err(|e| e.to_string())?;
                    errln!(
                        "enumerated {} maximal fair cliques under {model} fairness ({}) \
                         in {} µs; {} nodes",
                        written,
                        enum_termination_desc(outcome.termination, limit, outcome.emitted),
                        outcome.stats.elapsed_micros,
                        outcome.stats.branches
                    );
                }
                // `solve`-only formats were rejected by the parser.
                OutputFormat::Text | OutputFormat::Json => {
                    outln!(out, "model: {model} fairness");
                    let outcome = {
                        let mut text = |clique: FairClique| {
                            outln!(
                                out,
                                "clique: {} vertices (a: {}, b: {}): {:?}",
                                clique.size(),
                                clique.counts.a(),
                                clique.counts.b(),
                                clique.vertices
                            );
                            SinkFlow::Continue
                        };
                        match limit {
                            Some(n) => {
                                let mut limited = LimitSink::new(&mut text, n);
                                solver.enumerate(&query, &mut limited)
                            }
                            None => solver.enumerate(&query, &mut text),
                        }
                        .map_err(|e| e.to_string())?
                    };
                    let stats = &outcome.stats;
                    outln!(
                        out,
                        "enumerated {} maximal fair cliques ({}) in {} µs",
                        outcome.emitted,
                        enum_termination_desc(outcome.termination, limit, outcome.emitted),
                        stats.elapsed_micros
                    );
                    outln!(
                        out,
                        "reduction: {} -> {} edges; enumeration: {} nodes, {} colorful prunes, \
                         {} maximality rejections, {} components",
                        stats.reduction.original_edges,
                        stats.reduction.final_edges(),
                        stats.branches,
                        stats.colorful_prunes,
                        stats.maximality_rejections,
                        stats.components_searched
                    );
                }
            }
            Ok(())
        }
        Command::Update {
            input,
            stream,
            k,
            delta,
            fairness,
            enumerate,
            threads,
            trace,
        } => {
            let _trace_guard = install_trace(trace.as_deref())?;
            let graph = load_graph(&input)?;
            let model = fairness_model(fairness, k, delta);
            let ops = load_update_stream(&stream)?;
            let config = SearchConfig::default().with_threads(thread_count(threads));
            let query = Query::new(model).with_config(config);
            let enum_query = EnumQuery::new(model).with_threads(thread_count(threads));
            let mut solver = DynamicRfcSolver::new(graph);
            outln!(
                out,
                "model: {model} fairness; initial graph: {}",
                solver.graph().stats()
            );
            let mut batch = 0usize;
            let mut report = |solver: &mut DynamicRfcSolver,
                              outcome: Option<rfc_core::dynamic::CommitOutcome>,
                              out: &mut Output|
             -> Result<(), String> {
                batch += 1;
                let solution = solver.solve(&query).map_err(|e| e.to_string())?;
                let summary = match solution.best() {
                    Some(best) => format!(
                        "max fair clique {} (a: {}, b: {})",
                        best.size(),
                        best.counts.a(),
                        best.counts.b()
                    ),
                    None => "no fair clique".to_string(),
                };
                let commit_desc = match outcome {
                    Some(c) => format!(
                        "{} ops, {} changed vertices, reductions kept {}/{}",
                        c.ops,
                        c.changed_vertices,
                        c.reductions_kept,
                        c.reductions_kept + c.reductions_invalidated
                    ),
                    None => "initial state".to_string(),
                };
                outln!(
                    out,
                    "batch {batch}: {commit_desc}; n={} m={}; {summary} \
                     (reduction cache hit: {}, {} µs)",
                    solver.graph().num_vertices(),
                    solver.graph().num_edges(),
                    solution.reduction_cache_hit,
                    solution.stats.elapsed_micros
                );
                if enumerate {
                    let mut count = CountSink::new();
                    let outcome = solver
                        .enumerate(&enum_query, &mut count)
                        .map_err(|e| e.to_string())?;
                    outln!(
                        out,
                        "batch {batch}: {} maximal fair cliques (largest {}, \
                         {} re-enumerated components, {} µs)",
                        outcome.emitted,
                        count.largest(),
                        outcome.stats.components_searched,
                        outcome.stats.elapsed_micros
                    );
                }
                Ok(())
            };
            report(&mut solver, None, &mut out)?;
            for (line_no, op) in ops {
                match solver.apply_op(&op) {
                    Ok(Some(commit)) => report(&mut solver, Some(commit), &mut out)?,
                    Ok(None) => {}
                    Err(e) => return Err(format!("{stream}:{line_no}: invalid op: {e}")),
                }
            }
            if solver.pending_ops() > 0 {
                let commit = solver.commit();
                report(&mut solver, Some(commit), &mut out)?;
            }
            Ok(())
        }
        Command::Heuristic {
            input,
            k,
            delta,
            seeds,
            fairness,
        } => {
            let model = fairness_model(fairness, k, delta);
            let query = Query::new(model).with_config(SearchConfig {
                heuristic: HeuristicConfig {
                    seeds: seeds.max(1),
                },
                ..SearchConfig::default()
            });
            let outcome = if let Some(path) = rfcg_path(&input) {
                let store = open_rfcg(path)?;
                let solver = scale_solver(
                    &mut out,
                    path,
                    &store,
                    model.k(),
                    &Budget::unlimited(),
                    false,
                )?;
                solver.heuristic(&query).map_err(|e| e.to_string())?
            } else {
                let solver = RfcSolver::new(load_graph(&input)?);
                solver.heuristic(&query).map_err(|e| e.to_string())?
            };
            match &outcome.best {
                None => outln!(
                    out,
                    "the heuristic found no fair clique under {model} fairness"
                ),
                Some(clique) => outln!(
                    out,
                    "heuristic fair clique ({model} fairness): {} vertices (a: {}, b: {}); upper bound {}",
                    clique.size(),
                    clique.counts.a(),
                    clique.counts.b(),
                    outcome.upper_bound
                ),
            }
            Ok(())
        }
        Command::Reduce { input, k, output } => {
            let params = FairCliqueParams::new(k, 0).map_err(|e| e.to_string())?;
            if let Some(path) = rfcg_path(&input) {
                let store = open_rfcg(path)?;
                let red = reduce_store(&store, params, &ReductionConfig::default())
                    .map_err(|e| format!("{path}: {e}"))?;
                outln!(
                    out,
                    "original: {} vertices / {} edges",
                    store.num_vertices(),
                    store.num_edges()
                );
                outln!(
                    out,
                    "after   fair-core peel: {} vertices ({} µs scan, {} µs cascade, \
                     {} µs extract)",
                    red.stats.peel.surviving_vertices,
                    red.stats.peel.scan_micros,
                    red.stats.peel.cascade_micros,
                    red.stats.extract_micros
                );
                for stage in &red.stats.exact.stages {
                    outln!(
                        out,
                        "after {:>15}: {} vertices / {} edges ({} µs)",
                        stage.stage,
                        stage.vertices,
                        stage.edges,
                        stage.micros
                    );
                }
                if let Some(path) = output {
                    io::write_graph_to_path(&red.graph, &path).map_err(|e| e.to_string())?;
                    outln!(
                        out,
                        "reduced residual written to {path} (residual vertex ids; \
                         original ids are store positions in the peel survivor order)"
                    );
                }
                return Ok(());
            }
            let graph = load_graph(&input)?;
            let (reduced, stats) = apply_reductions(&graph, params, &ReductionConfig::default());
            outln!(
                out,
                "original: {} vertices / {} edges",
                stats.original_vertices,
                stats.original_edges
            );
            for stage in &stats.stages {
                outln!(
                    out,
                    "after {:>15}: {} vertices / {} edges ({} µs)",
                    stage.stage,
                    stage.vertices,
                    stage.edges,
                    stage.micros
                );
            }
            if let Some(path) = output {
                io::write_graph_to_path(&reduced, &path).map_err(|e| e.to_string())?;
                outln!(out, "reduced graph written to {path}");
            }
            Ok(())
        }
        Command::Convert { input, output } => {
            if let Some(path) = rfcg_path(&input) {
                // Binary → text: materialize the store (residual-scale inputs only).
                let store = open_rfcg(path)?;
                let graph = store.to_graph().map_err(|e| format!("{path}: {e}"))?;
                io::write_graph_to_path(&graph, &output).map_err(|e| e.to_string())?;
                outln!(
                    out,
                    "converted {path} -> {output} (text): {} vertices / {} edges",
                    graph.num_vertices(),
                    graph.num_edges()
                );
                return Ok(());
            }
            let graph = load_graph(&input)?;
            let summary = write_rfcg(&graph, &output).map_err(|e| format!("{output}: {e}"))?;
            outln!(
                out,
                "converted -> {output} (.rfcg): {} vertices / {} edges, {} bytes",
                summary.num_vertices,
                summary.num_edges,
                summary.file_bytes
            );
            Ok(())
        }
        Command::Generate {
            dataset,
            case_study,
            scale,
            seed,
            planted_half,
            prob_a,
            output,
        } => {
            if let Some(n) = scale {
                let path = output.ok_or_else(|| {
                    "`generate --scale` needs `--output FILE.rfcg` (the graph is streamed \
                     to disk, never held in memory)"
                        .to_string()
                })?;
                let config = ScaleConfig::new(n)
                    .with_planted_half(planted_half)
                    .with_prob_a(prob_a);
                let summary = generate_scale_rfcg(&config, seed, &path)
                    .map_err(|e| format!("{path}: {e}"))?;
                outln!(
                    out,
                    "generated scale graph (seed {seed}): {} vertices / {} edges, \
                     {} bytes -> {path}",
                    summary.csr.num_vertices,
                    summary.csr.num_edges,
                    summary.csr.file_bytes
                );
                if summary.planted.is_empty() {
                    outln!(out, "no planted clique");
                } else {
                    outln!(
                        out,
                        "planted fair clique: {} vertices ({} per attribute), \
                         ids {}..={}",
                        summary.planted.len(),
                        summary.planted.len() / 2,
                        summary.planted[0],
                        summary.planted[summary.planted.len() - 1]
                    );
                }
                return Ok(());
            }
            let (name, graph) = if let Some(name) = dataset {
                let ds = parse_dataset(&name)?;
                (ds.name().to_string(), ds.generate())
            } else {
                let cs = parse_case_study(case_study.as_deref().unwrap_or_default())?;
                let generated = cs.generate();
                (cs.name().to_string(), generated.graph)
            };
            outln!(out, "generated {name}: {}", graph.stats());
            if let Some(path) = output {
                io::write_graph_to_path(&graph, &path).map_err(|e| e.to_string())?;
                outln!(out, "written to {path}");
            }
            Ok(())
        }
        Command::Serve {
            host,
            port,
            workers,
            max_active,
            max_queue,
            cache_cap,
            time_limit,
        } => {
            let default_time_limit = match time_limit {
                None => None,
                Some(secs) => Some(
                    Duration::try_from_secs_f64(secs)
                        .map_err(|_| format!("`--time-limit {secs}` is out of range"))?,
                ),
            };
            // Workers run this same binary's `worker` subcommand over pipes.
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot locate the maxfairclique binary: {e}"))?;
            let mut worker_cmd = vec![exe.to_string_lossy().into_owned(), "worker".to_string()];
            if let Some(cap) = cache_cap {
                worker_cmd.push("--cache-cap".to_string());
                worker_cmd.push(cap.to_string());
            }
            let server = Server::bind(ServeConfig {
                host,
                port,
                workers,
                worker_cmd,
                max_active,
                max_queue,
                engine: EngineConfig {
                    cache_capacity: cache_cap,
                    default_time_limit,
                },
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot start the daemon: {e}"))?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            // Scripts wait for this exact line (stdout is line-buffered, so it is
            // visible before the first connection is accepted).
            outln!(out, "maxfaircliqued listening on {addr}");
            server.run().map_err(|e| format!("daemon failed: {e}"))
        }
        Command::Client { connect, action } => run_client(&mut out, &connect, action),
        Command::Worker { cache_cap } => {
            match rfc_serve::worker::run_worker(EngineConfig {
                cache_capacity: cache_cap,
                default_time_limit: None,
            }) {
                0 => Ok(()),
                _ => Err("worker terminated on an I/O failure".to_string()),
            }
        }
    }
}

/// Converts the CLI's fractional seconds into the protocol's milliseconds field.
fn secs_to_ms(time_limit: Option<f64>) -> Option<u64> {
    time_limit.map(|secs| (secs * 1000.0).ceil() as u64)
}

/// Builds the protocol line for one client action.
fn client_request_line(action: ClientAction) -> Result<String, String> {
    Ok(match action {
        ClientAction::Load { graph, path } => Request::Load { graph, path }.to_line(),
        ClientAction::Solve {
            graph,
            k,
            delta,
            fairness,
            top,
            time_limit,
            node_limit,
        } => Request::Solve {
            graph,
            spec: QuerySpec {
                model: fairness_model(fairness, k, delta),
                top,
                time_limit_ms: secs_to_ms(time_limit),
                node_limit,
                threads: None,
                portfolio: None,
                anytime: false,
                shard: None,
            },
        }
        .to_line(),
        ClientAction::Enumerate {
            graph,
            k,
            delta,
            fairness,
            limit,
            min_size,
            time_limit,
            node_limit,
        } => Request::Enumerate {
            graph,
            spec: EnumSpec {
                model: fairness_model(fairness, k, delta),
                min_size,
                limit,
                time_limit_ms: secs_to_ms(time_limit),
                node_limit,
                threads: None,
                shard: None,
            },
        }
        .to_line(),
        ClientAction::Update { graph, stream } => {
            let ops = load_update_stream(&stream)?
                .into_iter()
                .map(|(_, op)| op)
                .collect();
            Request::Update { graph, ops }.to_line()
        }
        ClientAction::Stats => Request::Stats.to_line(),
        ClientAction::Metrics => Request::Metrics.to_line(),
        ClientAction::Ping => Request::Ping { sleep_ms: 0 }.to_line(),
        ClientAction::Shutdown => Request::Shutdown.to_line(),
        ClientAction::Raw { line } => line,
    })
}

/// One request/response round trip against a running daemon. Prints every response
/// line (stream lines included) pipe-safely; exits non-zero when the terminal line
/// is an error.
fn run_client(out: &mut Output, connect: &str, action: ClientAction) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let mut line = client_request_line(action)?;
    line.push('\n');
    let stream = TcpStream::connect(connect).map_err(|e| format!("{connect}: {e}"))?;
    // One write per request and no Nagle: a split payload/newline write would
    // stall ~40 ms on the delayed-ACK timer for every round trip.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(line.as_bytes())
        .map_err(|e| format!("{connect}: {e}"))?;
    writer.flush().map_err(|e| format!("{connect}: {e}"))?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut raw = String::new();
        let read = reader
            .read_line(&mut raw)
            .map_err(|e| format!("{connect}: {e}"))?;
        if read == 0 {
            return Err(format!(
                "{connect}: connection closed before a terminal response"
            ));
        }
        let response = raw.trim_end();
        let value = JsonValue::parse(response)
            .map_err(|e| format!("{connect}: unparseable response: {e}"))?;
        // A `metrics` response carries multi-line exposition text; print the text
        // itself instead of the JSON envelope so the output pipes into Prometheus
        // tooling directly. Everything else echoes the raw response line.
        match value.get("exposition").and_then(JsonValue::as_str) {
            Some(exposition) => outln!(out, "{exposition}"),
            None => outln!(out, "{response}"),
        }
        if !protocol::is_terminal(&value) {
            continue; // an enumerate stream line; keep reading
        }
        return match value.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok(()),
            _ => {
                let code = value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("error");
                let message = value
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("request failed");
                Err(format!("{code}: {message}"))
            }
        };
    }
}

/// Reads a JSONL update stream: one op per line, blank lines and `#` comments
/// skipped. Returns each op with its 1-based line number for error reporting.
fn load_update_stream(path: &str) -> Result<Vec<(usize, UpdateOp)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let op = UpdateOp::parse_jsonl(trimmed).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        ops.push((i + 1, op));
    }
    Ok(ops)
}

fn load_graph(input: &GraphInput) -> Result<AttributedGraph, String> {
    match input {
        GraphInput::Combined(path) => {
            io::read_graph_from_path(path).map_err(|e| format!("{path}: {e}"))
        }
        GraphInput::EdgeList { edges, attributes } => {
            let attr_map = match attributes {
                Some(path) => {
                    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
                    io::read_attribute_list(file).map_err(|e| format!("{path}: {e}"))?
                }
                None => HashMap::new(),
            };
            let file = File::open(edges).map_err(|e| format!("{edges}: {e}"))?;
            let (graph, _) =
                io::read_edge_list(file, &attr_map).map_err(|e| format!("{edges}: {e}"))?;
            Ok(graph)
        }
    }
}

fn parse_dataset(name: &str) -> Result<PaperDataset, String> {
    PaperDataset::ALL
        .iter()
        .copied()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset `{name}` (expected one of Themarker, Google, DBLP, Flixster, Pokec, Aminer)"))
}

fn parse_case_study(name: &str) -> Result<CaseStudy, String> {
    CaseStudy::ALL
        .iter()
        .copied()
        .find(|c| c.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown case study `{name}` (expected Aminer, DBAI, NBA, IMDB)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rfc_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn end_to_end_generate_stats_solve_reduce() {
        let graph_path = temp_path("nba.graph");
        let graph_arg = graph_path.to_string_lossy().to_string();

        // generate a case-study graph to disk
        run(parse(&argv(&format!(
            "generate --case-study nba --output {graph_arg}"
        )))
        .unwrap())
        .unwrap();
        assert!(graph_path.exists());

        // stats / solve / heuristic / reduce on the generated file
        run(parse(&argv(&format!("stats --graph {graph_arg}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("solve --graph {graph_arg} -k 5 -d 3"))).unwrap()).unwrap();
        run(parse(&argv(&format!("solve --graph {graph_arg} -k 5 --strong"))).unwrap()).unwrap();
        run(parse(&argv(&format!("solve --graph {graph_arg} -k 5 --weak"))).unwrap()).unwrap();
        // Budgeted and top-k solves terminate and print without error.
        run(parse(&argv(&format!(
            "solve --graph {graph_arg} -k 5 -d 3 --node-limit 1 --threads 1"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "solve --graph {graph_arg} -k 5 -d 3 --time-limit 30 --top 3"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!("heuristic --graph {graph_arg} -k 5 -d 3"))).unwrap()).unwrap();
        run(parse(&argv(&format!("heuristic --graph {graph_arg} -k 5 --weak"))).unwrap()).unwrap();
        // Machine-readable solve and (limited) enumeration on the same graph.
        run(parse(&argv(&format!(
            "solve --graph {graph_arg} -k 5 -d 3 --format json"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "enumerate --graph {graph_arg} -k 5 -d 3 --limit 3 --threads 1"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "enumerate --graph {graph_arg} -k 5 --weak --limit 2 --format jsonl"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "enumerate --graph {graph_arg} -k 5 --strong --node-limit 500 --min-size 10"
        )))
        .unwrap())
        .unwrap();
        let reduced_path = temp_path("nba_reduced.graph");
        run(parse(&argv(&format!(
            "reduce --graph {graph_arg} -k 5 --output {}",
            reduced_path.to_string_lossy()
        )))
        .unwrap())
        .unwrap();
        assert!(reduced_path.exists());

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&reduced_path).ok();
    }

    #[test]
    fn scale_tier_end_to_end() {
        let rfcg_path = temp_path("scale_e2e.rfcg");
        let rfcg_arg = rfcg_path.to_string_lossy().to_string();

        // Stream a small scale graph with a planted 8-clique straight to .rfcg.
        run(parse(&argv(&format!(
            "generate --scale 3000 --seed 11 --planted-half 4 --output {rfcg_arg}"
        )))
        .unwrap())
        .unwrap();
        assert!(rfcg_path.exists());
        // `--scale` without `--output` is rejected (nothing to stream to).
        assert!(run(parse(&argv("generate --scale 100")).unwrap()).is_err());

        // Stats, reduce, heuristic, enumerate and solve all route through the store.
        run(parse(&argv(&format!("stats --graph {rfcg_arg} --verbose"))).unwrap()).unwrap();
        run(parse(&argv(&format!("reduce --graph {rfcg_arg} -k 4"))).unwrap()).unwrap();
        run(parse(&argv(&format!("heuristic --graph {rfcg_arg} -k 4 -d 0"))).unwrap()).unwrap();
        run(parse(&argv(&format!(
            "enumerate --graph {rfcg_arg} -k 4 -d 0 --limit 3 --threads 1"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "solve --graph {rfcg_arg} -k 4 -d 0 --threads 1 --verbose --format json"
        )))
        .unwrap())
        .unwrap();

        // Round-trip through text and back preserves the graph.
        let text_path = temp_path("scale_e2e.graph");
        let rfcg2_path = temp_path("scale_e2e_2.rfcg");
        run(parse(&argv(&format!(
            "convert --graph {rfcg_arg} --output {}",
            text_path.to_string_lossy()
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "convert --graph {} --output {}",
            text_path.to_string_lossy(),
            rfcg2_path.to_string_lossy()
        )))
        .unwrap())
        .unwrap();
        let a = DiskCsr::open(&rfcg_path).unwrap().to_graph().unwrap();
        let b = DiskCsr::open(&rfcg2_path).unwrap().to_graph().unwrap();
        assert_eq!(a, b);

        // A corrupt store surfaces a clean error, not a panic.
        std::fs::write(&rfcg_path, b"not a store").unwrap();
        let err = run(parse(&argv(&format!("stats --graph {rfcg_arg}"))).unwrap()).unwrap_err();
        assert!(err.contains(".rfcg") || err.contains("rfcg") || err.contains("truncated"));

        std::fs::remove_file(&rfcg_path).ok();
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&rfcg2_path).ok();
    }

    #[test]
    fn solve_with_trace_writes_balanced_jsonl() {
        let graph_path = temp_path("trace_base.graph");
        let trace_path = temp_path("trace_out.jsonl");
        let graph_arg = graph_path.to_string_lossy().to_string();
        let trace_arg = trace_path.to_string_lossy().to_string();
        run(parse(&argv(&format!(
            "generate --case-study nba --output {graph_arg}"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "solve --graph {graph_arg} -k 5 -d 3 --threads 1 --trace {trace_arg}"
        )))
        .unwrap())
        .unwrap();

        // Every line parses, opens balance closes, and the root solve span is there.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let (mut opens, mut closes, mut saw_solve) = (0u64, 0u64, false);
        for line in text.lines() {
            let v = JsonValue::parse(line).expect("trace line parses");
            match v.get("ev").and_then(JsonValue::as_str) {
                Some("open") => opens += 1,
                Some("close") => {
                    closes += 1;
                    if v.get("name").and_then(JsonValue::as_str) == Some("solve") {
                        saw_solve = true;
                        assert!(v.get("dur_us").is_some());
                    }
                }
                other => panic!("unexpected trace event {other:?}"),
            }
        }
        assert!(opens > 0, "trace is empty");
        assert_eq!(opens, closes, "unbalanced spans");
        assert!(saw_solve, "no solve span in the trace");

        // An unwritable trace path is a clean error, not a panic.
        assert!(run(parse(&argv(&format!(
            "solve --graph {graph_arg} -k 5 -d 3 --trace /definitely/missing/dir/t.jsonl"
        )))
        .unwrap())
        .is_err());

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn edge_list_input_roundtrip() {
        let edges_path = temp_path("tiny_edges.txt");
        let attrs_path = temp_path("tiny_attrs.txt");
        std::fs::write(&edges_path, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n").unwrap();
        std::fs::write(&attrs_path, "0 a\n1 b\n2 a\n3 b\n").unwrap();
        run(parse(&argv(&format!(
            "solve --edges {} --attributes {} -k 2 -d 0",
            edges_path.to_string_lossy(),
            attrs_path.to_string_lossy()
        )))
        .unwrap())
        .unwrap();
        std::fs::remove_file(&edges_path).ok();
        std::fs::remove_file(&attrs_path).ok();
    }

    #[test]
    fn solution_json_is_well_formed() {
        let graph = rfc_graph::fixtures::fig1_graph();
        let model = FairnessModel::Relative { k: 3, delta: 1 };
        let solver = RfcSolver::new(graph);
        let solution = solver.solve(&Query::new(model)).unwrap();
        let json = solution_json(model, &solution);
        assert!(json.starts_with("{\"model\":\"relative (k=3, δ=1)\""));
        assert!(json.contains("\"termination\":\"optimal\""));
        assert!(json.contains("\"size\":7"));
        assert!(json.contains("\"reduction_cache_hit\":false}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Infeasible solves serialize with an empty clique list and a null heuristic.
        let infeasible = solver
            .solve(&Query::new(FairnessModel::Weak { k: 100 }))
            .unwrap();
        let json = solution_json(FairnessModel::Weak { k: 100 }, &infeasible);
        assert!(json.contains("\"termination\":\"infeasible\""));
        assert!(json.contains("\"cliques\":[]"));
        assert!(json.contains("\"heuristic_size\":null"));
    }

    #[test]
    fn enumerate_text_and_jsonl_run_end_to_end() {
        let edges_path = temp_path("enum_edges.txt");
        let attrs_path = temp_path("enum_attrs.txt");
        // Balanced K4 plus a pendant vertex: one maximal fair clique for (2, 0).
        std::fs::write(&edges_path, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n").unwrap();
        std::fs::write(&attrs_path, "0 a\n1 b\n2 a\n3 b\n4 a\n").unwrap();
        let base = format!(
            "enumerate --edges {} --attributes {}",
            edges_path.to_string_lossy(),
            attrs_path.to_string_lossy()
        );
        run(parse(&argv(&format!("{base} -k 2 -d 0"))).unwrap()).unwrap();
        run(parse(&argv(&format!("{base} -k 2 -d 0 --format jsonl"))).unwrap()).unwrap();
        run(parse(&argv(&format!("{base} -k 1 -d 1 --limit 2 --min-size 2"))).unwrap()).unwrap();
        run(parse(&argv(&format!("{base} -k 1 --weak --threads 2"))).unwrap()).unwrap();
        run(parse(&argv(&format!("{base} -k 1 --strong --time-limit 30"))).unwrap()).unwrap();
        std::fs::remove_file(&edges_path).ok();
        std::fs::remove_file(&attrs_path).ok();
    }

    #[test]
    fn out_of_range_time_limit_is_an_error_not_a_panic() {
        let edges_path = temp_path("limit_edges.txt");
        std::fs::write(&edges_path, "0 1\n").unwrap();
        let edges_arg = edges_path.to_string_lossy().to_string();
        // Parses as a finite f64 but exceeds what Duration can represent.
        let err = run(parse(&argv(&format!(
            "solve --edges {edges_arg} -k 1 -d 0 --time-limit 2e19"
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("--time-limit"), "{err}");
        // A representable-but-astronomical limit behaves as unlimited (no panic).
        run(parse(&argv(&format!(
            "solve --edges {edges_arg} -k 1 -d 0 --time-limit 1e19"
        )))
        .unwrap())
        .unwrap();
        std::fs::remove_file(&edges_path).ok();
    }

    #[test]
    fn update_replays_a_jsonl_stream() {
        let graph_path = temp_path("update_base.graph");
        let stream_path = temp_path("update_stream.jsonl");
        let graph_arg = graph_path.to_string_lossy().to_string();
        let stream_arg = stream_path.to_string_lossy().to_string();
        run(parse(&argv(&format!(
            "generate --case-study nba --output {graph_arg}"
        )))
        .unwrap())
        .unwrap();
        std::fs::write(
            &stream_path,
            "# comment lines and blanks are skipped\n\
             {\"op\":\"remove_vertex\",\"v\":0}\n\
             {\"op\":\"commit\"}\n\
             {\"op\":\"restore_vertex\",\"v\":0,\"attr\":\"a\"}\n\
             {\"op\":\"insert_vertex\",\"attr\":\"b\"}\n\
             \n\
             {\"op\":\"commit\"}\n\
             {\"op\":\"remove_edge\",\"u\":1,\"v\":2}\n",
        )
        .unwrap();
        // Trailing ops without a commit marker get a final implicit commit.
        run(parse(&argv(&format!(
            "update --graph {graph_arg} --stream {stream_arg} -k 5 -d 3 --enumerate --threads 1"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "update --graph {graph_arg} --stream {stream_arg} -k 5 --weak"
        )))
        .unwrap())
        .unwrap();

        // Invalid ops are reported with their line number.
        let bad_path = temp_path("update_bad.jsonl");
        std::fs::write(&bad_path, "{\"op\":\"remove_edge\",\"u\":0,\"v\":0}\n").unwrap();
        let err = run(parse(&argv(&format!(
            "update --graph {graph_arg} --stream {} -k 5 -d 3",
            bad_path.to_string_lossy()
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.contains(":1"), "{err}");
        // Malformed JSONL is rejected at load time.
        let ugly_path = temp_path("update_ugly.jsonl");
        std::fs::write(&ugly_path, "{\"op\":\"warp\"}\n").unwrap();
        assert!(run(parse(&argv(&format!(
            "update --graph {graph_arg} --stream {} -k 5 -d 3",
            ugly_path.to_string_lossy()
        )))
        .unwrap())
        .is_err());
        assert!(load_update_stream("/definitely/missing.jsonl").is_err());

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&stream_path).ok();
        std::fs::remove_file(&bad_path).ok();
        std::fs::remove_file(&ugly_path).ok();
    }

    #[test]
    fn helpful_errors_for_bad_input() {
        assert!(load_graph(&GraphInput::Combined("/definitely/missing.graph".into())).is_err());
        assert!(parse_dataset("nope").is_err());
        assert!(parse_case_study("nope").is_err());
        assert!(parse_dataset("dblp").is_ok());
        assert!(parse_case_study("imdb").is_ok());
        run(Command::Help).unwrap();
    }
}
