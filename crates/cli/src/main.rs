//! `maxfairclique` — command-line front end for the maximum relative fair clique
//! library.
//!
//! ```text
//! maxfairclique solve      --graph g.graph -k 3 -d 1 [--bound cd|cp|d|h|ch|none] [--no-heuristic] [--basic]
//! maxfairclique heuristic  --graph g.graph -k 3 -d 1 [--seeds 8]
//! maxfairclique reduce     --graph g.graph -k 3 [--output reduced.graph]
//! maxfairclique stats      --graph g.graph
//! maxfairclique generate   --dataset themarker --output g.graph
//! maxfairclique generate   --case-study nba    --output g.graph
//! ```
//!
//! Graphs are read/written in the plain-text format of `rfc_graph::io` (`n`/`v`/`e`
//! records); `--edges edges.txt --attributes attrs.txt` reads a raw edge list plus an
//! attribute list instead.

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(command) => match commands::run(command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        },
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
