//! `maxfairclique` — command-line front end for the maximum relative fair clique
//! library.
//!
//! ```text
//! maxfairclique solve      --graph g.graph -k 3 -d 1 [--bound cd|cp|d|h|ch|none] [--no-heuristic] [--basic] [--threads N]
//! maxfairclique heuristic  --graph g.graph -k 3 -d 1 [--seeds 8]
//! maxfairclique reduce     --graph g.graph -k 3 [--output reduced.graph]
//! maxfairclique stats      --graph g.graph
//! maxfairclique generate   --dataset themarker --output g.graph
//! maxfairclique generate   --case-study nba    --output g.graph
//! ```
//!
//! Graphs are read/written in the plain-text format of `rfc_graph::io` (`n`/`v`/`e`
//! records); `--edges edges.txt --attributes attrs.txt` reads a raw edge list plus an
//! attribute list instead.
//!
//! All console output is pipe-safe: when a downstream consumer such as `head` closes
//! the pipe early, every command stops writing and exits 0 instead of panicking (see
//! [`output`]).

use std::process::ExitCode;

mod args;
mod commands;
mod output;

use output::errln;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(command) => match commands::run(command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                errln!("error: {err}");
                ExitCode::FAILURE
            }
        },
        Err(err) => {
            errln!("error: {err}");
            errln!();
            errln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
