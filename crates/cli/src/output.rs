//! Broken-pipe-safe console output.
//!
//! Rust ignores `SIGPIPE` at startup, so when a consumer like `head` closes the read
//! end of a pipe, the next `println!` returns `EPIPE` — and `println!` turns that into
//! a panic with a backtrace. For a CLI that is wrong twice over: piping into `head` is
//! a completely ordinary thing to do, and the orderly Unix behaviour is to simply stop
//! producing output and exit successfully.
//!
//! [`Output`] is a thin `writeln!`-based wrapper over a locked [`std::io::Stdout`] that
//! maps [`io::ErrorKind::BrokenPipe`] to a clean `exit(0)` (no libc / signal handling
//! involved) and any other write error to an `exit(1)` with a message. The [`outln!`]
//! macro gives it `println!` ergonomics. [`errln!`] is the stderr counterpart; it
//! swallows write errors instead of exiting, because failing to report a failure must
//! not mask the failure's own exit code.
//!
//! Under `cfg(test)` both sides degrade to the plain `println!`/`eprintln!` macros:
//! raw `Stdout` writes bypass libtest's output capture, and a `process::exit` from a
//! closed pipe would take down the whole test harness. The real pipe behaviour is
//! exercised end-to-end (through the actual binary) in `tests/broken_pipe.rs`.

use std::fmt;
#[cfg(not(test))]
use std::io::{self, Write};

/// Line-oriented writer over locked stdout; a closed pipe ends the process cleanly.
pub struct Output {
    #[cfg(not(test))]
    lock: io::StdoutLock<'static>,
}

impl Output {
    /// Locks stdout for the lifetime of the value.
    pub fn stdout() -> Self {
        Self {
            #[cfg(not(test))]
            lock: io::stdout().lock(),
        }
    }

    /// Writes one formatted line. On `BrokenPipe` the process exits with status 0; on
    /// any other write error it exits with status 1 after reporting to stderr.
    #[cfg(not(test))]
    pub fn line(&mut self, args: fmt::Arguments<'_>) {
        if let Err(err) = writeln!(self.lock, "{args}") {
            if err.kind() == io::ErrorKind::BrokenPipe {
                // The consumer has seen everything it wants; this is a success.
                std::process::exit(0);
            }
            stderr_line(format_args!("error: cannot write to stdout: {err}"));
            std::process::exit(1);
        }
    }

    /// Test-harness variant: captured by libtest, never exits (see module docs).
    #[cfg(test)]
    pub fn line(&mut self, args: fmt::Arguments<'_>) {
        println!("{args}");
    }
}

/// `println!` for an [`Output`]: `outln!(out, "n = {}", n)`.
macro_rules! outln {
    ($out:expr) => { $out.line(format_args!("")) };
    ($out:expr, $($arg:tt)*) => { $out.line(format_args!($($arg)*)) };
}

/// `eprintln!` that never panics: write errors on stderr (including a closed pipe) are
/// ignored so the process can still exit with its intended status.
macro_rules! errln {
    () => { $crate::output::stderr_line(format_args!("")) };
    ($($arg:tt)*) => { $crate::output::stderr_line(format_args!($($arg)*)) };
}

pub(crate) use {errln, outln};

/// Backing implementation of [`errln!`].
#[cfg(not(test))]
pub fn stderr_line(args: fmt::Arguments<'_>) {
    let mut lock = io::stderr().lock();
    let _ = writeln!(lock, "{args}");
}

/// Test-harness variant: captured by libtest (see module docs).
#[cfg(test)]
pub fn stderr_line(args: fmt::Arguments<'_>) {
    eprintln!("{args}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_writes_lines() {
        // Smoke test of the captured test-mode path: must not exit or panic. The real
        // locked-stdout path and its closed-pipe behaviour are covered end-to-end
        // through the binary in tests/broken_pipe.rs.
        let mut out = Output::stdout();
        outln!(out, "output self-test {}", 42);
        outln!(out);
        errln!("stderr self-test {}", 42);
        errln!();
    }
}
