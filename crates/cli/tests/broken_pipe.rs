//! Regression tests: piping `maxfairclique` output into a consumer that stops reading
//! (`… | head`) must exit 0 with no broken-pipe panic.
//!
//! The tests construct a pipe whose read end is *already closed* before the CLI starts
//! (spawn `head -c 0`, keep its stdin — the pipe's write end — and wait for it to
//! exit), so every write the CLI attempts is guaranteed to hit `EPIPE`. That is
//! stronger than racing a real `| head` pipeline, where a small output can fit the
//! pipe buffer before the consumer exits.

use std::process::{Child, ChildStdin, Command, Stdio};

fn maxfairclique() -> Command {
    Command::new(env!("CARGO_BIN_EXE_maxfairclique"))
}

/// Returns the write end of a pipe whose read end is already closed.
fn closed_pipe() -> ChildStdin {
    let mut sink: Child = Command::new("head")
        .args(["-c", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn `head -c 0`");
    let write_end = sink.stdin.take().expect("sink stdin is piped");
    sink.wait().expect("sink exits");
    write_end
}

#[test]
fn writing_to_a_closed_stdout_exits_zero_without_panicking() {
    // One output-light and one output-heavy command; both must shut down cleanly.
    let invocations: [&[&str]; 2] = [&["--help"], &["generate", "--case-study", "nba"]];
    for args in invocations {
        let output = maxfairclique()
            .args(args)
            .stdout(Stdio::from(closed_pipe()))
            .stderr(Stdio::piped())
            .output()
            .expect("run maxfairclique");
        assert_eq!(
            output.status.code(),
            Some(0),
            "args {args:?}: expected a clean exit, got {:?}",
            output.status
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            !stderr.to_lowercase().contains("panic"),
            "args {args:?}: stderr shows a panic:\n{stderr}"
        );
    }
}

#[test]
fn solve_piped_into_closed_stdout_exits_zero() {
    // End-to-end through the search path: generate a graph file, then solve with its
    // stdout already unreadable.
    let dir = std::env::temp_dir().join("rfc_cli_broken_pipe");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let graph = dir.join("nba.graph");
    let status = maxfairclique()
        .args([
            "generate",
            "--case-study",
            "nba",
            "--output",
            graph.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .status()
        .expect("generate graph");
    assert!(status.success());

    let output = maxfairclique()
        .args([
            "solve",
            "--graph",
            graph.to_str().expect("utf-8 temp path"),
            "-k",
            "2",
            "-d",
            "1",
            "--threads",
            "2",
        ])
        .stdout(Stdio::from(closed_pipe()))
        .stderr(Stdio::piped())
        .output()
        .expect("run solve");
    assert_eq!(output.status.code(), Some(0), "{:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!stderr.to_lowercase().contains("panic"), "{stderr}");
    std::fs::remove_file(&graph).ok();
}

#[test]
fn healthy_stdout_still_receives_all_output() {
    // The pipe-safe writer must not change behaviour when nobody closes the pipe.
    let output = maxfairclique()
        .arg("--help")
        .output()
        .expect("run maxfairclique --help");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("USAGE"), "help text went missing: {stdout}");
    assert!(
        stdout.contains("--threads"),
        "usage must document --threads"
    );
}
