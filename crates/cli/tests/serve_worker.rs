//! Integration tests of the real `maxfairclique serve` binary with a
//! multi-process shard executor: the daemon is spawned as a child process with
//! `--workers 2`, driven over TCP, and one worker is killed mid-session to
//! prove the typed `worker_failed` error, the respawn-and-replay recovery, and
//! that the daemon's answers equal the direct library API throughout.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use rfc_core::prelude::*;
use rfc_graph::json::JsonValue;
use rfc_graph::{fixtures, io::write_graph_to_path};

/// The daemon child process plus a connected protocol client.
struct Daemon {
    child: Child,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    dir: std::path::PathBuf,
}

impl Daemon {
    /// Spawns `maxfairclique serve --port 0 --workers <n>` and connects to the
    /// address it prints.
    fn spawn(workers: usize) -> Daemon {
        let dir =
            std::env::temp_dir().join(format!("rfc-serve-worker-{}-{workers}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut child = Command::new(env!("CARGO_BIN_EXE_maxfairclique"))
            .args(["serve", "--port", "0", "--workers", &workers.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn maxfairclique serve");
        let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
        let banner = lines
            .next()
            .expect("daemon exited before announcing its address")
            .unwrap();
        let addr = banner
            .rsplit(' ')
            .next()
            .expect("banner ends with host:port");
        let stream = TcpStream::connect(addr).expect("connect to spawned daemon");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Daemon {
            child,
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
            dir,
        }
    }

    /// Sends one request line and reads lines until the terminal response.
    fn request(&mut self, line: &str) -> JsonValue {
        // One segment per request line (split writes stall on delayed ACKs).
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        self.writer.flush().unwrap();
        loop {
            let mut raw = String::new();
            let n = self.reader.read_line(&mut raw).unwrap();
            assert!(n > 0, "daemon closed the connection unexpectedly");
            let value = JsonValue::parse(raw.trim_end()).expect("valid JSON response");
            if value.get("ok").is_some() {
                return value;
            }
        }
    }

    /// Worker pids as reported by `stats`.
    fn worker_pids(&mut self) -> Vec<u64> {
        let stats = self.request("{\"op\":\"stats\"}");
        stats
            .get("workers")
            .and_then(JsonValue::as_array)
            .expect("sharded daemon stats lists workers")
            .iter()
            .filter_map(|w| w.get("pid").and_then(JsonValue::as_u64))
            .collect()
    }

    fn shutdown(mut self) {
        let response = self.request("{\"op\":\"shutdown\"}");
        assert_eq!(response.get("ok").and_then(JsonValue::as_bool), Some(true));
        let status = self.child.wait().unwrap();
        assert!(status.success(), "daemon exit status: {status:?}");
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn best_size(response: &JsonValue) -> u64 {
    response
        .get("cliques")
        .and_then(JsonValue::as_array)
        .and_then(|c| c.first())
        .and_then(|c| c.get("size"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

#[test]
fn sharded_daemon_survives_a_worker_kill_and_matches_the_library() {
    let mut daemon = Daemon::spawn(2);

    // Load fig. 1 from a file the daemon can read.
    let graph = fixtures::fig1_graph();
    let path = daemon.dir.join("fig1.graph");
    write_graph_to_path(&graph, &path).unwrap();
    let response = daemon.request(&format!(
        "{{\"op\":\"load\",\"graph\":\"fig1\",\"path\":\"{}\"}}",
        path.display()
    ));
    assert_eq!(
        response.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{response}"
    );

    // Differential: sharded daemon answer equals the direct solver.
    let expected = RfcSolver::new(graph)
        .solve(&Query::new(FairnessModel::Relative { k: 3, delta: 1 }))
        .unwrap()
        .best()
        .unwrap()
        .size() as u64;
    let solve = daemon.request("{\"op\":\"solve\",\"graph\":\"fig1\",\"k\":3,\"delta\":1}");
    assert_eq!(solve.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(best_size(&solve), expected);

    // Two live workers with distinct pids.
    let pids = daemon.worker_pids();
    assert_eq!(pids.len(), 2);
    assert_ne!(pids[0], pids[1]);

    // SIGKILL one worker. The next query fails with a *typed* error -- the
    // daemon itself keeps serving.
    let status = Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -9 worker");
    let mut saw_failure = false;
    for _ in 0..5 {
        let response = daemon.request("{\"op\":\"solve\",\"graph\":\"fig1\",\"k\":3,\"delta\":1}");
        if response.get("ok").and_then(JsonValue::as_bool) == Some(false) {
            assert_eq!(
                response.get("error").and_then(JsonValue::as_str),
                Some("worker_failed"),
                "{response}"
            );
            saw_failure = true;
            break;
        }
        // The kernel may not have reaped the worker yet; give it a moment.
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(saw_failure, "killing a worker must surface worker_failed");

    // Recovery: the replacement worker replays the load history and the same
    // query now succeeds with the same answer.
    let solve = daemon.request("{\"op\":\"solve\",\"graph\":\"fig1\",\"k\":3,\"delta\":1}");
    assert_eq!(
        solve.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{solve}"
    );
    assert_eq!(best_size(&solve), expected);

    // stats records the respawn and a fresh pid.
    let stats = daemon.request("{\"op\":\"stats\"}");
    let workers = stats.get("workers").and_then(JsonValue::as_array).unwrap();
    let restarts: u64 = workers
        .iter()
        .filter_map(|w| w.get("restarts").and_then(JsonValue::as_u64))
        .sum();
    assert!(restarts >= 1, "{stats}");
    let new_pids = daemon.worker_pids();
    assert!(!new_pids.contains(&pids[0]), "killed pid must be replaced");

    daemon.shutdown();
}

#[test]
fn updates_survive_worker_respawn_via_history_replay() {
    let mut daemon = Daemon::spawn(2);
    let graph = fixtures::fig1_graph();
    let path = daemon.dir.join("fig1.graph");
    write_graph_to_path(&graph, &path).unwrap();
    daemon.request(&format!(
        "{{\"op\":\"load\",\"graph\":\"fig1\",\"path\":\"{}\"}}",
        path.display()
    ));

    // Mutate: drop a vertex, then record the post-update answer.
    let update = daemon.request(
        "{\"op\":\"update\",\"graph\":\"fig1\",\"ops\":[{\"op\":\"remove_vertex\",\"v\":0}]}",
    );
    assert_eq!(
        update.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{update}"
    );
    let after_update =
        best_size(&daemon.request("{\"op\":\"solve\",\"graph\":\"fig1\",\"k\":2,\"delta\":1}"));

    // Kill every worker, then query until the replayed replacements answer.
    for pid in daemon.worker_pids() {
        Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status()
            .unwrap();
    }
    let mut recovered = None;
    for _ in 0..10 {
        let response = daemon.request("{\"op\":\"solve\",\"graph\":\"fig1\",\"k\":2,\"delta\":1}");
        if response.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            recovered = Some(best_size(&response));
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    // Replayed state includes both the load *and* the committed update.
    assert_eq!(recovered, Some(after_update), "replay must restore updates");

    daemon.shutdown();
}
