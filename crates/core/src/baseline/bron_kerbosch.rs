//! Bron–Kerbosch maximal clique enumeration and the derived fair-clique baseline.
//!
//! The classic pivoting Bron–Kerbosch algorithm enumerates every maximal clique exactly
//! once. The outer level iterates vertices in a degeneracy ordering, which bounds the
//! size of the candidate sets by the graph's degeneracy and is the standard way to make
//! BK practical on sparse graphs (Eppstein–Löffler–Strash).
//!
//! For the maximum *fair* clique, each maximal clique `M` is post-processed: the best
//! fair sub-clique of `M` keeps all vertices of its rarer attribute and as many of the
//! other as `δ` allows. Maximizing this over all maximal cliques yields the exact
//! optimum, because every fair clique is a subset of some maximal clique.

use rfc_graph::cores::core_decomposition;
use rfc_graph::{AttributedGraph, VertexId};

use crate::problem::{FairClique, FairCliqueParams};

use super::{best_fair_subclique, keep_larger};

/// Enumerates all maximal cliques of `g`, invoking `visit` once per maximal clique.
///
/// Uses Bron–Kerbosch with pivoting, seeded by a degeneracy ordering at the top level.
pub fn enumerate_maximal_cliques<F: FnMut(&[VertexId])>(g: &AttributedGraph, mut visit: F) {
    let n = g.num_vertices();
    if n == 0 {
        return;
    }
    let decomp = core_decomposition(g);
    let mut rank = vec![0usize; n];
    for (i, &v) in decomp.order.iter().enumerate() {
        rank[v as usize] = i;
    }
    // Outer loop in degeneracy order: candidates are later-ranked neighbors, excluded
    // are earlier-ranked neighbors.
    for &v in &decomp.order {
        let mut candidates: Vec<VertexId> = Vec::new();
        let mut excluded: Vec<VertexId> = Vec::new();
        for &u in g.neighbors(v) {
            if rank[u as usize] > rank[v as usize] {
                candidates.push(u);
            } else {
                excluded.push(u);
            }
        }
        let mut r = vec![v];
        bk_pivot(g, &mut r, candidates, excluded, &mut visit);
    }
}

fn bk_pivot<F: FnMut(&[VertexId])>(
    g: &AttributedGraph,
    r: &mut Vec<VertexId>,
    candidates: Vec<VertexId>,
    excluded: Vec<VertexId>,
    visit: &mut F,
) {
    if candidates.is_empty() && excluded.is_empty() {
        visit(r);
        return;
    }
    // Choose the pivot (from candidates ∪ excluded) with the most neighbors among the
    // candidates, to minimize branching.
    let pivot = candidates
        .iter()
        .chain(excluded.iter())
        .copied()
        .max_by_key(|&p| candidates.iter().filter(|&&c| g.has_edge(p, c)).count())
        .expect("candidates or excluded is non-empty");
    let branch_vertices: Vec<VertexId> = candidates
        .iter()
        .copied()
        .filter(|&v| !g.has_edge(pivot, v))
        .collect();

    let mut candidates = candidates;
    let mut excluded = excluded;
    for v in branch_vertices {
        let new_candidates: Vec<VertexId> = candidates
            .iter()
            .copied()
            .filter(|&u| g.has_edge(u, v))
            .collect();
        let new_excluded: Vec<VertexId> = excluded
            .iter()
            .copied()
            .filter(|&u| g.has_edge(u, v))
            .collect();
        r.push(v);
        bk_pivot(g, r, new_candidates, new_excluded, visit);
        r.pop();
        candidates.retain(|&u| u != v);
        excluded.push(v);
    }
}

/// The exact "enumerate then filter" baseline: the maximum relative fair clique obtained
/// by scanning every maximal clique.
pub fn bron_kerbosch_max_fair_clique(
    g: &AttributedGraph,
    params: FairCliqueParams,
) -> Option<FairClique> {
    let mut best: Option<FairClique> = None;
    enumerate_maximal_cliques(g, |clique| {
        if clique.len() < params.min_size() {
            return;
        }
        let candidate = best_fair_subclique(g, clique, params);
        best = keep_larger(best.take(), candidate);
    });
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_max_fair_clique;
    use crate::verify::is_fair_and_clique;
    use rfc_graph::fixtures;

    #[test]
    fn enumerates_expected_maximal_clique_count() {
        // K4: exactly one maximal clique.
        let g = fixtures::balanced_clique(4);
        let mut count = 0;
        enumerate_maximal_cliques(&g, |c| {
            assert_eq!(c.len(), 4);
            count += 1;
        });
        assert_eq!(count, 1);

        // Path with 4 vertices: three maximal cliques (the edges).
        let p = fixtures::path_graph(4);
        let mut cliques = Vec::new();
        enumerate_maximal_cliques(&p, |c| {
            let mut c = c.to_vec();
            c.sort_unstable();
            cliques.push(c);
        });
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn every_visited_clique_is_maximal() {
        let g = fixtures::fig1_graph();
        enumerate_maximal_cliques(&g, |c| {
            assert!(g.is_clique(c));
            // No vertex outside is adjacent to all of c.
            for u in g.vertices() {
                if c.contains(&u) {
                    continue;
                }
                assert!(
                    !c.iter().all(|&v| g.has_edge(u, v)),
                    "clique {c:?} is not maximal: {u} extends it"
                );
            }
        });
    }

    #[test]
    fn maximal_cliques_are_unique() {
        let g = fixtures::fig1_graph();
        let mut seen = std::collections::HashSet::new();
        enumerate_maximal_cliques(&g, |c| {
            let mut c = c.to_vec();
            c.sort_unstable();
            assert!(seen.insert(c), "duplicate maximal clique emitted");
        });
        assert!(!seen.is_empty());
    }

    #[test]
    fn agrees_with_brute_force_on_fixtures() {
        let params_list = [
            FairCliqueParams::new(1, 0).unwrap(),
            FairCliqueParams::new(1, 3).unwrap(),
            FairCliqueParams::new(2, 1).unwrap(),
            FairCliqueParams::new(3, 1).unwrap(),
            FairCliqueParams::new(3, 2).unwrap(),
            FairCliqueParams::new(4, 1).unwrap(),
        ];
        let graphs = [
            fixtures::fig1_graph(),
            fixtures::balanced_clique(7),
            fixtures::two_cliques_with_bridge(6, 4),
            fixtures::path_graph(9),
        ];
        for g in &graphs {
            for &params in &params_list {
                let bk = bron_kerbosch_max_fair_clique(g, params);
                let brute = brute_force_max_fair_clique(g, params);
                match (&bk, &brute) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.size(), y.size(), "size mismatch for {params}");
                        assert!(is_fair_and_clique(g, &x.vertices, params));
                    }
                    _ => panic!("feasibility mismatch for {params}: bk={bk:?} brute={brute:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = rfc_graph::GraphBuilder::new(0).build().unwrap();
        assert!(bron_kerbosch_max_fair_clique(&g, FairCliqueParams::new(1, 1).unwrap()).is_none());
        let mut count = 0;
        enumerate_maximal_cliques(&g, |_| count += 1);
        assert_eq!(count, 0);
    }
}
