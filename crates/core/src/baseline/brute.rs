//! Exhaustive clique enumeration — the correctness oracle for small graphs.

use rfc_graph::{AttributeCounts, AttributedGraph, VertexId};

use crate::problem::{FairClique, FairCliqueParams, FairnessModel};

/// Finds the maximum relative fair clique by recursively enumerating **every** clique.
///
/// Exponential in the worst case; intended for graphs with at most a few dozen vertices
/// (tests, examples, and the property-based oracles). Returns `None` when no fair clique
/// exists.
pub fn brute_force_max_fair_clique(
    g: &AttributedGraph,
    params: FairCliqueParams,
) -> Option<FairClique> {
    brute_force_satisfying(g, |counts| params.is_fair(counts))
}

/// Finds the maximum fair clique under any [`FairnessModel`] by exhaustive clique
/// enumeration against the model's *native* constraint ([`FairnessModel::is_fair`]) —
/// deliberately independent of [`FairnessModel::resolve`] so it can serve as an oracle
/// for the solver's δ-remapping.
pub fn brute_force_max_fair_clique_model(
    g: &AttributedGraph,
    model: FairnessModel,
) -> Option<FairClique> {
    brute_force_satisfying(g, |counts| model.is_fair(counts))
}

/// Enumerates **all maximal fair cliques** of `g` under a [`FairnessModel`] by
/// exhaustive clique enumeration — the trusted set oracle for the streaming
/// [`enumerate`](crate::enumerate) engine.
///
/// A clique is kept when it is fair per the model's native constraint and no *other*
/// fair clique strictly contains it (the definition of maximality the
/// [`verify`](crate::verify) oracles use: any fair clique superset is itself a fair
/// clique of the graph, so containment among the fair cliques decides maximality).
/// Exponential; intended for graphs with at most a few dozen vertices. The result is
/// duplicate-free and sorted by vertex list for deterministic comparisons.
pub fn brute_force_all_maximal_fair_cliques(
    g: &AttributedGraph,
    model: FairnessModel,
) -> Vec<FairClique> {
    let mut fair: Vec<Vec<VertexId>> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();
    let candidates: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    collect_fair(
        g,
        &|counts| model.is_fair(counts),
        &mut current,
        &candidates,
        &mut fair,
    );
    // `current` grows in ascending id order, so every collected clique is sorted and
    // strict containment is a subsequence test.
    let maximal: Vec<Vec<VertexId>> = fair
        .iter()
        .filter(|c| {
            !fair
                .iter()
                .any(|d| d.len() > c.len() && is_sorted_subset(c, d))
        })
        .cloned()
        .collect();
    let mut out: Vec<FairClique> = maximal
        .into_iter()
        .map(|vs| FairClique::from_vertices(g, vs))
        .collect();
    out.sort_by(|x, y| x.vertices.cmp(&y.vertices));
    out
}

/// Whether sorted `a` is a subset of sorted `b`.
fn is_sorted_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.any(|y| y == x))
}

/// Recursively enumerates every clique, collecting the fair ones.
fn collect_fair(
    g: &AttributedGraph,
    is_fair: &impl Fn(AttributeCounts) -> bool,
    current: &mut Vec<VertexId>,
    candidates: &[VertexId],
    out: &mut Vec<Vec<VertexId>>,
) {
    if !current.is_empty() && is_fair(g.attribute_counts_of(current)) {
        out.push(current.clone());
    }
    for (i, &v) in candidates.iter().enumerate() {
        let next: Vec<VertexId> = candidates[i + 1..]
            .iter()
            .copied()
            .filter(|&u| g.has_edge(u, v))
            .collect();
        current.push(v);
        collect_fair(g, is_fair, current, &next, out);
        current.pop();
    }
}

fn brute_force_satisfying(
    g: &AttributedGraph,
    is_fair: impl Fn(AttributeCounts) -> bool,
) -> Option<FairClique> {
    let n = g.num_vertices();
    let mut best: Option<Vec<VertexId>> = None;
    let mut current: Vec<VertexId> = Vec::new();
    let candidates: Vec<VertexId> = (0..n as VertexId).collect();
    extend(g, &is_fair, &mut current, &candidates, &mut best);
    best.map(|vs| FairClique::from_vertices(g, vs))
}

fn extend(
    g: &AttributedGraph,
    is_fair: &impl Fn(AttributeCounts) -> bool,
    current: &mut Vec<VertexId>,
    candidates: &[VertexId],
    best: &mut Option<Vec<VertexId>>,
) {
    // Record the current clique if it is fair and larger than the incumbent.
    if is_fair(g.attribute_counts_of(current))
        && best.as_ref().map_or(true, |b| current.len() > b.len())
    {
        *best = Some(current.clone());
    }
    for (i, &v) in candidates.iter().enumerate() {
        // Candidates later in the (id-sorted) list that are adjacent to v.
        let next: Vec<VertexId> = candidates[i + 1..]
            .iter()
            .copied()
            .filter(|&u| g.has_edge(u, v))
            .collect();
        current.push(v);
        extend(g, is_fair, current, &next, best);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_fair_and_clique;
    use rfc_graph::fixtures;

    #[test]
    fn finds_known_optimum_on_fig1() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let best = brute_force_max_fair_clique(&g, params).unwrap();
        assert_eq!(best.size(), 7);
        assert!(is_fair_and_clique(&g, &best.vertices, params));
        // With δ = 2 the whole 8-clique qualifies.
        let best2 = brute_force_max_fair_clique(&g, FairCliqueParams::new(3, 2).unwrap()).unwrap();
        assert_eq!(best2.size(), 8);
        // k = 4 needs 4 of each attribute, but only 3 b's are in the 8-clique.
        assert!(brute_force_max_fair_clique(&g, FairCliqueParams::new(4, 1).unwrap()).is_none());
    }

    #[test]
    fn balanced_clique_optimum_is_whole_graph() {
        let g = fixtures::balanced_clique(6);
        let params = FairCliqueParams::new(2, 1).unwrap();
        let best = brute_force_max_fair_clique(&g, params).unwrap();
        assert_eq!(best.size(), 6);
    }

    #[test]
    fn delta_zero_forces_exact_balance() {
        let g = fixtures::balanced_clique(7); // 4 a's, 3 b's
        let params = FairCliqueParams::new(3, 0).unwrap();
        let best = brute_force_max_fair_clique(&g, params).unwrap();
        assert_eq!(best.size(), 6);
        assert_eq!(best.counts.a(), 3);
        assert_eq!(best.counts.b(), 3);
    }

    #[test]
    fn model_oracle_brackets_the_relative_model() {
        let g = fixtures::fig1_graph();
        let weak = brute_force_max_fair_clique_model(&g, FairnessModel::Weak { k: 3 }).unwrap();
        let strong = brute_force_max_fair_clique_model(&g, FairnessModel::Strong { k: 3 }).unwrap();
        let relative =
            brute_force_max_fair_clique_model(&g, FairnessModel::Relative { k: 3, delta: 1 })
                .unwrap();
        assert_eq!(weak.size(), 8);
        assert_eq!(strong.size(), 6);
        assert_eq!(relative.size(), 7);
        assert_eq!(strong.counts.a(), strong.counts.b());
        // The relative variant agrees with the params-based oracle.
        let params = FairCliqueParams::new(3, 1).unwrap();
        assert_eq!(
            relative.size(),
            brute_force_max_fair_clique(&g, params).unwrap().size()
        );
    }

    #[test]
    fn all_maximal_oracle_matches_the_verify_oracle_on_fig1() {
        let g = fixtures::fig1_graph();
        for (model, expected) in [
            (FairnessModel::Relative { k: 3, delta: 1 }, 5),
            (FairnessModel::Weak { k: 3 }, 1),
            (FairnessModel::Strong { k: 3 }, 10),
        ] {
            let all = brute_force_all_maximal_fair_cliques(&g, model);
            assert_eq!(all.len(), expected, "{model}");
            // Duplicate-free, sorted, and every member passes the independent
            // verify-based maximality oracle.
            assert!(all.windows(2).all(|w| w[0].vertices < w[1].vertices));
            for clique in &all {
                assert!(
                    crate::verify::is_maximal_fair_clique_under(&g, &clique.vertices, model),
                    "{model}: {clique}"
                );
            }
            // The largest member is exactly the maximum fair clique.
            let best = brute_force_max_fair_clique_model(&g, model).unwrap();
            assert_eq!(
                all.iter().map(FairClique::size).max().unwrap(),
                best.size(),
                "{model}"
            );
        }
    }

    #[test]
    fn all_maximal_oracle_handles_infeasible_and_empty_graphs() {
        let g = fixtures::two_cliques_with_bridge(0, 5);
        assert!(brute_force_all_maximal_fair_cliques(&g, FairnessModel::Weak { k: 1 }).is_empty());
        let empty = rfc_graph::GraphBuilder::new(0).build().unwrap();
        assert!(
            brute_force_all_maximal_fair_cliques(&empty, FairnessModel::Weak { k: 1 }).is_empty()
        );
    }

    #[test]
    fn no_fair_clique_in_single_attribute_graph() {
        let g = fixtures::two_cliques_with_bridge(0, 5);
        let params = FairCliqueParams::new(1, 2).unwrap();
        assert!(brute_force_max_fair_clique(&g, params).is_none());
    }

    #[test]
    fn path_graph_has_no_fair_clique_for_k2() {
        let g = fixtures::path_graph(8);
        let params = FairCliqueParams::new(2, 1).unwrap();
        assert!(brute_force_max_fair_clique(&g, params).is_none());
        // But a single edge {a, b} is fair for k = 1.
        let best = brute_force_max_fair_clique(&g, FairCliqueParams::new(1, 0).unwrap()).unwrap();
        assert_eq!(best.size(), 2);
    }
}
