//! Baseline algorithms.
//!
//! The paper motivates `MaxRFC` by contrast with the "intuitive approach": enumerate all
//! (relative fair) cliques and keep the largest. This module implements two such
//! baselines:
//!
//! * [`bron_kerbosch_max_fair_clique`] — enumerate all *maximal* cliques with the
//!   pivoting Bron–Kerbosch algorithm over a degeneracy ordering, and for each maximal
//!   clique extract its best fair sub-clique. Because every clique is contained in some
//!   maximal clique and any subset of a clique is a clique, the best fair sub-clique over
//!   all maximal cliques is exactly the maximum relative fair clique. This is the
//!   exact-but-expensive baseline used in the experiments.
//! * [`brute_force_max_fair_clique`] — exhaustive recursive enumeration of *all* cliques.
//!   Only usable on tiny graphs; it is the trusted oracle for the property-based tests.

mod bron_kerbosch;
mod brute;

pub use bron_kerbosch::{bron_kerbosch_max_fair_clique, enumerate_maximal_cliques};
pub use brute::{
    brute_force_all_maximal_fair_cliques, brute_force_max_fair_clique,
    brute_force_max_fair_clique_model,
};

use rfc_graph::{AttributedGraph, VertexId};

use crate::problem::{FairClique, FairCliqueParams};

/// Given a clique, extracts a largest fair sub-clique (or `None` if none exists).
///
/// Keeps all vertices of the rarer attribute and as many of the more common attribute as
/// fairness allows; among equals, smaller vertex ids are preferred, which makes the
/// result deterministic.
pub(crate) fn best_fair_subclique(
    g: &AttributedGraph,
    clique: &[VertexId],
    params: FairCliqueParams,
) -> Option<FairClique> {
    let counts = g.attribute_counts_of(clique);
    let target = counts.best_fair_subset_size(params.k, params.delta)?;
    let minority_attr = if counts.a() <= counts.b() {
        rfc_graph::Attribute::A
    } else {
        rfc_graph::Attribute::B
    };
    let keep_majority = target - counts.min();
    let mut sorted: Vec<VertexId> = clique.to_vec();
    sorted.sort_unstable();
    let mut taken_majority = 0usize;
    let mut picked = Vec::with_capacity(target);
    for &v in &sorted {
        if g.attribute(v) == minority_attr {
            picked.push(v);
        } else if taken_majority < keep_majority {
            picked.push(v);
            taken_majority += 1;
        }
    }
    debug_assert_eq!(picked.len(), target);
    let picked_counts = g.attribute_counts_of(&picked);
    debug_assert!(params.is_fair(picked_counts));
    Some(FairClique {
        vertices: picked,
        counts: picked_counts,
    })
}

/// Keeps the larger of two optional fair cliques (ties: keep the incumbent).
pub(crate) fn keep_larger(
    incumbent: Option<FairClique>,
    candidate: Option<FairClique>,
) -> Option<FairClique> {
    match (incumbent, candidate) {
        (None, c) => c,
        (i, None) => i,
        (Some(i), Some(c)) => {
            if c.size() > i.size() {
                Some(c)
            } else {
                Some(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    #[test]
    fn best_fair_subclique_of_unbalanced_clique() {
        let g = fixtures::fig1_graph();
        let clique: Vec<u32> = vec![6, 7, 9, 10, 11, 12, 13, 14]; // 3 b, 5 a
        let params = FairCliqueParams::new(3, 1).unwrap();
        let sub = best_fair_subclique(&g, &clique, params).unwrap();
        assert_eq!(sub.size(), 7);
        assert_eq!(sub.counts.b(), 3);
        assert_eq!(sub.counts.a(), 4);
        assert!(g.is_clique(&sub.vertices));
        // Infeasible when k is too large.
        let params_big = FairCliqueParams::new(4, 1).unwrap();
        assert!(best_fair_subclique(&g, &clique, params_big).is_none());
    }

    #[test]
    fn keep_larger_prefers_strictly_larger() {
        let g = fixtures::balanced_clique(4);
        let small = FairClique::from_vertices(&g, vec![0, 1]);
        let large = FairClique::from_vertices(&g, vec![0, 1, 2]);
        assert_eq!(
            keep_larger(Some(small.clone()), Some(large.clone()))
                .unwrap()
                .size(),
            3
        );
        assert_eq!(
            keep_larger(Some(large.clone()), Some(small.clone()))
                .unwrap()
                .size(),
            3
        );
        assert_eq!(keep_larger(None, Some(small.clone())).unwrap().size(), 2);
        assert_eq!(keep_larger(Some(small), None).unwrap().size(), 2);
        assert!(keep_larger(None, None).is_none());
    }
}
