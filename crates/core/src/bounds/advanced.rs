//! The "advanced" bound group `ubAD`: attribute, color, attribute-color and
//! enhanced-attribute-color bounds (Lemmas 6–9).

use rfc_graph::coloring::Coloring;
use rfc_graph::AttributedGraph;

use crate::problem::FairCliqueParams;

/// `uba` (Lemma 6): caps the clique's per-attribute sizes by the number of vertices of
/// each attribute in the instance. Returns 0 when infeasible.
pub fn attribute_bound(
    g: &AttributedGraph,
    vertices: &[rfc_graph::VertexId],
    params: FairCliqueParams,
) -> usize {
    let counts = g.attribute_counts_of(vertices);
    params.best_fair_total(counts.a(), counts.b()).unwrap_or(0)
}

/// `ubc` (Lemma 7): a clique's vertices all have distinct colors, so its size is at most
/// the number of colors used by any proper coloring of the instance subgraph.
pub fn color_bound(coloring: &Coloring) -> usize {
    coloring.num_colors
}

/// `ubac` (Lemma 8): caps the per-attribute sizes by the number of *colors* occupied by
/// each attribute. Works on the instance subgraph `G'` (compact vertex ids) and its
/// coloring.
pub fn attribute_color_bound(
    sub: &AttributedGraph,
    coloring: &Coloring,
    params: FairCliqueParams,
) -> usize {
    let (color_a, color_b, _mixed) = per_attribute_color_counts(sub, coloring);
    // A color counted for both attributes contributes to both caps, exactly as in the
    // paper's colorR∪C(a) / colorR∪C(b).
    params.best_fair_total(color_a, color_b).unwrap_or(0)
}

/// `ubeac` (Lemma 9, sound variant): partitions the instance's colors into exclusive-a,
/// exclusive-b and mixed groups and maximizes the fair total over all ways of assigning
/// the mixed colors to one attribute each.
pub fn enhanced_attribute_color_bound(
    sub: &AttributedGraph,
    coloring: &Coloring,
    params: FairCliqueParams,
) -> usize {
    let (ca_total, cb_total, mixed) = per_attribute_color_counts(sub, coloring);
    // Exclusive counts: colors used by exactly one attribute.
    let ca = ca_total - mixed;
    let cb = cb_total - mixed;
    let mut best = 0usize;
    for x in 0..=mixed {
        if let Some(total) = params.best_fair_total(ca + x, cb + (mixed - x)) {
            best = best.max(total);
        }
    }
    best
}

/// Counts, over the colored instance subgraph, the number of colors used by at least one
/// a-vertex, at least one b-vertex, and by both. Returns `(colors_a, colors_b, mixed)`.
fn per_attribute_color_counts(sub: &AttributedGraph, coloring: &Coloring) -> (usize, usize, usize) {
    let num_colors = coloring.num_colors;
    let mut seen = vec![[false; 2]; num_colors];
    for v in sub.vertices() {
        let c = coloring.color(v);
        if c == u32::MAX {
            continue; // vertex outside the colored subset
        }
        seen[c as usize][sub.attribute(v).index()] = true;
    }
    let mut color_a = 0;
    let mut color_b = 0;
    let mut mixed = 0;
    for s in &seen {
        if s[0] {
            color_a += 1;
        }
        if s[1] {
            color_b += 1;
        }
        if s[0] && s[1] {
            mixed += 1;
        }
    }
    (color_a, color_b, mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::coloring::greedy_coloring;
    use rfc_graph::{fixtures, Attribute, GraphBuilder};

    #[test]
    fn attribute_bound_cases() {
        let g = fixtures::fig1_graph();
        let all: Vec<u32> = g.vertices().collect();
        let params = FairCliqueParams::new(3, 1).unwrap();
        // 10 a's, 5 b's: 5 + min(10, 6) = 11.
        assert_eq!(attribute_bound(&g, &all, params), 11);
        // Restricted to the planted clique: 5 a's, 3 b's: 3 + 4 = 7.
        let clique: Vec<u32> = vec![6, 7, 9, 10, 11, 12, 13, 14];
        assert_eq!(attribute_bound(&g, &clique, params), 7);
        // Infeasible subset.
        assert_eq!(attribute_bound(&g, &[0, 2, 3], params), 0);
    }

    #[test]
    fn color_bound_is_chromatic_upper_bound() {
        let g = fixtures::balanced_clique(6);
        let coloring = greedy_coloring(&g);
        assert_eq!(color_bound(&coloring), 6);
        let p = fixtures::path_graph(9);
        assert_eq!(color_bound(&greedy_coloring(&p)), 2);
    }

    #[test]
    fn attribute_color_bound_on_star() {
        // Star with an a-center and many b-leaves: leaves share one color, so at most
        // 1 color per attribute survives -> bound 2 for (k=1, δ=0).
        let mut b = GraphBuilder::new(6);
        b.set_attribute(0, Attribute::A);
        for v in 1..6 {
            b.set_attribute(v, Attribute::B);
            b.add_edge(0, v);
        }
        let g = b.build().unwrap();
        let coloring = greedy_coloring(&g);
        let params = FairCliqueParams::new(1, 0).unwrap();
        assert_eq!(attribute_color_bound(&g, &coloring, params), 2);
        // The vertex-count bound is much weaker here: 1 + min(5, 1+0) = 2 as well,
        // but for δ = 4 it grows while the color bound stays 2.
        let loose = FairCliqueParams::new(1, 4).unwrap();
        assert_eq!(attribute_color_bound(&g, &coloring, loose), 2);
        let all: Vec<u32> = g.vertices().collect();
        assert_eq!(attribute_bound(&g, &all, loose), 6);
    }

    #[test]
    fn enhanced_bound_never_exceeds_attribute_color_bound() {
        let graphs = [
            fixtures::fig1_graph(),
            fixtures::balanced_clique(9),
            fixtures::two_cliques_with_bridge(5, 4),
        ];
        let params = FairCliqueParams::new(2, 1).unwrap();
        for g in &graphs {
            let coloring = greedy_coloring(g);
            let eac = enhanced_attribute_color_bound(g, &coloring, params);
            let ac = attribute_color_bound(g, &coloring, params);
            assert!(eac <= ac, "ubeac={eac} > ubac={ac}");
        }
    }

    #[test]
    fn enhanced_bound_handles_all_mixed_colors() {
        // Star where the center is a and the leaves alternate attributes but share the
        // same color: the single leaf color is mixed and can only serve one attribute.
        let mut b = GraphBuilder::new(7);
        b.set_attribute(0, Attribute::A);
        for v in 1..7 {
            b.set_attribute(
                v,
                if v % 2 == 0 {
                    Attribute::A
                } else {
                    Attribute::B
                },
            );
            b.add_edge(0, v);
        }
        let g = b.build().unwrap();
        let coloring = greedy_coloring(&g);
        let params = FairCliqueParams::new(1, 5).unwrap();
        // Colors: center color (exclusive a), leaf color (mixed). Best assignment gives
        // caps (1, 1) -> total 2; the plain attribute-color bound double counts the
        // mixed color and yields caps (2, 1) -> 3.
        assert_eq!(enhanced_attribute_color_bound(&g, &coloring, params), 2);
        assert_eq!(attribute_color_bound(&g, &coloring, params), 3);
    }

    #[test]
    fn bounds_are_zero_when_one_attribute_missing() {
        let g = fixtures::two_cliques_with_bridge(0, 5); // all a
        let coloring = greedy_coloring(&g);
        let params = FairCliqueParams::new(1, 1).unwrap();
        let all: Vec<u32> = g.vertices().collect();
        assert_eq!(attribute_bound(&g, &all, params), 0);
        assert_eq!(attribute_color_bound(&g, &coloring, params), 0);
        assert_eq!(enhanced_attribute_color_bound(&g, &coloring, params), 0);
    }
}
