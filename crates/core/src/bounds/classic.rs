//! Degeneracy and h-index upper bounds (Lemmas 10–11).
//!
//! These bound the plain maximum clique size of the instance subgraph, which in turn
//! bounds the maximum fair clique size. A clique of size `s` forces degeneracy ≥ `s − 1`
//! and h-index ≥ `s − 1`, so the sound bounds are `degeneracy + 1` and `h-index + 1`
//! (see the soundness note in the module docs of [`crate::bounds`]).

use rfc_graph::cores::{core_decomposition, graph_h_index};
use rfc_graph::AttributedGraph;

/// `ub△`: degeneracy-based bound on the clique number of `sub`.
pub fn degeneracy_bound(sub: &AttributedGraph) -> usize {
    if sub.num_vertices() == 0 {
        return 0;
    }
    core_decomposition(sub).degeneracy as usize + 1
}

/// `ubh`: h-index-based bound on the clique number of `sub`.
pub fn h_index_bound(sub: &AttributedGraph) -> usize {
    if sub.num_vertices() == 0 {
        return 0;
    }
    graph_h_index(sub) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    #[test]
    fn bounds_are_tight_on_cliques() {
        let g = fixtures::balanced_clique(7);
        assert_eq!(degeneracy_bound(&g), 7);
        assert_eq!(h_index_bound(&g), 7);
    }

    #[test]
    fn degeneracy_bound_never_exceeds_h_index_bound() {
        // The paper notes MRFC <= ub△ <= ubh.
        for g in [
            fixtures::fig1_graph(),
            fixtures::two_cliques_with_bridge(6, 5),
            fixtures::path_graph(10),
            fixtures::balanced_clique(5),
        ] {
            assert!(degeneracy_bound(&g) <= h_index_bound(&g));
        }
    }

    #[test]
    fn path_bounds() {
        let g = fixtures::path_graph(10);
        assert_eq!(degeneracy_bound(&g), 2); // max clique is an edge
        assert!(h_index_bound(&g) >= 2);
    }

    #[test]
    fn empty_graph_bounds_are_zero() {
        let g = rfc_graph::GraphBuilder::new(0).build().unwrap();
        assert_eq!(degeneracy_bound(&g), 0);
        assert_eq!(h_index_bound(&g), 0);
    }
}
