//! Colorful degeneracy and colorful h-index upper bounds (Lemmas 12–13).
//!
//! A fair clique with per-attribute counts `(x, y)` is itself a colorful
//! `(min(x, y) − 1)`-core: inside the clique every vertex sees at least `min(x, y) − 1`
//! distinct colors of each attribute. Hence `min(x, y) ≤ △_colorful(G') + 1` and, since
//! at least `min(x, y)` clique vertices have `D_min ≥ min(x, y) − 1`, also
//! `min(x, y) ≤ h_colorful(G') + 1`. Combining with the fairness constraint
//! `|x − y| ≤ δ` gives the bounds below (the `+ 1` is the soundness correction
//! discussed in [`crate::bounds`]).

use rfc_graph::colorful::{colorful_core_decomposition, colorful_h_index};
use rfc_graph::coloring::Coloring;
use rfc_graph::AttributedGraph;

use crate::problem::FairCliqueParams;

/// `ubcd`: colorful-degeneracy-based bound.
pub fn colorful_degeneracy_bound(
    sub: &AttributedGraph,
    coloring: &Coloring,
    params: FairCliqueParams,
) -> usize {
    if sub.num_vertices() == 0 {
        return 0;
    }
    let decomp = colorful_core_decomposition(sub, coloring);
    let cap_min = decomp.colorful_degeneracy as usize + 1;
    params.best_fair_total(cap_min, usize::MAX).unwrap_or(0)
}

/// `ubch`: colorful-h-index-based bound.
pub fn colorful_h_index_bound(
    sub: &AttributedGraph,
    coloring: &Coloring,
    params: FairCliqueParams,
) -> usize {
    if sub.num_vertices() == 0 {
        return 0;
    }
    let cap_min = colorful_h_index(sub, coloring) + 1;
    params.best_fair_total(cap_min, usize::MAX).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_max_fair_clique;
    use rfc_graph::coloring::greedy_coloring;
    use rfc_graph::fixtures;

    #[test]
    fn bounds_dominate_optimum() {
        let params_list = [
            FairCliqueParams::new(1, 1).unwrap(),
            FairCliqueParams::new(2, 0).unwrap(),
            FairCliqueParams::new(3, 1).unwrap(),
            FairCliqueParams::new(3, 2).unwrap(),
        ];
        for g in [
            fixtures::fig1_graph(),
            fixtures::balanced_clique(8),
            fixtures::two_cliques_with_bridge(6, 6),
        ] {
            let coloring = greedy_coloring(&g);
            for &params in &params_list {
                let opt = brute_force_max_fair_clique(&g, params)
                    .map(|c| c.size())
                    .unwrap_or(0);
                let cd = colorful_degeneracy_bound(&g, &coloring, params);
                let ch = colorful_h_index_bound(&g, &coloring, params);
                assert!(cd >= opt, "ubcd={cd} < opt={opt} ({params})");
                assert!(ch >= opt, "ubch={ch} < opt={opt} ({params})");
            }
        }
    }

    #[test]
    fn bound_is_tight_on_balanced_clique() {
        // K8 alternating, k=2, δ=0: colorful degeneracy is 3, so the bound is
        // 2*(3+1) + 0 = 8 = the true optimum.
        let g = fixtures::balanced_clique(8);
        let coloring = greedy_coloring(&g);
        let params = FairCliqueParams::new(2, 0).unwrap();
        assert_eq!(colorful_degeneracy_bound(&g, &coloring, params), 8);
        assert_eq!(colorful_h_index_bound(&g, &coloring, params), 8);
    }

    #[test]
    fn infeasible_when_colorful_structure_too_small() {
        // Path graphs unravel to a colorful 0-core, so cap_min = 1 < k = 2.
        let g = fixtures::path_graph(12);
        let coloring = greedy_coloring(&g);
        let params = FairCliqueParams::new(2, 1).unwrap();
        assert_eq!(colorful_degeneracy_bound(&g, &coloring, params), 0);
    }

    #[test]
    fn degeneracy_variant_no_looser_than_h_index_variant() {
        for g in [fixtures::fig1_graph(), fixtures::balanced_clique(9)] {
            let coloring = greedy_coloring(&g);
            let params = FairCliqueParams::new(2, 1).unwrap();
            assert!(
                colorful_degeneracy_bound(&g, &coloring, params)
                    <= colorful_h_index_bound(&g, &coloring, params)
            );
        }
    }
}
