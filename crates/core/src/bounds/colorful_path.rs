//! The colorful-path upper bound `ubcp` (Definition 11, Lemma 14, Algorithm 4).
//!
//! Order the vertices of the colored instance subgraph by `(color, vertex id)` and
//! orient every edge from the lower-ranked to the higher-ranked endpoint. Because a
//! proper coloring never colors adjacent vertices the same, every arc strictly increases
//! the color, so the resulting digraph is a DAG and every directed path visits distinct
//! colors — it is a *colorful path*. A clique's vertices, sorted by color, form such a
//! path, so the longest path length in the DAG bounds the maximum (fair) clique size.
//! The longest path in a DAG is computed by dynamic programming over a topological
//! order in `O(|V| + |E|)` time (`ColorfulPathDP`).

use rfc_graph::coloring::Coloring;
use rfc_graph::{AttributedGraph, VertexId};

/// `ubcp`: the number of vertices on the longest colorful path of the colored instance
/// subgraph. Returns 0 for an empty graph.
pub fn colorful_path_bound(sub: &AttributedGraph, coloring: &Coloring) -> usize {
    longest_colorful_path_len(sub, coloring)
}

/// Length (vertex count) of the longest path in the color-ordered DAG of `sub`.
pub fn longest_colorful_path_len(sub: &AttributedGraph, coloring: &Coloring) -> usize {
    let n = sub.num_vertices();
    if n == 0 {
        return 0;
    }
    // Total order: (color, id) ascending. Processing vertices in this order is a
    // topological order of the DAG, so f(v) can be finalized in one pass.
    let mut order: Vec<VertexId> = sub.vertices().collect();
    order.sort_unstable_by_key(|&v| (coloring.color(v), v));

    let mut f = vec![1u32; n];
    let mut maxlen = 1u32;
    for &v in &order {
        let key_v = (coloring.color(v), v);
        for &u in sub.neighbors(v) {
            // Incoming arcs of v come from lower-ranked neighbors.
            if (coloring.color(u), u) < key_v {
                f[v as usize] = f[v as usize].max(f[u as usize] + 1);
            }
        }
        maxlen = maxlen.max(f[v as usize]);
    }
    maxlen as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_max_fair_clique;
    use crate::problem::FairCliqueParams;
    use rfc_graph::coloring::greedy_coloring;
    use rfc_graph::{fixtures, GraphBuilder};

    #[test]
    fn clique_path_length_equals_clique_size() {
        let g = fixtures::balanced_clique(6);
        let coloring = greedy_coloring(&g);
        assert_eq!(longest_colorful_path_len(&g, &coloring), 6);
    }

    #[test]
    fn path_graph_two_colors_gives_length_two() {
        // The alternating-colored path graph only admits colorful paths of length 2
        // (two colors exist in total).
        let g = fixtures::path_graph(9);
        let coloring = greedy_coloring(&g);
        assert_eq!(longest_colorful_path_len(&g, &coloring), 2);
    }

    #[test]
    fn bound_dominates_maximum_fair_clique() {
        let params = FairCliqueParams::new(3, 1).unwrap();
        let g = fixtures::fig1_graph();
        let coloring = greedy_coloring(&g);
        let ub = colorful_path_bound(&g, &coloring);
        let opt = brute_force_max_fair_clique(&g, params).unwrap().size();
        assert!(ub >= opt);
        // It also dominates the plain clique number, here 8.
        assert!(ub >= 8);
    }

    #[test]
    fn star_graph_path_length() {
        // Star: center + leaves of one other color: longest colorful path = 2.
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let g = b.build().unwrap();
        let coloring = greedy_coloring(&g);
        assert_eq!(longest_colorful_path_len(&g, &coloring), 2);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = GraphBuilder::new(0).build().unwrap();
        let c0 = greedy_coloring(&empty);
        assert_eq!(longest_colorful_path_len(&empty, &c0), 0);
        let single = GraphBuilder::new(1).build().unwrap();
        let c1 = greedy_coloring(&single);
        assert_eq!(longest_colorful_path_len(&single, &c1), 1);
    }

    #[test]
    fn example4_structure() {
        // A 5-clique plus some pendant structure: the longest colorful path covers the
        // 5 clique colors, mirroring Example 4's ubcp = 5.
        let mut b = GraphBuilder::new(7);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        b.add_edge(5, 6);
        let g = b.build().unwrap();
        let coloring = greedy_coloring(&g);
        assert_eq!(longest_colorful_path_len(&g, &coloring), 5);
    }
}
