//! Upper bounds on the maximum fair clique size of a search instance (Section IV-B/C).
//!
//! Given a search instance `(R, C)` — a partial clique `R` and a candidate set `C` —
//! every bound in this module returns a number `ub` such that any relative fair clique
//! contained in `R ∪ C` has at most `ub` vertices. The branch-and-bound search prunes
//! the instance when `ub` is smaller than `2k` (the minimum feasible size) or does not
//! beat the incumbent solution.
//!
//! Bounds implemented (paper lemma in parentheses):
//!
//! | name | module | idea |
//! |---|---|---|
//! | `ubs` (L5) | inline | `|R| + |C|` |
//! | `uba` (L6) | [`advanced`] | per-attribute vertex counts |
//! | `ubc` (L7) | [`advanced`] | number of colors of a fresh coloring of `G' = G[R ∪ C]` |
//! | `ubac` (L8) | [`advanced`] | per-attribute color counts |
//! | `ubeac` (L9) | [`advanced`] | exclusive/mixed color groups, best assignment |
//! | `ub△` (L10) | [`classic`] | degeneracy of `G'` |
//! | `ubh` (L11) | [`classic`] | h-index of `G'` |
//! | `ubcd` (L12) | [`colorful`] | colorful degeneracy of `G'` |
//! | `ubch` (L13) | [`colorful`] | colorful h-index of `G'` |
//! | `ubcp` (L14) | [`colorful_path`] | longest colorful path in the color-ordered DAG |
//!
//! The first five are grouped as the *advanced* bound `ubAD` (their minimum), matching
//! the grouping used in the paper's experiments; the remaining five are the optional
//! *extra* bound selected by [`ExtraBound`].
//!
//! ### Soundness corrections
//!
//! A handful of the paper's lemmas are off by a small additive constant when taken
//! literally (e.g. Lemma 10 states `ub△ = degeneracy(G')`, but a clique of size `s` only
//! forces degeneracy `s − 1`; Lemmas 12–13 bound via the colorful degrees of a single
//! vertex, which undercounts the vertex itself; Lemma 9's `2·min + c_m + δ` can fall
//! below an achievable fair clique). Since this library's search must stay *exact*, the
//! implementations here use the corrected, provably sound forms — `degeneracy + 1`,
//! `h-index + 1`, `2·(colorful degeneracy + 1) + δ`, and the optimum over mixed-color
//! assignments — which preserve the asymptotic pruning behaviour the paper evaluates.
//! DESIGN.md §4 documents each correction.

pub mod advanced;
pub mod classic;
pub mod colorful;
pub mod colorful_path;

use rfc_graph::coloring::greedy_coloring;
use rfc_graph::subgraph::induced_subgraph;
use rfc_graph::{AttributedGraph, VertexId};

use crate::problem::FairCliqueParams;

/// The optional "non-trivial" bound to combine with the advanced group `ubAD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtraBound {
    /// No extra bound: use `ubAD` alone.
    None,
    /// Degeneracy-based bound `ub△` (Lemma 10).
    Degeneracy,
    /// H-index-based bound `ubh` (Lemma 11).
    HIndex,
    /// Colorful-degeneracy-based bound `ubcd` (Lemma 12).
    #[default]
    ColorfulDegeneracy,
    /// Colorful-h-index-based bound `ubch` (Lemma 13).
    ColorfulHIndex,
    /// Colorful-path-based bound `ubcp` (Lemma 14, Algorithm 4).
    ColorfulPath,
}

impl ExtraBound {
    /// All variants, in the order used by Table II of the paper.
    pub const ALL: [ExtraBound; 6] = [
        ExtraBound::None,
        ExtraBound::Degeneracy,
        ExtraBound::HIndex,
        ExtraBound::ColorfulDegeneracy,
        ExtraBound::ColorfulHIndex,
        ExtraBound::ColorfulPath,
    ];

    /// The label used in the paper's tables (`ubAD`, `ubAD+ub△`, …).
    pub fn label(self) -> &'static str {
        match self {
            ExtraBound::None => "ubAD",
            ExtraBound::Degeneracy => "ubAD+ubD",
            ExtraBound::HIndex => "ubAD+ubh",
            ExtraBound::ColorfulDegeneracy => "ubAD+ubcd",
            ExtraBound::ColorfulHIndex => "ubAD+ubch",
            ExtraBound::ColorfulPath => "ubAD+ubcp",
        }
    }
}

/// Which bounds the branch-and-bound search evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundConfig {
    /// Evaluate the advanced group `ubAD = min(ubs, uba, ubc, ubac, ubeac)` on the
    /// instances where expensive bounds are enabled. When `false` only the trivial size
    /// and attribute-feasibility checks run (this is the "basic MaxRFC" configuration).
    pub advanced: bool,
    /// The extra non-trivial bound to combine with `ubAD`.
    pub extra: ExtraBound,
    /// Maximum search depth (number of vertices already committed to `R`) at which the
    /// expensive bounds are still evaluated. The paper applies them "when selecting
    /// vertices to be added to R for the first time", i.e. depth ≤ 1.
    pub max_depth: usize,
}

impl Default for BoundConfig {
    fn default() -> Self {
        Self {
            advanced: true,
            extra: ExtraBound::ColorfulDegeneracy,
            max_depth: 1,
        }
    }
}

impl BoundConfig {
    /// The "basic MaxRFC" configuration: only the trivial size bound.
    pub fn basic() -> Self {
        Self {
            advanced: false,
            extra: ExtraBound::None,
            max_depth: 0,
        }
    }

    /// `ubAD` together with the given extra bound (the `MaxRFC+ub` configurations of the
    /// experiments).
    pub fn with_extra(extra: ExtraBound) -> Self {
        Self {
            advanced: true,
            extra,
            max_depth: 1,
        }
    }
}

/// Computes the configured upper bound for the instance whose vertex set is
/// `R ∪ C = vertices` (a subset of `g`'s vertices).
///
/// Returns `0` when the instance is provably infeasible (no fair clique can exist in
/// it), which prunes the branch outright.
pub fn instance_upper_bound(
    g: &AttributedGraph,
    vertices: &[VertexId],
    params: FairCliqueParams,
    config: &BoundConfig,
) -> usize {
    if vertices.len() < params.min_size() {
        return 0;
    }
    let mut bound = vertices.len(); // ubs

    // uba only needs attribute counts — always cheap.
    let counts = g.attribute_counts_of(vertices);
    match params.best_fair_total(counts.a(), counts.b()) {
        None => return 0,
        Some(uba) => bound = bound.min(uba),
    }

    if !config.advanced && config.extra == ExtraBound::None {
        return bound;
    }

    // The color-based bounds operate on the induced subgraph G' = G[R ∪ C] with a fresh
    // greedy coloring.
    let sub = induced_subgraph(g, vertices);
    let coloring = greedy_coloring(&sub.graph);

    if config.advanced {
        bound = bound.min(advanced::color_bound(&coloring));
        bound = bound.min(advanced::attribute_color_bound(
            &sub.graph, &coloring, params,
        ));
        bound = bound.min(advanced::enhanced_attribute_color_bound(
            &sub.graph, &coloring, params,
        ));
        if bound < params.min_size() {
            return 0;
        }
    }

    let extra = match config.extra {
        ExtraBound::None => usize::MAX,
        ExtraBound::Degeneracy => classic::degeneracy_bound(&sub.graph),
        ExtraBound::HIndex => classic::h_index_bound(&sub.graph),
        ExtraBound::ColorfulDegeneracy => {
            colorful::colorful_degeneracy_bound(&sub.graph, &coloring, params)
        }
        ExtraBound::ColorfulHIndex => {
            colorful::colorful_h_index_bound(&sub.graph, &coloring, params)
        }
        ExtraBound::ColorfulPath => colorful_path::colorful_path_bound(&sub.graph, &coloring),
    };
    bound = bound.min(extra);
    if bound < params.min_size() {
        0
    } else {
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_max_fair_clique;
    use rfc_graph::fixtures;

    fn optimum(g: &AttributedGraph, params: FairCliqueParams) -> usize {
        brute_force_max_fair_clique(g, params)
            .map(|c| c.size())
            .unwrap_or(0)
    }

    #[test]
    fn every_bound_dominates_the_optimum_on_fixtures() {
        let graphs = [
            fixtures::fig1_graph(),
            fixtures::balanced_clique(8),
            fixtures::two_cliques_with_bridge(6, 5),
            fixtures::path_graph(7),
        ];
        let params_list = [
            FairCliqueParams::new(1, 0).unwrap(),
            FairCliqueParams::new(2, 1).unwrap(),
            FairCliqueParams::new(3, 1).unwrap(),
            FairCliqueParams::new(3, 2).unwrap(),
        ];
        for g in &graphs {
            let all: Vec<u32> = g.vertices().collect();
            for &params in &params_list {
                let opt = optimum(g, params);
                for extra in ExtraBound::ALL {
                    let config = BoundConfig::with_extra(extra);
                    let ub = instance_upper_bound(g, &all, params, &config);
                    assert!(
                        ub >= opt,
                        "bound {} = {ub} below optimum {opt} for {params}",
                        extra.label()
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_instances_return_zero() {
        let g = fixtures::two_cliques_with_bridge(0, 6); // all-a clique
        let all: Vec<u32> = g.vertices().collect();
        let params = FairCliqueParams::new(1, 3).unwrap();
        let ub = instance_upper_bound(&g, &all, params, &BoundConfig::default());
        assert_eq!(ub, 0);
        // Too-small instances are also pruned.
        let g2 = fixtures::balanced_clique(4);
        let ub2 = instance_upper_bound(
            &g2,
            &[0, 1, 2],
            FairCliqueParams::new(2, 1).unwrap(),
            &BoundConfig::default(),
        );
        assert_eq!(ub2, 0);
    }

    #[test]
    fn basic_config_only_uses_size_and_attributes() {
        let g = fixtures::fig1_graph();
        let all: Vec<u32> = g.vertices().collect();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let basic = instance_upper_bound(&g, &all, params, &BoundConfig::basic());
        let full = instance_upper_bound(&g, &all, params, &BoundConfig::default());
        assert!(basic >= full, "more bounds can only tighten the value");
        // The basic bound on the full graph is the attribute bound: 10 a's, 5 b's,
        // δ = 1 -> 5 + 6 = 11.
        assert_eq!(basic, 11);
    }

    #[test]
    fn tighter_bounds_never_exceed_ubs() {
        let g = fixtures::fig1_graph();
        let all: Vec<u32> = g.vertices().collect();
        let params = FairCliqueParams::new(2, 2).unwrap();
        for extra in ExtraBound::ALL {
            let ub = instance_upper_bound(&g, &all, params, &BoundConfig::with_extra(extra));
            assert!(ub <= g.num_vertices());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ExtraBound::None.label(), "ubAD");
        assert_eq!(ExtraBound::ColorfulPath.label(), "ubAD+ubcp");
        assert_eq!(ExtraBound::default(), ExtraBound::ColorfulDegeneracy);
    }
}
