//! A small bounded LRU map for the dynamic solver's per-component result caches.
//!
//! A long-lived daemon serving a churny graph accumulates one cache entry per
//! *distinct component content* it ever solved — unbounded by default, which is the
//! right call for a CLI run but a slow leak for `maxfaircliqued`. [`LruCache`] bounds
//! the entry count with least-recently-used eviction and counts hits, misses and
//! evictions so a `stats` request can report cache health.
//!
//! The implementation is deliberately simple: a `HashMap` of `(value, last-use tick)`
//! with an `O(len)` scan on eviction. Capacities are small (hundreds to a few
//! thousand entries of whole-component answers), evictions are rare relative to
//! lookups, and the values are `Arc`s — so the scan never shows up next to an actual
//! branch-and-bound search.

use std::collections::HashMap;
use std::hash::Hash;

/// Counters describing one [`LruCache`]'s lifetime behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub len: usize,
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted to make room (not counting [`retain`](LruCache::retain)).
    pub evictions: u64,
}

impl CacheStats {
    /// Sums another cache's counters into this one (for aggregating across the
    /// per-`(k, config)` entries of a dynamic solver).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.len += other.len;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A hash map bounded to `capacity` entries with least-recently-used eviction.
///
/// `capacity = None` means unbounded (the default for batch workloads). A capacity
/// of `0` is treated as "cache nothing": every insert is dropped on the floor and
/// counted as an eviction.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (`None` = unbounded).
    pub fn new(capacity: Option<usize>) -> Self {
        Self {
            map: HashMap::new(),
            tick: 0,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Changes the bound, evicting LRU entries immediately if the cache is over it.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        if let Some(cap) = capacity {
            while self.map.len() > cap {
                self.evict_lru();
            }
        }
    }

    /// Looks `key` up, refreshing its recency. Counts a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((value, last_use)) => {
                *last_use = self.tick;
                self.hits += 1;
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least recently used entry first
    /// when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        match self.capacity {
            Some(0) => {
                self.evictions += 1; // cache disabled: the new entry itself is "evicted"
            }
            Some(cap) => {
                if !self.map.contains_key(&key) && self.map.len() >= cap {
                    self.evict_lru();
                }
                self.map.insert(key, (value, self.tick));
            }
            None => {
                self.map.insert(key, (value, self.tick));
            }
        }
    }

    /// Drops every entry whose key fails the predicate (no eviction accounting —
    /// this is invalidation, not capacity pressure).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        self.map.retain(|k, _| keep(k));
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// This cache's lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.map.len(),
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, (_, last_use))| *last_use)
            .map(|(k, _)| k.clone());
        if let Some(key) = victim {
            self.map.remove(&key);
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c: LruCache<u32, u32> = LruCache::new(None);
        for i in 0..100 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.get(&7), Some(&70));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 0, 0));
    }

    #[test]
    fn lru_eviction_order_follows_recency() {
        let mut c: LruCache<&str, u32> = LruCache::new(Some(2));
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh "a": "b" is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "LRU entry must be evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_resident_key_does_not_evict() {
        let mut c: LruCache<&str, u32> = LruCache::new(Some(2));
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(Some(0));
        c.insert(1, 1);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut c: LruCache<u32, u32> = LruCache::new(None);
        for i in 0..10 {
            c.insert(i, i);
        }
        let _ = c.get(&0); // keep 0 hot
        c.set_capacity(Some(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 7);
        assert_eq!(c.get(&0), Some(&0), "most recently used entries survive");
    }

    #[test]
    fn retain_does_not_count_as_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(Some(10));
        for i in 0..6 {
            c.insert(i, i);
        }
        c.retain(|&k| k % 2 == 0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = CacheStats {
            len: 1,
            hits: 2,
            misses: 3,
            evictions: 4,
        };
        a.absorb(&CacheStats {
            len: 10,
            hits: 20,
            misses: 30,
            evictions: 40,
        });
        assert_eq!(
            a,
            CacheStats {
                len: 11,
                hits: 22,
                misses: 33,
                evictions: 44,
            }
        );
    }
}
