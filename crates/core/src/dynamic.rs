//! Incremental re-solve and re-enumeration over a changing graph.
//!
//! [`DynamicRfcSolver`] wraps the build-once/query-many [`RfcSolver`](crate::solver::RfcSolver) pipeline for
//! graphs that *churn*: edges and vertices arrive and leave between queries. Updates
//! are buffered in an [`rfc_graph::delta::GraphDelta`] and folded into the committed
//! graph by [`commit`](DynamicRfcSolver::commit); queries
//! ([`solve`](DynamicRfcSolver::solve) / [`enumerate`](DynamicRfcSolver::enumerate))
//! always answer against the committed graph and reuse everything an update provably
//! could not have changed:
//!
//! 1. **Reduced graphs** are cached per `(k, ReductionConfig)` like in [`RfcSolver`](crate::solver::RfcSolver).
//!    On commit each cached entry is *kept* when the batch contains no edge
//!    insertions and none of its removed edges is present in the reduced graph, and
//!    marked stale otherwise. Stale entries are **spliced**, not recomputed: the
//!    reduction pipeline re-runs only on the connected components of the new graph
//!    that contain a touched vertex, and the untouched components keep their slice of
//!    the old reduced graph.
//! 2. **Per-component solve and enumeration results** are cached under the
//!    component's *canonical content* (attributes and edges relabeled by the
//!    component's sorted vertex list). After any update, components whose content is
//!    unchanged hit the cache and are never re-searched; only dirty components run
//!    the branch-and-bound / re-enumeration. Because the key is the content itself,
//!    component merges, splits and vertex-id-preserving churn all invalidate exactly
//!    the components they touch — there is no separate dirty-tracking protocol to
//!    get out of sync.
//!
//! ## Soundness of the cache invalidation
//!
//! *Kept reduced graphs.* Every reduction stage is δ-independent and only deletes
//! vertices/edges contained in **no** fair clique of size ≥ 2k, so a reduced graph
//! `R` of `G` preserves every fair clique of every subgraph of `G` as long as
//! `R` stays a subgraph of it. A batch with no edge insertions whose removed edges
//! all lie outside `R` yields a new graph `G′` with `R ⊆ G′ ⊆ G`; every fair clique
//! of `G′` is a fair clique of `G` and hence preserved in `R`, so `R` is still a
//! sound (and, because peeling is monotone under edge deletion, exact) reduction of
//! `G′`. Edge *insertions* can revive reduced-away vertices — their colorful degrees
//! and supports only grow — so they always invalidate, even between two vertices the
//! pipeline had peeled.
//!
//! *Spliced reduced graphs.* Reductions are componentwise: a vertex's peel status
//! depends only on its connected component. A component of `G′` without any touched
//! vertex is byte-identical to a component of the pre-update graph, so its slice of
//! the old reduced graph is exactly what a from-scratch pipeline would produce for
//! it; the dirty components get a genuine pipeline re-run. (The spliced graph may
//! color dirty components differently than a global run would, so it need not be
//! *edge-identical* to a from-scratch reduction — but both are sound reductions, and
//! the differential harness in `tests/dynamic_consistency.rs` pins the final
//! solve/enumerate answers, not the intermediate graphs.)
//!
//! *Per-component result caches.* The cache key **is** the component's content, so a
//! hit replays the exact answer of an identical subproblem; maximum fair cliques and
//! maximal-fair-clique sets of a component depend on nothing else. (For the weak
//! model the resolved δ grows with the global vertex count, but any δ at least the
//! component size is equivalent, so cached weak results survive vertex-space growth.)
//!
//! ## What incremental buys
//!
//! A commit touching one component re-reduces and re-searches only that component;
//! everything else is spliced and replayed from cache. A commit whose removals land
//! entirely outside the reduced graph keeps the reduction wholesale —
//! [`Solution::reduction_cache_hit`] stays `true` across such commits, and the
//! cache-accounting unit tests below pin exactly that. `cargo bench -p rfc-bench
//! --bench dynamic` measures commit+solve against a full [`RfcSolver::new`](crate::solver::RfcSolver::new) rebuild
//! across churn rates (`BENCH_dynamic.json`).
//!
//! Unlike [`RfcSolver`](crate::solver::RfcSolver), the dynamic solver takes `&mut self` on queries (its caches
//! are plain maps, not lock-protected): shard one solver per thread, or wrap it in a
//! mutex, for concurrent serving (the `rfc-serve` daemon does the latter — the type
//! is `Send`, so a `Mutex<DynamicRfcSolver>` is shareable across connection threads,
//! and the per-component result caches then act as a cross-client query cache).
//!
//! Two serving-oriented controls live here as well:
//!
//! * **Bounded caches** — [`set_cache_capacity`](DynamicRfcSolver::set_cache_capacity)
//!   puts an LRU bound on the per-component result caches (unbounded by default),
//!   and [`cache_stats`](DynamicRfcSolver::cache_stats) reports hit/miss/eviction
//!   counters for a daemon `stats` endpoint.
//! * **Component sharding** — [`solve_shard`](DynamicRfcSolver::solve_shard) /
//!   [`enumerate_shard`](DynamicRfcSolver::enumerate_shard) restrict a query to the
//!   components a [`Shard`] owns (`component_index % shard.count() == shard.index()`),
//!   so N worker processes holding replicas of the same committed graph partition the
//!   work deterministically and a parent can merge their per-shard answers.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rfc_graph::coloring::greedy_coloring;
use rfc_graph::components::{components_of_subset, connected_components};
use rfc_graph::delta::{DeltaError, GraphDelta, UpdateOp};
use rfc_graph::subgraph::{induced_subgraph, vertex_filtered_subgraph};
use rfc_graph::{Attribute, AttributedGraph, GraphBuilder, VertexId};

use crate::cache::{CacheStats, LruCache};
use crate::enumerate::{
    enumerate_one_component, CliqueSink, EnumOutcome, EnumProblem, EnumQuery, EnumStats,
    EnumTermination, SinkFlow,
};
use crate::heuristic::heur_rfc;
use crate::problem::{FairClique, FairCliqueParams, FairnessModel};
use crate::reduction::{apply_reductions, apply_reductions_controlled, ReductionConfig};
use crate::search::control::{SearchControl, StopReason};
use crate::search::parallel::SharedIncumbent;
use crate::search::{branch_and_bound, SearchConfig, SearchStats, ThreadCount};
use crate::solver::{Objective, Query, ReducedEntry, Solution, SolveError, Termination};

/// What one [`DynamicRfcSolver::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Number of update operations folded into this commit.
    pub ops: usize,
    /// Number of distinct vertices the batch touched (the invalidation frontier).
    pub changed_vertices: usize,
    /// Cached reduced graphs kept wholesale (the batch provably could not change
    /// them; their next query still reports `reduction_cache_hit = true`).
    pub reductions_kept: usize,
    /// Cached reduced graphs marked stale (they will be spliced — dirty components
    /// re-reduced, clean components reused — on their next query).
    pub reductions_invalidated: usize,
    /// Vertices of the committed graph.
    pub num_vertices: usize,
    /// Edges of the committed graph.
    pub num_edges: usize,
}

/// One shard of a component-partitioned query: of the reduced graph's component
/// list, a [`Shard`] owns the components whose index `i` satisfies
/// `i % count == index`. Replica workers that committed the same update stream build
/// identical component lists, so the partition is deterministic across processes;
/// components are independent subproblems, so the global answer is the merge of the
/// per-shard answers (largest clique wins for `solve`, stream concatenation for
/// `enumerate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Shard `index` of `count` total. Returns `None` unless
    /// `index < count` and `count >= 1`.
    pub fn new(index: usize, count: usize) -> Option<Shard> {
        (count >= 1 && index < count).then_some(Shard { index, count })
    }

    /// The trivial shard owning every component.
    pub fn full() -> Shard {
        Shard { index: 0, count: 1 }
    }

    /// This shard's index in `0..count`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this shard owns component `i`.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::full()
    }
}

/// Aggregated per-component result-cache counters across every
/// `(k, reduction-config)` entry of a [`DynamicRfcSolver`] — what a daemon `stats`
/// endpoint reports. See [`DynamicRfcSolver::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynCacheStats {
    /// Counters of the solve-result caches.
    pub solve: CacheStats,
    /// Counters of the enumeration-result caches.
    pub enumerate: CacheStats,
}

/// The canonical content of one connected component of a reduced graph: attributes
/// and edges relabeled by rank in the component's sorted vertex list. Two components
/// with equal canonical content are the same subproblem, so this is the key of the
/// per-component result caches.
#[derive(Debug, PartialEq, Eq, Hash)]
struct CanonicalComponent {
    /// Attribute of each rank.
    attrs: Vec<Attribute>,
    /// Edges as rank pairs (`u < v`), sorted.
    edges: Vec<(u32, u32)>,
}

/// One eligible component of the current reduced graph.
#[derive(Debug, Clone)]
struct DynComponent {
    /// The component's vertices, sorted by id; `vertices[rank]` maps a canonical
    /// rank back to a graph vertex.
    vertices: Vec<VertexId>,
    /// The content key shared with the result caches.
    canon: Arc<CanonicalComponent>,
}

/// Cache key of a per-component solve result: fairness model, pool capacity
/// (1 = maximum objective, n = top-n), component content.
type SolveKey = (FairnessModel, usize, Arc<CanonicalComponent>);
/// Cache key of a per-component enumeration result: model, effective minimum size,
/// component content.
type EnumKey = (FairnessModel, usize, Arc<CanonicalComponent>);
/// Reduced-graph cache key, identical to [`RfcSolver`](crate::solver::RfcSolver)'s.
type EntryKey = (usize, ReductionConfig);

/// Where a reduced-graph cache entry stands relative to the committed graph.
#[derive(Debug)]
enum EntryState {
    /// `reduced` is a sound reduction of the committed graph and `components` are
    /// its eligible connected components.
    Current {
        reduced: Arc<ReducedEntry>,
        components: Arc<Vec<DynComponent>>,
    },
    /// One or more commits landed inside the reduced graph; `old` is the last sound
    /// reduction and `changed` accumulates every vertex touched since. The entry is
    /// spliced lazily on its next use.
    Stale {
        old: Arc<ReducedEntry>,
        changed: BTreeSet<VertexId>,
    },
}

/// A reduced graph plus the per-component result caches that live and die with it.
#[derive(Debug)]
struct DynEntry {
    state: EntryState,
    /// Per-component top-`capacity` fair cliques (canonical ranks, largest first;
    /// empty = no fair clique in the component). LRU-bounded when the owner set a
    /// cache capacity.
    solve_cache: LruCache<SolveKey, Arc<Vec<Vec<u32>>>>,
    /// Per-component maximal fair cliques (canonical ranks, deterministic
    /// enumeration order). Same bound.
    enum_cache: LruCache<EnumKey, Arc<Vec<Vec<u32>>>>,
}

/// An incremental maximum-fair-clique solver over a mutable graph (see the [module
/// docs](self) for the cache architecture and its soundness argument).
///
/// ```
/// use rfc_core::dynamic::DynamicRfcSolver;
/// use rfc_core::prelude::*;
/// use rfc_graph::fixtures;
///
/// let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
/// let query = Query::new(FairnessModel::Relative { k: 3, delta: 1 });
/// assert_eq!(solver.solve(&query).unwrap().best().unwrap().size(), 7);
///
/// // Delete a vertex of the planted clique and re-solve incrementally; the answer
/// // always equals a from-scratch solve of the updated graph.
/// solver.remove_vertex(14).unwrap();
/// let outcome = solver.commit();
/// assert_eq!(outcome.ops, 1);
/// let incremental = solver.solve(&query).unwrap();
/// let scratch = RfcSolver::new(solver.graph().clone()).solve(&query).unwrap();
/// assert_eq!(
///     incremental.best().map(|c| c.size()),
///     scratch.best().map(|c| c.size()),
/// );
/// ```
#[derive(Debug)]
pub struct DynamicRfcSolver {
    /// The committed graph every query answers against.
    graph: AttributedGraph,
    /// Colors of a greedy coloring of the committed graph (O(1) infeasibility gate).
    num_colors: usize,
    /// Updates buffered since the last commit (seeded with the persistent
    /// tombstones, so removed vertex ids stay reserved across commits until
    /// restored).
    delta: GraphDelta,
    /// Operations buffered since the last commit.
    pending_ops: usize,
    /// Ids removed in some committed batch and not (yet) restored.
    removed_vertices: BTreeSet<VertexId>,
    /// Reduced graphs + result caches per `(k, reduction config)`.
    entries: HashMap<EntryKey, DynEntry>,
    /// LRU bound applied to each entry's result caches (`None` = unbounded).
    cache_capacity: Option<usize>,
    /// Completed commits.
    commits: u64,
    /// Reduction pipeline executions (full builds and dirty-component splices).
    preprocessing_runs: usize,
}

impl DynamicRfcSolver {
    /// Builds a dynamic solver over an initial graph.
    pub fn new(graph: AttributedGraph) -> Self {
        let num_colors = greedy_coloring(&graph).num_colors;
        Self {
            graph,
            num_colors,
            delta: GraphDelta::new(),
            pending_ops: 0,
            removed_vertices: BTreeSet::new(),
            entries: HashMap::new(),
            cache_capacity: None,
            commits: 0,
            preprocessing_runs: 0,
        }
    }

    /// Builder-style variant of [`set_cache_capacity`](Self::set_cache_capacity).
    pub fn with_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.set_cache_capacity(capacity);
        self
    }

    /// Bounds each per-component result cache to at most `capacity` entries with
    /// least-recently-used eviction (`None` = unbounded, the default). Shrinking the
    /// bound evicts immediately. A long-lived daemon over a churny graph should set
    /// this: every distinct component content ever solved otherwise stays resident
    /// forever.
    pub fn set_cache_capacity(&mut self, capacity: Option<usize>) {
        self.cache_capacity = capacity;
        for entry in self.entries.values_mut() {
            entry.solve_cache.set_capacity(capacity);
            entry.enum_cache.set_capacity(capacity);
        }
    }

    /// The current per-cache entry bound (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    /// Aggregated hit/miss/eviction counters of the per-component result caches,
    /// summed across every `(k, reduction-config)` entry.
    pub fn cache_stats(&self) -> DynCacheStats {
        let mut out = DynCacheStats::default();
        for entry in self.entries.values() {
            out.solve.absorb(&entry.solve_cache.stats());
            out.enumerate.absorb(&entry.enum_cache.stats());
        }
        out
    }

    /// The committed graph. Buffered (uncommitted) updates are not visible here or
    /// to any query until [`commit`](DynamicRfcSolver::commit).
    pub fn graph(&self) -> &AttributedGraph {
        &self.graph
    }

    /// Colors of the committed graph's greedy coloring (an upper bound on any clique).
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Updates buffered since the last commit.
    pub fn pending_ops(&self) -> usize {
        self.pending_ops
    }

    /// Completed commits so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Reduction pipeline executions so far — full builds plus dirty-component
    /// splices; commits that keep a reduction wholesale don't add to this.
    pub fn preprocessing_runs(&self) -> usize {
        self.preprocessing_runs
    }

    /// Buffers the insertion of edge `(u, v)`.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        self.delta.insert_edge(&self.graph, u, v)?;
        self.pending_ops += 1;
        Ok(())
    }

    /// Buffers the removal of edge `(u, v)`.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        self.delta.remove_edge(&self.graph, u, v)?;
        self.pending_ops += 1;
        Ok(())
    }

    /// Buffers the insertion of a new vertex and returns its id.
    pub fn insert_vertex(&mut self, attr: Attribute) -> VertexId {
        let id = self.delta.insert_vertex(&self.graph, attr);
        self.pending_ops += 1;
        id
    }

    /// Buffers the re-insertion of a previously removed vertex id.
    pub fn restore_vertex(&mut self, v: VertexId, attr: Attribute) -> Result<(), DeltaError> {
        self.delta.restore_vertex(&self.graph, v, attr)?;
        self.pending_ops += 1;
        Ok(())
    }

    /// Buffers the removal of a vertex (and all its incident edges).
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<(), DeltaError> {
        self.delta.remove_vertex(&self.graph, v)?;
        self.pending_ops += 1;
        Ok(())
    }

    /// Applies one [`UpdateOp`] from an update stream. [`UpdateOp::Commit`] commits
    /// the buffered batch and returns its [`CommitOutcome`]; graph ops buffer and
    /// return `None`.
    pub fn apply_op(&mut self, op: &UpdateOp) -> Result<Option<CommitOutcome>, DeltaError> {
        if *op == UpdateOp::Commit {
            return Ok(Some(self.commit()));
        }
        self.delta.apply_op(&self.graph, op)?;
        self.pending_ops += 1;
        Ok(None)
    }

    /// Folds the buffered updates into the committed graph and invalidates only what
    /// the batch can affect (see the [module docs](self) for the rules). Cheap when
    /// the batch is empty or cancels out.
    pub fn commit(&mut self) -> CommitOutcome {
        let commit_span = rfc_obs::trace::span("commit");
        let ops = self.pending_ops;
        self.pending_ops = 0;
        self.removed_vertices = self.delta.tombstones();
        let delta = std::mem::replace(
            &mut self.delta,
            GraphDelta::with_tombstones(self.removed_vertices.clone()),
        );
        self.commits += 1;
        let changed = delta.changed_vertices();
        if delta.is_empty() {
            // No net structural change: every entry keeps its current standing —
            // entries left stale by an earlier commit stay stale (and still count
            // as invalidated, since their next query will splice).
            let kept = self
                .entries
                .values()
                .filter(|e| matches!(e.state, EntryState::Current { .. }))
                .count();
            let outcome = CommitOutcome {
                ops,
                changed_vertices: changed.len(),
                reductions_kept: kept,
                reductions_invalidated: self.entries.len() - kept,
                num_vertices: self.graph.num_vertices(),
                num_edges: self.graph.num_edges(),
            };
            flush_commit_metrics(commit_span, &outcome);
            return outcome;
        }
        let new_graph = delta.apply(&self.graph);
        let refresh_vertex_space = delta.changes_vertex_space();
        let mut kept = 0usize;
        let mut invalidated = 0usize;
        for entry in self.entries.values_mut() {
            match &mut entry.state {
                EntryState::Current {
                    reduced,
                    components: _,
                } => {
                    // Kept iff the batch inserts nothing and removes nothing that
                    // survives in R: then R ⊆ G′ ⊆ G and R stays a sound reduction.
                    let keepable = !delta.has_edge_insertions()
                        && delta
                            .dropped_edges()
                            .all(|(u, v)| !reduced.graph.has_edge(u, v));
                    if keepable {
                        kept += 1;
                        if refresh_vertex_space {
                            // Same edges, but the vertex space grew or attributes
                            // changed (all on R-isolated vertices): re-host them.
                            let mut b =
                                GraphBuilder::with_attributes(new_graph.attributes().to_vec());
                            b.add_edges(reduced.graph.edge_list().iter().copied());
                            let graph = b.build().expect("kept reduced edges stay in range");
                            *reduced = Arc::new(ReducedEntry {
                                graph,
                                stats: reduced.stats.clone(),
                            });
                        }
                    } else {
                        invalidated += 1;
                        let old = Arc::clone(reduced);
                        entry.state = EntryState::Stale {
                            old,
                            changed: changed.iter().copied().collect(),
                        };
                    }
                }
                EntryState::Stale { changed: acc, .. } => {
                    invalidated += 1;
                    acc.extend(changed.iter().copied());
                }
            }
        }
        self.graph = new_graph;
        self.num_colors = greedy_coloring(&self.graph).num_colors;
        let outcome = CommitOutcome {
            ops,
            changed_vertices: changed.len(),
            reductions_kept: kept,
            reductions_invalidated: invalidated,
            num_vertices: self.graph.num_vertices(),
            num_edges: self.graph.num_edges(),
        };
        flush_commit_metrics(commit_span, &outcome);
        outcome
    }

    /// Answers one query against the committed graph, re-searching only components
    /// whose content changed since they were last solved. Accepts exactly the same
    /// [`Query`] shapes as [`RfcSolver::solve`](crate::solver::RfcSolver::solve)
    /// (all fairness models, maximum and top-k objectives, budgets, cancellation);
    /// [`Solution::reduction_cache_hit`] is `true` iff the reduced graph was reused
    /// without any recomputation or splicing.
    ///
    /// Budgets and cancellation only gate *fresh* search work: a query whose
    /// components are all answered from cache reports [`Termination::Optimal`] even
    /// under an exhausted budget or a pre-cancelled token, because the cached result
    /// is exact and no budgeted work ran. Components whose search was cut short are
    /// never cached.
    pub fn solve(&mut self, query: &Query) -> Result<Solution, SolveError> {
        self.solve_shard(query, Shard::full())
    }

    /// Like [`solve`](Self::solve), but restricted to the components `shard` owns.
    ///
    /// [`Termination::Infeasible`] then means "no fair clique *in this shard's
    /// components*" — the parent merging per-shard answers downgrades it to a global
    /// verdict only when every shard is infeasible. Per-component cache hits and
    /// inserts touch owned components only.
    pub fn solve_shard(&mut self, query: &Query, shard: Shard) -> Result<Solution, SolveError> {
        let start = Instant::now();
        let params = self.resolve(query.fairness)?;
        let capacity = match query.objective {
            Objective::Maximum => 1,
            Objective::TopK(0) => return Err(SolveError::EmptyTopK),
            Objective::TopK(n) => n,
        };
        let mut stats = SearchStats::default();
        if params.min_size() > self.num_colors {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            return Ok(Solution {
                cliques: Vec::new(),
                termination: Termination::Infeasible,
                stats,
                reduction_cache_hit: false,
                upper_bound: Some(0),
            });
        }

        // Anchored before any fresh reduction work so `Budget.time_limit` covers the
        // whole query; cached entries and cached components stay budget-exempt (see
        // the contract above).
        let ctrl = SearchControl::new(&query.budget, query.cancel.clone());
        let key = (params.k, query.config.reductions);
        let Some(hit) = self.ensure_entry_controlled(&key, Some(&ctrl)) else {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            return Ok(Solution {
                cliques: Vec::new(),
                termination: crate::solver::stopped_termination(&ctrl),
                stats,
                reduction_cache_hit: false,
                upper_bound: None,
            });
        };
        let (reduced, components) = self.entry_snapshot(&key);
        stats.reduction = reduced.stats.clone();

        let cache_key =
            |canon: &Arc<CanonicalComponent>| (query.fairness, capacity, Arc::clone(canon));
        let mut per_comp: Vec<Option<Arc<Vec<Vec<u32>>>>> = vec![None; components.len()];
        let cache_before = {
            let entry = self.entries.get_mut(&key).expect("entry was just ensured");
            let before = entry.solve_cache.stats();
            for (i, c) in components.iter().enumerate() {
                if shard.owns(i) {
                    per_comp[i] = entry.solve_cache.get(&cache_key(&c.canon)).cloned();
                }
            }
            before
        };
        let misses: Vec<usize> = (0..components.len())
            .filter(|&i| shard.owns(i) && per_comp[i].is_none())
            .collect();

        let results = run_misses(
            &misses,
            query.config.threads,
            &ctrl,
            |i| components[i].vertices.len(),
            |i, ctrl| {
                solve_component(
                    &reduced.graph,
                    &components[i].vertices,
                    params,
                    &query.config,
                    capacity,
                    ctrl,
                )
            },
        );
        {
            let entry = self.entries.get_mut(&key).expect("entry was just ensured");
            for (i, (cliques, completed, component_stats)) in results {
                stats += &component_stats;
                let cliques = Arc::new(cliques);
                if completed {
                    entry
                        .solve_cache
                        .insert(cache_key(&components[i].canon), Arc::clone(&cliques));
                }
                per_comp[i] = Some(cliques);
            }
            flush_cache_metrics("solve", &cache_before, &entry.solve_cache.stats());
        }

        // Merge the per-component pools: all cliques, largest first, ties broken by
        // component order then pool order (deterministic for a deterministic cache).
        let mut ranked: Vec<(usize, usize, usize)> = Vec::new();
        for (ci, cell) in per_comp.iter().enumerate() {
            if let Some(cliques) = cell {
                for (qi, clique) in cliques.iter().enumerate() {
                    ranked.push((ci, qi, clique.len()));
                }
            }
        }
        ranked.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        ranked.truncate(capacity);
        let cliques: Vec<FairClique> = ranked
            .into_iter()
            .map(|(ci, qi, _)| {
                let ranks = &per_comp[ci].as_ref().expect("ranked entries exist")[qi];
                let ids: Vec<VertexId> = ranks
                    .iter()
                    .map(|&r| components[ci].vertices[r as usize])
                    .collect();
                FairClique::from_vertices(&self.graph, ids)
            })
            .collect();

        let mut termination = match ctrl.stop_reason() {
            Some(StopReason::Budget) => Termination::BudgetExhausted,
            Some(StopReason::Cancelled) => Termination::Cancelled,
            None if cliques.is_empty() => Termination::Infeasible,
            None => Termination::Optimal,
        };
        let best_size = cliques.first().map(FairClique::size).unwrap_or(0);
        let upper_bound = if termination.is_complete() {
            Some(best_size)
        } else {
            // Global colorful bound over the reduced graph — sound (if loose) for any
            // shard, and enough to certify an incumbent that meets it.
            let ub = crate::solver::colorful_upper_bound(&reduced.graph, params).max(best_size);
            if query.objective == Objective::Maximum && ub == best_size && best_size > 0 {
                termination = Termination::Optimal;
            }
            Some(ub)
        };
        stats.elapsed_micros = start.elapsed().as_micros() as u64;
        crate::solver::flush_search_metrics(&stats);
        Ok(Solution {
            cliques,
            termination,
            stats,
            reduction_cache_hit: hit,
            upper_bound,
        })
    }

    /// Streams every maximal fair clique of the committed graph into `sink`,
    /// re-enumerating only components whose content changed — everything else is
    /// replayed from the per-component cache, so after an update only the cliques
    /// intersecting the changed neighborhood cost fresh search work. Same contract
    /// as [`RfcSolver::enumerate`](crate::solver::RfcSolver::enumerate); emission
    /// order is components in discovery order with each component's deterministic
    /// enumeration order, and [`EnumStats::components_searched`] counts only the
    /// freshly enumerated components.
    pub fn enumerate(
        &mut self,
        query: &EnumQuery,
        sink: &mut dyn CliqueSink,
    ) -> Result<EnumOutcome, SolveError> {
        self.enumerate_shard(query, Shard::full(), sink)
    }

    /// Like [`enumerate`](Self::enumerate), but restricted to the components `shard`
    /// owns: the shard emits exactly the maximal fair cliques living in its
    /// components, so concatenating the streams of a full partition yields the
    /// global enumeration (cliques never span components).
    pub fn enumerate_shard(
        &mut self,
        query: &EnumQuery,
        shard: Shard,
        sink: &mut dyn CliqueSink,
    ) -> Result<EnumOutcome, SolveError> {
        let start = Instant::now();
        let params = self.resolve(query.fairness)?;
        let min_size = params.min_size().max(query.min_size);
        let mut stats = EnumStats::default();
        if min_size > self.num_colors {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            return Ok(EnumOutcome {
                emitted: 0,
                termination: EnumTermination::Complete,
                stats,
                reduction_cache_hit: false,
            });
        }

        // Same anchoring as `solve_shard`: the clock starts before fresh reduction
        // work, while cache-served entries stay budget-exempt.
        let ctrl = SearchControl::new(&query.budget, query.cancel.clone());
        let key = (params.k, query.reductions);
        let Some(hit) = self.ensure_entry_controlled(&key, Some(&ctrl)) else {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            return Ok(EnumOutcome {
                emitted: 0,
                termination: match crate::solver::stopped_termination(&ctrl) {
                    Termination::Cancelled => EnumTermination::Cancelled,
                    _ => EnumTermination::BudgetExhausted,
                },
                stats,
                reduction_cache_hit: false,
            });
        };
        let (reduced, components) = self.entry_snapshot(&key);
        stats.reduction = reduced.stats.clone();

        // Sharding partitions the raw component index space (stable across shards);
        // the eligibility filter then applies within the owned set.
        let eligible: Vec<usize> = (0..components.len())
            .filter(|&i| shard.owns(i) && components[i].vertices.len() >= min_size)
            .collect();
        let cache_key =
            |canon: &Arc<CanonicalComponent>| (query.fairness, min_size, Arc::clone(canon));
        let mut per_comp: Vec<Option<Arc<Vec<Vec<u32>>>>> = vec![None; eligible.len()];
        let cache_before = {
            let entry = self.entries.get_mut(&key).expect("entry was just ensured");
            let before = entry.enum_cache.stats();
            for (slot, &i) in eligible.iter().enumerate() {
                per_comp[slot] = entry
                    .enum_cache
                    .get(&cache_key(&components[i].canon))
                    .cloned();
            }
            before
        };
        let misses: Vec<usize> = (0..eligible.len())
            .filter(|&slot| per_comp[slot].is_none())
            .collect();

        let problem = EnumProblem {
            model: query.fairness,
            params,
            min_size,
        };
        let results = run_misses(
            &misses,
            query.threads,
            &ctrl,
            |slot| components[eligible[slot]].vertices.len(),
            |slot, ctrl| {
                enumerate_component(
                    &reduced.graph,
                    &components[eligible[slot]].vertices,
                    problem,
                    ctrl,
                )
            },
        );
        {
            let entry = self.entries.get_mut(&key).expect("entry was just ensured");
            for (slot, (cliques, completed, component_stats)) in results {
                stats += &component_stats;
                let cliques = Arc::new(cliques);
                if completed {
                    entry.enum_cache.insert(
                        cache_key(&components[eligible[slot]].canon),
                        Arc::clone(&cliques),
                    );
                }
                per_comp[slot] = Some(cliques);
            }
            flush_cache_metrics("enumerate", &cache_before, &entry.enum_cache.stats());
        }

        // Emission: components in discovery order; cached components replay their
        // stored order, fresh ones their deterministic enumeration order.
        let mut emitted = 0u64;
        let mut sink_stopped = false;
        'emission: for (slot, &ci) in eligible.iter().enumerate() {
            let Some(cliques) = &per_comp[slot] else {
                continue; // never reached before a budget/cancel stop
            };
            for ranks in cliques.iter() {
                let ids: Vec<VertexId> = ranks
                    .iter()
                    .map(|&r| components[ci].vertices[r as usize])
                    .collect();
                emitted += 1;
                if sink.emit(FairClique::from_vertices(&self.graph, ids)) == SinkFlow::Stop {
                    sink_stopped = true;
                    break 'emission;
                }
            }
        }

        let termination = match ctrl.stop_reason() {
            Some(StopReason::Budget) => EnumTermination::BudgetExhausted,
            Some(StopReason::Cancelled) => EnumTermination::Cancelled,
            None if sink_stopped => EnumTermination::SinkStopped,
            None => EnumTermination::Complete,
        };
        stats.elapsed_micros = start.elapsed().as_micros() as u64;
        Ok(EnumOutcome {
            emitted,
            termination,
            stats,
            reduction_cache_hit: hit,
        })
    }

    /// Validates and resolves a fairness model against the committed graph.
    fn resolve(&self, fairness: FairnessModel) -> Result<FairCliqueParams, SolveError> {
        fairness
            .resolve(self.graph.num_vertices())
            .map_err(SolveError::InvalidParams)
    }

    /// Makes the entry for `key` current (computing or splicing its reduced graph
    /// as needed) and returns whether it was already current — the
    /// [`reduction_cache_hit`](Solution::reduction_cache_hit) the query reports —
    /// with the query's budget/cancel control gating the *fresh* reduction work:
    /// a current entry is always served (`Some`,
    /// untouched by the control — cached answers stay exact and budget-exempt), but
    /// a tripped control aborts before a missing entry is computed or a stale one is
    /// spliced, returning `None` with nothing cached.
    fn ensure_entry_controlled(
        &mut self,
        key: &EntryKey,
        ctrl: Option<&SearchControl>,
    ) -> Option<bool> {
        if matches!(
            self.entries.get(key).map(|e| &e.state),
            Some(EntryState::Current { .. })
        ) {
            return Some(true);
        }
        if ctrl.is_some_and(|c| c.check_now()) {
            return None;
        }
        let params = FairCliqueParams::new(key.0, 0).expect("k >= 1 was validated by the caller");
        match self.entries.remove(key) {
            None => {
                let (graph, stats) = apply_reductions_controlled(&self.graph, params, &key.1, ctrl);
                // A mid-pipeline trip caches nothing; the next query recomputes.
                let graph = graph?;
                self.preprocessing_runs += 1;
                let reduced = Arc::new(ReducedEntry { graph, stats });
                let components = Arc::new(build_components(&reduced.graph, params.min_size()));
                self.entries.insert(
                    *key,
                    DynEntry {
                        state: EntryState::Current {
                            reduced,
                            components,
                        },
                        solve_cache: LruCache::new(self.cache_capacity),
                        enum_cache: LruCache::new(self.cache_capacity),
                    },
                );
            }
            Some(DynEntry {
                state: EntryState::Stale { old, changed },
                mut solve_cache,
                mut enum_cache,
            }) => {
                let reduced = Arc::new(self.splice(&old, &changed, params, &key.1));
                self.preprocessing_runs += 1;
                let components = Arc::new(build_components(&reduced.graph, params.min_size()));
                // Drop results for components that no longer exist; identical
                // components (the clean majority) keep their entries and will hit.
                let live: std::collections::HashSet<&CanonicalComponent> =
                    components.iter().map(|c| c.canon.as_ref()).collect();
                solve_cache.retain(|k| live.contains(k.2.as_ref()));
                enum_cache.retain(|k| live.contains(k.2.as_ref()));
                self.entries.insert(
                    *key,
                    DynEntry {
                        state: EntryState::Current {
                            reduced,
                            components,
                        },
                        solve_cache,
                        enum_cache,
                    },
                );
            }
            Some(current) => {
                // Unreachable through the fast path above, but stay total.
                self.entries.insert(*key, current);
                return Some(true);
            }
        }
        Some(false)
    }

    /// Splices a stale reduced graph: re-runs the pipeline on the components of the
    /// committed graph containing a changed vertex and keeps the old reduction's
    /// slice of every clean component (sound — see the [module docs](self)).
    fn splice(
        &self,
        old: &ReducedEntry,
        changed: &BTreeSet<VertexId>,
        params: FairCliqueParams,
        config: &ReductionConfig,
    ) -> ReducedEntry {
        let comps = connected_components(&self.graph);
        let mut dirty_comp = vec![false; comps.num_components];
        for &v in changed {
            if let Some(&label) = comps.labels.get(v as usize) {
                dirty_comp[label as usize] = true;
            }
        }
        let dirty: Vec<bool> = comps
            .labels
            .iter()
            .map(|&label| dirty_comp[label as usize])
            .collect();

        let dirty_sub = vertex_filtered_subgraph(&self.graph, &dirty);
        let (reduced_dirty, dirty_stats) = apply_reductions(&dirty_sub, params, config);

        let mut edges: Vec<(VertexId, VertexId)> = old
            .graph
            .edge_list()
            .iter()
            .copied()
            .filter(|&(u, _)| !dirty[u as usize])
            .collect();
        let clean_edges = edges.len();
        let clean_vertices = (0..old.graph.num_vertices() as VertexId)
            .filter(|&v| old.graph.degree(v) > 0 && !dirty[v as usize])
            .count();
        edges.extend(reduced_dirty.edge_list().iter().copied());

        let mut builder = GraphBuilder::with_attributes(self.graph.attributes().to_vec());
        builder.add_edges(edges);
        let graph = builder.build().expect("spliced edges stay in range");

        let mut stats = dirty_stats;
        stats.original_vertices = self.graph.num_vertices();
        stats.original_edges = self.graph.num_edges();
        for stage in &mut stats.stages {
            stage.vertices += clean_vertices;
            stage.edges += clean_edges;
        }
        ReducedEntry { graph, stats }
    }

    /// Snapshots the current reduced graph and component list for `key` (refcount
    /// bumps, no copying).
    fn entry_snapshot(&self, key: &EntryKey) -> (Arc<ReducedEntry>, Arc<Vec<DynComponent>>) {
        match &self.entries.get(key).expect("entry was just ensured").state {
            EntryState::Current {
                reduced,
                components,
            } => (Arc::clone(reduced), Arc::clone(components)),
            EntryState::Stale { .. } => unreachable!("ensure_entry left a stale entry"),
        }
    }
}

/// Publishes one commit's splice decisions into the global metrics registry and onto
/// the commit's trace span.
fn flush_commit_metrics(mut span: rfc_obs::trace::Span, outcome: &CommitOutcome) {
    span.counter("ops", outcome.ops as u64);
    span.counter("changed_vertices", outcome.changed_vertices as u64);
    span.counter("reductions_kept", outcome.reductions_kept as u64);
    span.counter(
        "reductions_invalidated",
        outcome.reductions_invalidated as u64,
    );
    let m = rfc_obs::metrics::global();
    m.counter("rfc_dynamic_commits_total").inc();
    m.counter("rfc_dynamic_reductions_kept_total")
        .add(outcome.reductions_kept as u64);
    m.counter("rfc_dynamic_reductions_invalidated_total")
        .add(outcome.reductions_invalidated as u64);
}

/// Publishes one dynamic query's per-component cache activity (the delta between two
/// [`CacheStats`] snapshots) as `rfc_dynamic_cache_*{kind=...}` counters.
fn flush_cache_metrics(kind: &str, before: &CacheStats, after: &CacheStats) {
    let m = rfc_obs::metrics::global();
    for (name, delta) in [
        ("hits", after.hits - before.hits),
        ("misses", after.misses - before.misses),
        ("evictions", after.evictions - before.evictions),
    ] {
        if delta > 0 {
            m.counter(&format!(
                "rfc_dynamic_cache_{name}_total{{kind=\"{kind}\"}}"
            ))
            .add(delta);
        }
    }
}

/// The eligible components of a reduced graph with their canonical content keys.
fn build_components(reduced: &AttributedGraph, min_size: usize) -> Vec<DynComponent> {
    let active: Vec<VertexId> = reduced
        .vertices()
        .filter(|&v| reduced.degree(v) + 1 >= min_size)
        .collect();
    let mut rank = vec![u32::MAX; reduced.num_vertices()];
    components_of_subset(reduced, &active)
        .into_iter()
        .filter(|component| component.len() >= min_size)
        .map(|vertices| {
            for (i, &v) in vertices.iter().enumerate() {
                rank[v as usize] = i as u32;
            }
            let attrs: Vec<Attribute> = vertices.iter().map(|&v| reduced.attribute(v)).collect();
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for &v in &vertices {
                for &w in reduced.neighbors(v) {
                    // Neighbors outside the active set keep rank MAX; active
                    // neighbors are in this component (components are closed).
                    if w > v && rank[w as usize] != u32::MAX {
                        edges.push((rank[v as usize], rank[w as usize]));
                    }
                }
            }
            edges.sort_unstable();
            DynComponent {
                vertices,
                canon: Arc::new(CanonicalComponent { attrs, edges }),
            }
        })
        .collect()
}

/// Runs `work` on every index in `misses`, sequentially or across scoped worker
/// threads, honoring the shared [`SearchControl`]. Serial runs process misses in
/// order (deterministic); parallel runs dispatch the largest component first.
fn run_misses<R: Send>(
    misses: &[usize],
    threads: ThreadCount,
    ctrl: &SearchControl,
    size_of: impl Fn(usize) -> usize,
    work: impl Fn(usize, &SearchControl) -> R + Sync,
) -> Vec<(usize, R)> {
    let workers = threads.resolve().min(misses.len());
    if workers <= 1 {
        return misses
            .iter()
            .take_while(|_| !ctrl.stopped())
            .map(|&i| (i, work(i, ctrl)))
            .collect();
    }
    let mut order: Vec<usize> = misses.to_vec();
    order.sort_by(|&a, &b| size_of(b).cmp(&size_of(a)).then(a.cmp(&b)));
    let cursor = AtomicUsize::new(0);
    let work = &work;
    let order = &order;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        if ctrl.stopped() {
                            break;
                        }
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = order.get(slot) else {
                            break;
                        };
                        local.push((i, work(i, ctrl)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("dynamic worker panicked"))
            .collect()
    })
}

/// Exact search of one component: heuristic warm start plus branch-and-bound over
/// the component's induced subgraph. Returns the pool's cliques in canonical ranks
/// (the induced subgraph of a sorted component *is* the canonical relabeling),
/// whether the search ran to completion, and its counters.
fn solve_component(
    reduced: &AttributedGraph,
    component: &[VertexId],
    params: FairCliqueParams,
    config: &SearchConfig,
    capacity: usize,
    ctrl: &SearchControl,
) -> (Vec<Vec<u32>>, bool, SearchStats) {
    let sub = induced_subgraph(reduced, component);
    let mut stats = SearchStats::default();
    let mut warm = None;
    if config.use_heuristic {
        let outcome = heur_rfc(&sub.graph, params, &config.heuristic);
        stats.heuristic_size = outcome.best.as_ref().map(|c| c.size());
        warm = outcome.best.map(|c| c.vertices);
    }
    let pool = SharedIncumbent::with_capacity(capacity, warm);
    let mut component_config = config.clone();
    component_config.threads = ThreadCount::Serial;
    stats += &branch_and_bound(&sub.graph, params, &component_config, &pool, ctrl);
    let completed = !ctrl.stopped();
    (pool.into_cliques(), completed, stats)
}

/// Full maximal-fair-clique enumeration of one component, collected as canonical
/// rank cliques (deterministic order), plus whether it ran to completion.
fn enumerate_component(
    reduced: &AttributedGraph,
    component: &[VertexId],
    problem: EnumProblem,
    ctrl: &SearchControl,
) -> (Vec<Vec<u32>>, bool, EnumStats) {
    let mut collected: Vec<Vec<u32>> = Vec::new();
    let mut emit = |vertices: Vec<VertexId>| {
        let ranks: Vec<u32> = vertices
            .iter()
            .map(|v| {
                component
                    .binary_search(v)
                    .expect("emitted vertices lie in the component") as u32
            })
            .collect();
        collected.push(ranks);
        SinkFlow::Continue
    };
    let (stats, _sink_stopped) =
        enumerate_one_component(reduced, component, problem, ctrl, &mut emit);
    let completed = !ctrl.stopped();
    (collected, completed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::CollectSink;
    use crate::solver::{Budget, CancelToken, RfcSolver};
    use crate::verify;
    use rfc_graph::fixtures;

    fn serial_query(fairness: FairnessModel) -> Query {
        Query::new(fairness).with_config(SearchConfig::default().with_threads(ThreadCount::Serial))
    }

    /// Sorted vertex sets of everything a solver enumerates.
    fn enumerate_sets_scratch(graph: &AttributedGraph, model: FairnessModel) -> Vec<Vec<VertexId>> {
        let solver = RfcSolver::new(graph.clone());
        let mut sink = CollectSink::new();
        solver
            .enumerate(
                &EnumQuery::new(model).with_threads(ThreadCount::Serial),
                &mut sink,
            )
            .unwrap();
        let mut sets: Vec<Vec<VertexId>> = sink
            .into_cliques()
            .into_iter()
            .map(|c| c.vertices)
            .collect();
        sets.sort();
        sets
    }

    fn enumerate_sets_dynamic(
        solver: &mut DynamicRfcSolver,
        model: FairnessModel,
    ) -> Vec<Vec<VertexId>> {
        let mut sink = CollectSink::new();
        solver
            .enumerate(
                &EnumQuery::new(model).with_threads(ThreadCount::Serial),
                &mut sink,
            )
            .unwrap();
        let mut sets: Vec<Vec<VertexId>> = sink
            .into_cliques()
            .into_iter()
            .map(|c| c.vertices)
            .collect();
        sets.sort();
        sets
    }

    /// Two disjoint balanced cliques (sizes 6 and 8), for component-cache tests.
    fn two_balanced_cliques() -> AttributedGraph {
        let mut b = GraphBuilder::new(14);
        for v in 0..14u32 {
            b.set_attribute(
                v,
                if v % 2 == 0 {
                    Attribute::A
                } else {
                    Attribute::B
                },
            );
        }
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        for u in 6..14u32 {
            for v in (u + 1)..14 {
                b.add_edge(u, v);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn reduction_kept_across_commits_that_miss_the_reduced_graph() {
        // Satellite: cache-invalidation accounting. For k = 3 the pipeline strips
        // the sparse left side of the Fig. 1 graph — edge (0, 1) is not in R —
        // while the planted clique (edge (6, 7)) survives.
        let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
        let query = serial_query(FairnessModel::Relative { k: 3, delta: 1 });
        let first = solver.solve(&query).unwrap();
        assert!(!first.reduction_cache_hit);
        assert_eq!(first.best().unwrap().size(), 7);
        assert!(solver.solve(&query).unwrap().reduction_cache_hit);
        assert_eq!(solver.preprocessing_runs(), 1);

        // Removals that only touch already-reduced vertices keep the reduction.
        solver.remove_edge(0, 1).unwrap();
        let outcome = solver.commit();
        assert_eq!(
            (outcome.reductions_kept, outcome.reductions_invalidated),
            (1, 0)
        );
        let kept = solver.solve(&query).unwrap();
        assert!(
            kept.reduction_cache_hit,
            "removal outside R must not invalidate"
        );
        assert_eq!(kept.best().unwrap().size(), 7);
        assert_eq!(solver.preprocessing_runs(), 1);

        // A removal inside a surviving component flips the flag…
        solver.remove_edge(6, 7).unwrap();
        let outcome = solver.commit();
        assert_eq!(
            (outcome.reductions_kept, outcome.reductions_invalidated),
            (0, 1)
        );
        let invalidated = solver.solve(&query).unwrap();
        assert!(
            !invalidated.reduction_cache_hit,
            "removal inside R must invalidate"
        );
        assert_eq!(solver.preprocessing_runs(), 2);
        assert!(solver.solve(&query).unwrap().reduction_cache_hit);

        // …and any insertion invalidates, even between reduced-away vertices
        // (insertions can revive peeled vertices).
        solver.insert_edge(0, 1).unwrap();
        solver.commit();
        assert!(!solver.solve(&query).unwrap().reduction_cache_hit);

        // A net-empty (cancelling) commit must not promote a stale entry to
        // "kept": leave the entry stale first (insertions always invalidate),
        // then cancel a batch out.
        solver.insert_edge(6, 7).unwrap();
        let staled = solver.commit();
        assert_eq!(
            (staled.reductions_kept, staled.reductions_invalidated),
            (0, 1)
        );
        solver.remove_edge(6, 7).unwrap();
        solver.insert_edge(6, 7).unwrap(); // cancels out: no net change
        let cancelled = solver.commit();
        assert_eq!(cancelled.ops, 2);
        assert_eq!(
            (cancelled.reductions_kept, cancelled.reductions_invalidated),
            (0, 1),
            "a no-op commit must keep reporting the entry as stale"
        );
        assert!(!solver.solve(&query).unwrap().reduction_cache_hit);
    }

    #[test]
    fn solve_and_enumerate_reuse_clean_components() {
        let graph = two_balanced_cliques();
        let model = FairnessModel::Relative { k: 2, delta: 1 };
        let mut solver = DynamicRfcSolver::new(graph.clone());
        let query = serial_query(model);
        let first = solver.solve(&query).unwrap();
        assert_eq!(first.stats.components_searched, 2);
        assert_eq!(first.best().unwrap().size(), 8); // the balanced 8-clique (4 a, 4 b)

        // Both components already cached: a repeat search touches none of them.
        let repeat = solver.solve(&query).unwrap();
        assert_eq!(repeat.stats.components_searched, 0);
        assert_eq!(repeat.best().unwrap().size(), first.best().unwrap().size());

        let before = enumerate_sets_dynamic(&mut solver, model);
        assert_eq!(before, enumerate_sets_scratch(&graph, model));

        // Touch only the small clique: the big component must come from cache.
        solver.remove_edge(0, 1).unwrap();
        let _ = solver.commit();
        let after = solver.solve(&query).unwrap();
        assert_eq!(
            after.stats.components_searched, 1,
            "only the dirty component may be re-searched"
        );
        let scratch = RfcSolver::new(solver.graph().clone());
        assert_eq!(
            after.best().map(|c| c.size()),
            scratch.solve(&query).unwrap().best().map(|c| c.size())
        );
        let sets = enumerate_sets_dynamic(&mut solver, model);
        assert_eq!(sets, enumerate_sets_scratch(solver.graph(), model));
    }

    #[test]
    fn dynamic_matches_scratch_for_all_models_after_updates() {
        let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
        solver.remove_vertex(14).unwrap();
        solver
            .insert_edge(0, 14)
            .expect_err("removed vertex rejects edges");
        let fresh = solver.insert_vertex(Attribute::B);
        solver.insert_edge(fresh, 6).unwrap();
        solver.insert_edge(fresh, 7).unwrap();
        solver.insert_edge(fresh, 9).unwrap();
        let _ = solver.commit();
        solver.restore_vertex(14, Attribute::A).unwrap();
        solver.insert_edge(14, fresh).unwrap();
        let _ = solver.commit();
        for model in [
            FairnessModel::Relative { k: 2, delta: 1 },
            FairnessModel::Weak { k: 2 },
            FairnessModel::Strong { k: 2 },
        ] {
            let query = serial_query(model);
            let dynamic = solver.solve(&query).unwrap();
            let scratch = RfcSolver::new(solver.graph().clone())
                .solve(&query)
                .unwrap();
            assert_eq!(
                dynamic.best().map(|c| c.size()),
                scratch.best().map(|c| c.size()),
                "{model}"
            );
            if let Some(best) = dynamic.best() {
                assert!(verify::is_fair_clique_under(
                    solver.graph(),
                    &best.vertices,
                    model
                ));
            }
            assert_eq!(
                enumerate_sets_dynamic(&mut solver, model),
                enumerate_sets_scratch(solver.graph(), model),
                "{model}"
            );
        }
    }

    #[test]
    fn top_k_objective_is_served_incrementally() {
        let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
        let query = serial_query(FairnessModel::Relative { k: 3, delta: 1 })
            .with_objective(Objective::TopK(3));
        let dynamic = solver.solve(&query).unwrap();
        let scratch = RfcSolver::new(fixtures::fig1_graph())
            .solve(&query)
            .unwrap();
        let sizes = |s: &Solution| s.cliques.iter().map(|c| c.size()).collect::<Vec<_>>();
        assert_eq!(sizes(&dynamic), sizes(&scratch));
        assert_eq!(sizes(&dynamic), vec![7, 7, 7]);
        let mut sets: Vec<_> = dynamic.cliques.iter().map(|c| c.vertices.clone()).collect();
        sets.dedup();
        assert_eq!(sets.len(), 3, "top-k cliques must be distinct");
        assert!(matches!(
            solver.solve(&query.clone().with_objective(Objective::TopK(0))),
            Err(SolveError::EmptyTopK)
        ));
    }

    #[test]
    fn budget_exhaustion_is_not_cached_and_does_not_leak() {
        let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
        let model = FairnessModel::Relative { k: 3, delta: 1 };
        // Heuristic off: otherwise the warm start meets the colorful bound on Fig.1
        // and the node-starved solve is certified Optimal instead of exhausted.
        let mut no_heur = SearchConfig::default().with_threads(ThreadCount::Serial);
        no_heur.use_heuristic = false;
        let starved = Query::new(model)
            .with_config(no_heur)
            .with_budget(Budget::unlimited().with_node_limit(0));
        let partial = solver.solve(&starved).unwrap();
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert_eq!(partial.optimality_gap(), Some(7));
        // The partial component result must not have been cached: a later
        // unlimited solve re-searches and finds the exact optimum.
        let full = solver.solve(&serial_query(model)).unwrap();
        assert_eq!(full.termination, Termination::Optimal);
        assert_eq!(full.best().unwrap().size(), 7);
        assert!(full.stats.components_searched >= 1);

        // A query whose components are all cached is answered exactly even under a
        // pre-cancelled token: no budgeted work ran, so the result is Optimal.
        let token = CancelToken::new();
        token.cancel();
        let cached = solver
            .solve(&serial_query(model).with_cancel(token.clone()))
            .unwrap();
        assert_eq!(cached.termination, Termination::Optimal);
        assert_eq!(cached.best().unwrap().size(), 7);
        // On a fresh solver the same token stops the search before any component
        // completes, and nothing poisons the follow-up query.
        let mut fresh = DynamicRfcSolver::new(fixtures::fig1_graph());
        let cancelled = fresh
            .solve(&serial_query(model).with_cancel(token))
            .unwrap();
        assert_eq!(cancelled.termination, Termination::Cancelled);
        let again = fresh.solve(&serial_query(model)).unwrap();
        assert_eq!(again.termination, Termination::Optimal);
        assert_eq!(again.best().unwrap().size(), 7);
    }

    #[test]
    fn commit_outcome_reports_the_batch() {
        let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
        assert_eq!(solver.pending_ops(), 0);
        let noop = solver.commit();
        assert_eq!((noop.ops, noop.changed_vertices), (0, 0));
        solver.insert_edge(0, 14).unwrap();
        solver.remove_edge(0, 14).unwrap(); // cancels out
        solver.remove_vertex(5).unwrap();
        assert_eq!(solver.pending_ops(), 3);
        let outcome = solver.commit();
        assert_eq!(outcome.ops, 3);
        assert!(outcome.changed_vertices >= 2);
        assert_eq!(outcome.num_vertices, 15);
        assert_eq!(solver.pending_ops(), 0);
        assert_eq!(solver.commits(), 2);
        // Pending ops are invisible before commit.
        let mut other = DynamicRfcSolver::new(fixtures::fig1_graph());
        other.remove_vertex(14).unwrap();
        assert_eq!(other.graph().degree(14), 7);
        let _ = other.commit();
        assert_eq!(other.graph().degree(14), 0);
    }

    #[test]
    fn apply_op_streams_through_the_delta_and_commits() {
        let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
        assert_eq!(
            solver.apply_op(&UpdateOp::RemoveVertex { v: 14 }).unwrap(),
            None
        );
        let outcome = solver.apply_op(&UpdateOp::Commit).unwrap().unwrap();
        assert_eq!(outcome.ops, 1);
        assert!(solver.apply_op(&UpdateOp::RemoveVertex { v: 14 }).is_err());
    }

    #[test]
    fn emptied_graph_is_infeasible_everywhere() {
        let mut solver = DynamicRfcSolver::new(fixtures::balanced_clique(6));
        for v in 0..6 {
            solver.remove_vertex(v).unwrap();
        }
        let _ = solver.commit();
        assert_eq!(solver.graph().num_edges(), 0);
        let solution = solver
            .solve(&serial_query(FairnessModel::Relative { k: 1, delta: 1 }))
            .unwrap();
        assert_eq!(solution.termination, Termination::Infeasible);
        let mut sink = CollectSink::new();
        let outcome = solver
            .enumerate(
                &EnumQuery::new(FairnessModel::Relative { k: 1, delta: 1 }),
                &mut sink,
            )
            .unwrap();
        assert_eq!(outcome.emitted, 0);
        assert_eq!(outcome.termination, EnumTermination::Complete);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let mut solver = DynamicRfcSolver::new(fixtures::fig1_graph());
        assert!(matches!(
            solver.solve(&Query::new(FairnessModel::Weak { k: 0 })),
            Err(SolveError::InvalidParams(_))
        ));
        let mut sink = CollectSink::new();
        assert!(solver
            .enumerate(&EnumQuery::new(FairnessModel::Weak { k: 0 }), &mut sink)
            .is_err());
    }

    #[test]
    fn shard_construction_and_ownership() {
        assert!(Shard::new(0, 0).is_none());
        assert!(Shard::new(2, 2).is_none());
        let s = Shard::new(1, 3).unwrap();
        assert_eq!((s.index(), s.count()), (1, 3));
        let owned: Vec<usize> = (0..9).filter(|&i| s.owns(i)).collect();
        assert_eq!(owned, vec![1, 4, 7]);
        assert!(Shard::full().owns(5));
        assert_eq!(Shard::default(), Shard::full());
        // Every component index is owned by exactly one shard of a partition.
        for i in 0..20 {
            let owners = (0..4)
                .filter(|&s| Shard::new(s, 4).unwrap().owns(i))
                .count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn sharded_solves_merge_to_the_global_answer() {
        let model = FairnessModel::Relative { k: 2, delta: 1 };
        let query = serial_query(model);
        let global = DynamicRfcSolver::new(two_balanced_cliques())
            .solve(&query)
            .unwrap();
        assert_eq!(global.best().unwrap().size(), 8);

        // Two replica solvers, one shard each: exactly one sees each component,
        // and the best across shards is the global best.
        let mut best_sizes = Vec::new();
        let mut total_components = 0;
        for index in 0..2 {
            let mut replica = DynamicRfcSolver::new(two_balanced_cliques());
            let shard = Shard::new(index, 2).unwrap();
            let solution = replica.solve_shard(&query, shard).unwrap();
            total_components += solution.stats.components_searched;
            if let Some(best) = solution.best() {
                assert!(verify::is_fair_clique_under(
                    replica.graph(),
                    &best.vertices,
                    model
                ));
                best_sizes.push(best.size());
            }
        }
        assert_eq!(total_components, 2, "shards partition the components");
        assert_eq!(best_sizes.iter().max(), Some(&8));

        // Sharded enumeration concatenates to the global stream.
        let mut merged: Vec<Vec<VertexId>> = Vec::new();
        for index in 0..3 {
            let mut replica = DynamicRfcSolver::new(two_balanced_cliques());
            let shard = Shard::new(index, 3).unwrap();
            let mut sink = CollectSink::new();
            replica
                .enumerate_shard(
                    &EnumQuery::new(model).with_threads(ThreadCount::Serial),
                    shard,
                    &mut sink,
                )
                .unwrap();
            merged.extend(sink.into_cliques().into_iter().map(|c| c.vertices));
        }
        merged.sort();
        assert_eq!(
            merged,
            enumerate_sets_scratch(&two_balanced_cliques(), model)
        );
    }

    #[test]
    fn cache_capacity_bounds_the_result_caches() {
        let model = FairnessModel::Relative { k: 2, delta: 1 };
        let mut solver = DynamicRfcSolver::new(two_balanced_cliques()).with_cache_capacity(Some(1));
        assert_eq!(solver.cache_capacity(), Some(1));
        let first = solver.solve(&serial_query(model)).unwrap();
        assert_eq!(first.best().unwrap().size(), 8);
        // Two components were solved but only one result fits: one eviction.
        let stats = solver.cache_stats();
        assert_eq!(stats.solve.len, 1);
        assert_eq!(stats.solve.evictions, 1);
        assert_eq!(stats.solve.misses, 2);
        // The answer stays exact regardless of what was evicted.
        let repeat = solver.solve(&serial_query(model)).unwrap();
        assert_eq!(repeat.best().unwrap().size(), 8);
        assert!(solver.cache_stats().solve.hits >= 1);

        // Unbounding and re-bounding via the setter keeps stats coherent.
        solver.set_cache_capacity(None);
        let _ = solver.solve(&serial_query(model)).unwrap();
        assert_eq!(solver.cache_stats().solve.len, 2);
        solver.set_cache_capacity(Some(1));
        assert_eq!(solver.cache_stats().solve.len, 1);
    }

    #[test]
    fn dynamic_solver_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DynamicRfcSolver>();
    }
}
