//! Fairness-aware **maximal fair clique enumeration** — the set-valued counterpart of
//! the single-answer `MaxRFC` search.
//!
//! A *maximal fair clique* under a [`FairnessModel`] is a clique that satisfies the
//! model's fairness constraint and has **no fair proper superset** that is also a
//! clique (exactly [`verify::is_maximal_fair_clique_under`](crate::verify::is_maximal_fair_clique_under)).
//! Note that this is *not* the same as "maximal clique that happens to be fair": under
//! the relative and strong models a fair clique can be maximal-fair while strictly
//! inside a larger (unfair) clique, and conversely a fair clique nested in a larger
//! fair clique is never maximal.
//!
//! ## Algorithm
//!
//! The engine runs one pivot-aware Bron–Kerbosch-style recursion per connected
//! component of the solver's cached *reduced* graph, over the dense
//! [`BitMatrix`] adjacency of the component (the same representation the
//! branch-and-bound uses), with vertices relabeled by their degeneracy rank. Each node
//! carries `(R, P, X)` — the current clique, the not-yet-branched common neighbors,
//! and the already-branched common neighbors — and `P ∪ X` is always exactly the
//! common neighborhood of `R`, so maximality is decided locally.
//!
//! Whether classic pivoting is sound depends on the fairness model:
//!
//! * When fairness is **monotone** on the component (the weak model, or a relative `δ`
//!   at least the component size, where the imbalance constraint can never bind),
//!   every fair clique extends to a fair maximal clique, so maximal fair cliques are
//!   precisely the maximal cliques with enough vertices of each attribute. The engine
//!   then runs classic Bron–Kerbosch **with pivoting** and emits a maximal clique iff
//!   it is fair.
//! * Under a **binding `δ`** (relative / strong models) pivoting is unsound: a
//!   maximal fair clique may consist entirely of neighbors of the pivot — its
//!   superset-with-the-pivot is a clique but not a *fair* one, so the classic
//!   exchange argument fails. The engine instead walks the full fairness-feasible
//!   clique lattice and emits `R` whenever it is fair and no clique drawn from
//!   `P ∪ X` extends it fairly (an explicit bitset search, typically over a tiny
//!   candidate set).
//!
//! Both modes share the fairness-aware pruning family: a branch is cut when `R ∪ P`
//! cannot reach `k` vertices of some attribute (by raw counts *and* by distinct
//! colors of a proper coloring — any clique picks pairwise-distinct colors), when the
//! committed imbalance can no longer be repaired by the remaining candidates, or when
//! `|R| + |P|` (again capped by candidate colors) cannot reach the minimum size.
//!
//! ## Streaming, budgets, parallelism
//!
//! Results stream through a [`CliqueSink`] — million-clique runs never buffer the
//! result set. The engine honors the solver's [`Budget`] / [`CancelToken`]
//! machinery: a stopped run returns a
//! non-[`Complete`](EnumTermination::Complete) outcome, and every clique emitted
//! before the stop is still a verified maximal fair clique (the emission test is
//! local, so early termination only loses cliques, it never corrupts them). With
//! [`ThreadCount::Serial`] the emission order is deterministic: components in
//! discovery order, and within a component the depth-first order of the recursion
//! over degeneracy-ranked candidates. Parallel runs fan components out to workers
//! largest-first and funnel emissions through a channel to the calling thread, so the
//! sink itself never needs locking; the emitted *set* is identical, the order is not.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use rfc_graph::bitset::{BitMatrix, Bitset};
use rfc_graph::coloring::greedy_coloring;
use rfc_graph::components::components_of_subset;
use rfc_graph::subgraph::induced_subgraph;
use rfc_graph::{Attribute, AttributeCounts, AttributedGraph, VertexId};

use crate::problem::{FairClique, FairCliqueParams, FairnessModel};
use crate::reduction::{ReductionConfig, ReductionStats};
use crate::search::control::SearchControl;
use crate::search::steal;
use crate::search::{BranchOrder, ThreadCount};
use crate::solver::{Budget, CancelToken};

/// Tells the enumeration engine whether to keep going after an emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFlow {
    /// Keep enumerating.
    Continue,
    /// Stop the enumeration: the sink has everything it wants. The clique passed to
    /// the returning [`CliqueSink::emit`] call counts as consumed.
    Stop,
}

/// A streaming consumer of maximal fair cliques.
///
/// [`RfcSolver::enumerate`](crate::solver::RfcSolver::enumerate) calls
/// [`emit`](CliqueSink::emit) once per maximal fair clique found; the sink decides
/// what to do with it (collect, count, keep the top N, serialize, …) and whether the
/// enumeration should continue. Any `FnMut(FairClique) -> SinkFlow` closure is a
/// sink.
pub trait CliqueSink {
    /// Consumes one maximal fair clique; the returned [`SinkFlow`] can stop the run.
    fn emit(&mut self, clique: FairClique) -> SinkFlow;
}

impl<F: FnMut(FairClique) -> SinkFlow> CliqueSink for F {
    fn emit(&mut self, clique: FairClique) -> SinkFlow {
        self(clique)
    }
}

/// Collects every emitted clique into a vector (in emission order).
#[derive(Debug, Default)]
pub struct CollectSink {
    cliques: Vec<FairClique>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cliques collected so far, in emission order.
    pub fn cliques(&self) -> &[FairClique] {
        &self.cliques
    }

    /// Number of cliques collected so far.
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// Consumes the sink, returning the collected cliques in emission order.
    pub fn into_cliques(self) -> Vec<FairClique> {
        self.cliques
    }
}

impl CliqueSink for CollectSink {
    fn emit(&mut self, clique: FairClique) -> SinkFlow {
        self.cliques.push(clique);
        SinkFlow::Continue
    }
}

/// Counts emitted cliques (and tracks the largest size) without storing them —
/// constant memory no matter how many cliques the graph has.
#[derive(Debug, Default)]
pub struct CountSink {
    count: u64,
    largest: usize,
}

impl CountSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cliques emitted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Size of the largest clique emitted so far (0 before the first emission).
    pub fn largest(&self) -> usize {
        self.largest
    }
}

impl CliqueSink for CountSink {
    fn emit(&mut self, clique: FairClique) -> SinkFlow {
        self.count += 1;
        self.largest = self.largest.max(clique.size());
        SinkFlow::Continue
    }
}

/// Keeps only the `n` largest cliques seen so far, in `O(n)` memory.
///
/// Ties at the cut-off size keep the earlier emission, which is deterministic under
/// [`ThreadCount::Serial`].
#[derive(Debug)]
pub struct TopNSink {
    capacity: usize,
    cliques: Vec<FairClique>,
}

impl TopNSink {
    /// A sink keeping the `n` largest cliques (`n` is clamped to at least 1).
    pub fn new(n: usize) -> Self {
        Self {
            capacity: n.max(1),
            cliques: Vec::new(),
        }
    }

    /// The current top cliques, largest first.
    pub fn cliques(&self) -> &[FairClique] {
        &self.cliques
    }

    /// Consumes the sink, returning the top cliques, largest first.
    pub fn into_cliques(self) -> Vec<FairClique> {
        self.cliques
    }
}

impl CliqueSink for TopNSink {
    fn emit(&mut self, clique: FairClique) -> SinkFlow {
        if self.cliques.len() == self.capacity
            && self
                .cliques
                .last()
                .is_some_and(|c| c.size() >= clique.size())
        {
            return SinkFlow::Continue;
        }
        let at = self.cliques.partition_point(|c| c.size() >= clique.size());
        self.cliques.insert(at, clique);
        self.cliques.truncate(self.capacity);
        SinkFlow::Continue
    }
}

/// Caps another sink at a fixed number of emissions, then stops the run — the engine
/// behind `maxfairclique enumerate --limit N`.
pub struct LimitSink<'a> {
    inner: &'a mut dyn CliqueSink,
    remaining: u64,
}

impl std::fmt::Debug for LimitSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LimitSink")
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

impl<'a> LimitSink<'a> {
    /// Wraps `inner`, forwarding at most `limit` cliques.
    pub fn new(inner: &'a mut dyn CliqueSink, limit: u64) -> Self {
        Self {
            inner,
            remaining: limit,
        }
    }

    /// How many more cliques will be forwarded before the sink stops the run.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl CliqueSink for LimitSink<'_> {
    fn emit(&mut self, clique: FairClique) -> SinkFlow {
        if self.remaining == 0 {
            return SinkFlow::Stop;
        }
        self.remaining -= 1;
        match self.inner.emit(clique) {
            SinkFlow::Stop => SinkFlow::Stop,
            SinkFlow::Continue if self.remaining == 0 => SinkFlow::Stop,
            SinkFlow::Continue => SinkFlow::Continue,
        }
    }
}

/// Writes one JSON object per clique (JSON Lines) to any [`Write`] target, treating a
/// closed pipe as a polite request to stop rather than an error.
///
/// Each line looks like
/// `{"size":7,"count_a":4,"count_b":3,"vertices":[6,7,9,10,11,12,13]}`.
/// A [`BrokenPipe`](io::ErrorKind::BrokenPipe) write error sets
/// [`pipe_closed`](JsonlSink::pipe_closed) and stops the enumeration cleanly
/// (`maxfairclique enumerate --format jsonl | head` must not panic); any other write
/// error also stops the run and is reported by [`finish`](JsonlSink::finish).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    pipe_closed: bool,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing JSON lines to `writer` (wrap large outputs in a
    /// [`BufWriter`](io::BufWriter)).
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            written: 0,
            pipe_closed: false,
            error: None,
        }
    }

    /// Number of lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether the consumer closed the pipe (a clean early exit, not an error).
    pub fn pipe_closed(&self) -> bool {
        self.pipe_closed
    }

    /// Flushes and returns the writer, or the first genuine write error (a closed
    /// pipe is not one).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        match self.writer.flush() {
            Ok(()) => Ok(self.writer),
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => Ok(self.writer),
            Err(e) => Err(e),
        }
    }

    fn record(&mut self, error: io::Error) {
        if error.kind() == io::ErrorKind::BrokenPipe {
            self.pipe_closed = true;
        } else {
            self.error = Some(error);
        }
    }
}

/// Renders the JSONL line for one clique (without the trailing newline).
pub fn clique_json(clique: &FairClique) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(56 + 8 * clique.size());
    let _ = write!(
        line,
        "{{\"size\":{},\"count_a\":{},\"count_b\":{},\"vertices\":[",
        clique.size(),
        clique.counts.a(),
        clique.counts.b()
    );
    for (i, v) in clique.vertices.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{v}");
    }
    line.push_str("]}");
    line
}

impl<W: Write> CliqueSink for JsonlSink<W> {
    fn emit(&mut self, clique: FairClique) -> SinkFlow {
        if self.pipe_closed || self.error.is_some() {
            return SinkFlow::Stop;
        }
        let mut line = clique_json(&clique);
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => {
                self.written += 1;
                SinkFlow::Continue
            }
            Err(e) => {
                self.record(e);
                SinkFlow::Stop
            }
        }
    }
}

/// One enumeration request for
/// [`RfcSolver::enumerate`](crate::solver::RfcSolver::enumerate).
#[derive(Debug, Clone, Default)]
pub struct EnumQuery {
    /// Which fairness model defines "fair" (and therefore "maximal fair").
    pub fairness: FairnessModel,
    /// Emit only cliques with at least this many vertices (`0` = no extra filter; the
    /// model's own floor of `2k` always applies). Maximality is still judged against
    /// *all* fair cliques, so this filters and prunes without changing what counts as
    /// maximal.
    pub min_size: usize,
    /// Time/node limits for the enumeration phase.
    pub budget: Budget,
    /// Optional cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Which reduction stages shrink the graph first (shares the solver's reduced
    /// graph cache with [`solve`](crate::solver::RfcSolver::solve) queries of the
    /// same `k`).
    pub reductions: ReductionConfig,
    /// How many worker threads enumerate components. [`ThreadCount::Serial`] gives
    /// the deterministic emission order documented in the [module docs](self).
    pub threads: ThreadCount,
}

impl EnumQuery {
    /// An unbudgeted, unfiltered, default-threaded query for the given model.
    pub fn new(fairness: FairnessModel) -> Self {
        Self {
            fairness,
            ..Self::default()
        }
    }

    /// Returns this query with a minimum emitted-clique size.
    pub fn with_min_size(mut self, min_size: usize) -> Self {
        self.min_size = min_size;
        self
    }

    /// Returns this query with a budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Returns this query carrying (a clone of) the given cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Returns this query with a reduction configuration.
    pub fn with_reductions(mut self, reductions: ReductionConfig) -> Self {
        self.reductions = reductions;
        self
    }

    /// Returns this query with a thread count.
    pub fn with_threads(mut self, threads: ThreadCount) -> Self {
        self.threads = threads;
        self
    }
}

/// How an enumeration run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumTermination {
    /// Every maximal fair clique (meeting the size filter) was emitted.
    Complete,
    /// The sink asked to stop (e.g. a [`LimitSink`] reached its cap): the emitted
    /// cliques are a correct but possibly incomplete subset.
    SinkStopped,
    /// The time or node budget ran out: ditto.
    BudgetExhausted,
    /// The query's [`CancelToken`] fired: ditto.
    Cancelled,
}

impl EnumTermination {
    /// Whether the run provably emitted the complete set.
    pub fn is_complete(&self) -> bool {
        matches!(self, EnumTermination::Complete)
    }
}

/// Counters describing one enumeration run.
///
/// Parallel workers accumulate their own stats which are merged with the
/// [`AddAssign`](std::ops::AddAssign) below; like the search counters, the per-branch
/// numbers of a multi-threaded run depend on scheduling and may vary between runs,
/// while [`ThreadCount::Serial`] runs are fully reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Statistics of the (possibly cached) reduction pipeline.
    pub reduction: ReductionStats,
    /// Number of recursion nodes visited.
    pub branches: u64,
    /// Branches cut because `R ∪ P` cannot reach `k` vertices of some attribute or
    /// the committed imbalance can no longer be repaired (raw attribute counts).
    pub feasibility_prunes: u64,
    /// Branches cut because `|R| + |P|` cannot reach the minimum size.
    pub bound_prunes: u64,
    /// Branches cut by the colorful refinements of the two prunes above (distinct
    /// candidate colors instead of raw counts).
    pub colorful_prunes: u64,
    /// Fair cliques that were *not* emitted because a fair extension exists (the
    /// maximality test rejected them).
    pub maximality_rejections: u64,
    /// Number of connected components enumerated.
    pub components_searched: usize,
    /// Wall-clock time of the call, in microseconds. Merging takes the larger of the
    /// two sides, so a parallel run reports real elapsed time — never the sum of its
    /// workers' clocks.
    pub elapsed_micros: u64,
    /// Total CPU busy time across all workers, in microseconds; may legitimately
    /// exceed [`elapsed_micros`](Self::elapsed_micros) on a parallel run.
    pub cpu_micros: u64,
}

impl std::ops::AddAssign<&EnumStats> for EnumStats {
    /// Merges another worker's counters into `self` (sums the branch/prune counters
    /// and the CPU busy time, takes the max of the wall-clock fields; the reduction
    /// stats keep whichever side ran a pipeline, `self`'s winning if both did).
    fn add_assign(&mut self, rhs: &EnumStats) {
        self.branches += rhs.branches;
        self.feasibility_prunes += rhs.feasibility_prunes;
        self.bound_prunes += rhs.bound_prunes;
        self.colorful_prunes += rhs.colorful_prunes;
        self.maximality_rejections += rhs.maximality_rejections;
        self.components_searched += rhs.components_searched;
        self.elapsed_micros = self.elapsed_micros.max(rhs.elapsed_micros);
        self.cpu_micros += rhs.cpu_micros;
        if self.reduction == ReductionStats::default() {
            self.reduction = rhs.reduction.clone();
        }
    }
}

/// The structured result of
/// [`RfcSolver::enumerate`](crate::solver::RfcSolver::enumerate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumOutcome {
    /// Number of cliques delivered to the sink. Every one of them is a verified
    /// maximal fair clique regardless of how the run ended.
    pub emitted: u64,
    /// Whether the emitted set is complete ([`EnumTermination::Complete`]) or the run
    /// stopped early (sink, budget, or cancellation).
    pub termination: EnumTermination,
    /// Counters for the run.
    pub stats: EnumStats,
    /// Whether this query reused a reduced graph cached by an earlier query (same `k`
    /// and reduction config).
    pub reduction_cache_hit: bool,
}

/// The resolved enumeration problem, shared by every component of one run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EnumProblem {
    /// The fairness model (native emission/extension checks).
    pub(crate) model: FairnessModel,
    /// The model resolved to relative parameters (pruning).
    pub(crate) params: FairCliqueParams,
    /// Effective minimum emitted-clique size (at least the model's `2k`).
    pub(crate) min_size: usize,
}

/// The per-component enumerator: one `(R, P, X)` recursion over the component's
/// bitset adjacency (see the [module docs](self) for the algorithm).
struct ComponentEnum<'a> {
    model: FairnessModel,
    params: FairCliqueParams,
    min_size: usize,
    /// Whether fairness is monotone on this component (classic pivoting is sound).
    pivoting: bool,
    /// `original[rank]` is the parent-graph vertex id branched at that rank.
    original: Vec<VertexId>,
    /// Adjacency over ranks.
    adj: BitMatrix,
    /// Ranks whose vertex has attribute `a`.
    attr_a: Bitset,
    /// Attribute per rank.
    attrs: Vec<Attribute>,
    /// Color per rank (proper greedy coloring of the component).
    colors: Vec<u32>,
    /// Scratch for distinct-color counting, one slot per color and attribute.
    stamp_a: Vec<u64>,
    stamp_b: Vec<u64>,
    stamp_token: u64,
    /// Current clique, as ranks.
    r: Vec<usize>,
    ctrl: &'a SearchControl,
    /// Raised (by this component or any other) once the sink asks to stop.
    sink_stop: &'a AtomicBool,
    stats: EnumStats,
}

impl<'a> ComponentEnum<'a> {
    fn new(
        reduced: &AttributedGraph,
        component: &[VertexId],
        problem: EnumProblem,
        ctrl: &'a SearchControl,
        sink_stop: &'a AtomicBool,
    ) -> Self {
        let EnumProblem {
            model,
            params,
            min_size,
        } = problem;
        let sub = induced_subgraph(reduced, component);
        let cg = &sub.graph;
        let n = cg.num_vertices();
        let order = crate::search::ordering_sequence(cg, BranchOrder::Degeneracy);
        let mut positions = vec![0usize; n];
        for (rank, &v) in order.iter().enumerate() {
            positions[v as usize] = rank;
        }
        let mut adj = BitMatrix::new(n);
        for &(u, v) in cg.edge_list() {
            adj.set_edge(positions[u as usize], positions[v as usize]);
        }
        let mut attr_a = Bitset::new(n);
        let mut attrs = vec![Attribute::B; n];
        for v in cg.vertices() {
            attrs[positions[v as usize]] = cg.attribute(v);
            if cg.attribute(v) == Attribute::A {
                attr_a.insert(positions[v as usize]);
            }
        }
        let coloring = greedy_coloring(cg);
        let mut colors = vec![0u32; n];
        for v in cg.vertices() {
            colors[positions[v as usize]] = coloring.color(v);
        }
        let original: Vec<VertexId> = order.iter().map(|&v| sub.to_original(v)).collect();
        // Fairness is monotone iff the imbalance constraint can never bind within
        // this component (the weak model resolves to δ ≥ |G| ≥ n).
        let pivoting = params.delta >= n;
        Self {
            model,
            params,
            min_size,
            pivoting,
            original,
            adj,
            attr_a,
            attrs,
            colors,
            stamp_a: vec![0; coloring.num_colors.max(1)],
            stamp_b: vec![0; coloring.num_colors.max(1)],
            stamp_token: 0,
            r: Vec::new(),
            ctrl,
            sink_stop,
            stats: EnumStats::default(),
        }
    }

    fn run(&mut self, emit: &mut dyn FnMut(Vec<VertexId>) -> SinkFlow) {
        let n = self.adj.order();
        let root = Bitset::full(n);
        let empty = Bitset::new(n);
        self.branch(AttributeCounts::new(), &root, &empty, emit);
    }

    /// Distinct colors among the candidate set, split by attribute. Any clique drawn
    /// from `cand` uses pairwise-distinct colors, so these cap how many candidates of
    /// each attribute one clique can absorb.
    fn distinct_colors(&mut self, cand: &Bitset) -> (usize, usize) {
        self.stamp_token += 1;
        let token = self.stamp_token;
        let (mut colors_a, mut colors_b) = (0usize, 0usize);
        for rank in cand.iter() {
            let color = self.colors[rank] as usize;
            match self.attrs[rank] {
                Attribute::A => {
                    if self.stamp_a[color] != token {
                        self.stamp_a[color] = token;
                        colors_a += 1;
                    }
                }
                Attribute::B => {
                    if self.stamp_b[color] != token {
                        self.stamp_b[color] = token;
                        colors_b += 1;
                    }
                }
            }
        }
        (colors_a, colors_b)
    }

    /// Whether some non-empty clique within `cand` (every member adjacent to all of
    /// `R`) extends `counts` to a set the model calls fair — the maximality test.
    fn has_fair_extension(&self, counts: AttributeCounts, cand: &Bitset) -> bool {
        if cand.is_empty() {
            return false;
        }
        // This search can go deep on dense candidate sets, so budgets and
        // cancellation must stay responsive inside it too: its recursion levels
        // count as nodes, and a stopped run answers "has an extension" so the
        // pending emission is suppressed rather than risked unverified.
        if self.ctrl.on_node() || self.sink_stop.load(Ordering::Relaxed) {
            return true;
        }
        // No subset of `cand` can repair a count below k or an irreparable imbalance.
        let cand_a = cand.intersection_count(self.attr_a.words());
        let cand_b = cand.count() - cand_a;
        let (a, b) = (counts.a(), counts.b());
        if a + cand_a < self.params.k || b + cand_b < self.params.k {
            return false;
        }
        if a > b + cand_b + self.params.delta || b > a + cand_a + self.params.delta {
            return false;
        }
        let mut rest = cand.clone();
        while let Some(rank) = rest.first_set() {
            rest.remove(rank);
            let mut extended = counts;
            extended.add(self.attrs[rank]);
            if self.model.is_fair(extended) {
                return true;
            }
            if self.has_fair_extension(extended, &rest.intersection_with(self.adj.row(rank))) {
                return true;
            }
        }
        false
    }

    fn should_stop(&self) -> bool {
        self.ctrl.stopped() || self.sink_stop.load(Ordering::Relaxed)
    }

    fn branch(
        &mut self,
        counts: AttributeCounts,
        cand: &Bitset,
        excl: &Bitset,
        emit: &mut dyn FnMut(Vec<VertexId>) -> SinkFlow,
    ) {
        if self.ctrl.on_node() || self.sink_stop.load(Ordering::Relaxed) {
            return;
        }
        self.stats.branches += 1;

        // Emission test: R is fair, big enough, and no clique within its common
        // neighborhood (exactly P ∪ X) extends it fairly.
        if self.r.len() >= self.min_size && self.model.is_fair(counts) {
            if self.has_fair_extension(counts, &cand.union_with(excl.words())) {
                self.stats.maximality_rejections += 1;
            } else {
                let clique: Vec<VertexId> =
                    self.r.iter().map(|&rank| self.original[rank]).collect();
                if emit(clique) == SinkFlow::Stop {
                    self.sink_stop.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }

        let cand_total = cand.count();
        if cand_total == 0 {
            return;
        }

        // Fairness-aware subtree pruning: every descendant is R ∪ S for a non-empty
        // clique S ⊆ P, so reachability caps on (counts, size) are sound cuts.
        let cand_a = cand.intersection_count(self.attr_a.words());
        let cand_b = cand_total - cand_a;
        let (a, b) = (counts.a(), counts.b());
        if a + cand_a < self.params.k || b + cand_b < self.params.k {
            self.stats.feasibility_prunes += 1;
            return;
        }
        if a > b + cand_b + self.params.delta || b > a + cand_a + self.params.delta {
            self.stats.feasibility_prunes += 1;
            return;
        }
        if self.r.len() + cand_total < self.min_size {
            self.stats.bound_prunes += 1;
            return;
        }
        // Colorful refinement: a clique picks pairwise-distinct colors, so distinct
        // candidate colors per attribute bound the reachable counts more tightly.
        let (colors_a, colors_b) = self.distinct_colors(cand);
        if a + colors_a < self.params.k || b + colors_b < self.params.k {
            self.stats.colorful_prunes += 1;
            return;
        }
        if a > b + colors_b + self.params.delta || b > a + colors_a + self.params.delta {
            self.stats.colorful_prunes += 1;
            return;
        }
        if self.r.len() + colors_a + colors_b < self.min_size {
            self.stats.colorful_prunes += 1;
            return;
        }

        // Branch set: everything, or (pivot mode) only the pivot's non-neighbors.
        let branch_set = if self.pivoting {
            match self.choose_pivot(cand, excl) {
                Some(pivot) => cand.difference_with(self.adj.row(pivot)),
                None => cand.clone(),
            }
        } else {
            cand.clone()
        };

        let mut cand = cand.clone();
        let mut excl = excl.clone();
        for rank in branch_set.iter() {
            if self.should_stop() {
                return;
            }
            cand.remove(rank);
            let child_cand = cand.intersection_with(self.adj.row(rank));
            let child_excl = excl.intersection_with(self.adj.row(rank));
            let mut next_counts = counts;
            next_counts.add(self.attrs[rank]);
            self.r.push(rank);
            self.branch(next_counts, &child_cand, &child_excl, emit);
            self.r.pop();
            excl.insert(rank);
        }
    }

    /// The classic Bron–Kerbosch pivot: the vertex of `P ∪ X` with the most neighbors
    /// in `P` (ties keep the lowest rank, so serial runs are reproducible).
    fn choose_pivot(&self, cand: &Bitset, excl: &Bitset) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for rank in cand.iter().chain(excl.iter()) {
            let count = cand.intersection_count(self.adj.row(rank));
            if best.map_or(true, |(best_count, _)| count > best_count) {
                best = Some((count, rank));
            }
        }
        best.map(|(_, rank)| rank)
    }
}

/// Enumerates the maximal fair cliques of **one** connected component of `reduced`,
/// handing each one (as reduced-graph vertex ids) to `emit`. Returns the component's
/// stats (with `components_searched = 1`) and whether `emit` stopped the run.
///
/// This is the single-component engine shared by [`run_enumeration`]'s serial path
/// and the dynamic solver's per-component re-enumeration
/// ([`DynamicRfcSolver::enumerate`](crate::dynamic::DynamicRfcSolver::enumerate)),
/// which caches completed component results and only re-runs this on components an
/// update actually changed.
pub(crate) fn enumerate_one_component(
    reduced: &AttributedGraph,
    component: &[VertexId],
    problem: EnumProblem,
    ctrl: &SearchControl,
    emit: &mut dyn FnMut(Vec<VertexId>) -> SinkFlow,
) -> (EnumStats, bool) {
    let sink_stop = AtomicBool::new(false);
    let mut ce = ComponentEnum::new(reduced, component, problem, ctrl, &sink_stop);
    ce.run(emit);
    let mut stats = ce.stats;
    stats.components_searched = 1;
    (stats, sink_stop.load(Ordering::Relaxed))
}

/// Runs the enumeration over every eligible component of `reduced`, streaming into
/// `sink`. Returns the merged stats, the number of cliques delivered to the sink, and
/// whether the sink stopped the run.
///
/// This is the engine below
/// [`RfcSolver::enumerate`](crate::solver::RfcSolver::enumerate): the reduction has
/// already happened, and the caller owns termination classification and wall-clock
/// accounting.
pub(crate) fn run_enumeration(
    original: &AttributedGraph,
    reduced: &AttributedGraph,
    problem: EnumProblem,
    threads: ThreadCount,
    ctrl: &SearchControl,
    sink: &mut dyn CliqueSink,
) -> (EnumStats, u64, bool) {
    let min_size = problem.min_size;
    let mut stats = EnumStats::default();
    // A clique of size ≥ min_size only contains vertices of degree ≥ min_size − 1 and
    // lives in a component of at least min_size vertices; any fair extension that
    // could disqualify an emitted clique is itself larger, so it survives this filter
    // too and maximality judgements are unaffected.
    let active: Vec<VertexId> = reduced
        .vertices()
        .filter(|&v| reduced.degree(v) + 1 >= min_size)
        .collect();
    let mut components: Vec<Vec<VertexId>> = components_of_subset(reduced, &active)
        .into_iter()
        .filter(|component| component.len() >= min_size)
        .collect();

    let workers = threads.resolve().min(components.len());
    let sink_stop = AtomicBool::new(false);
    let mut emitted = 0u64;

    if workers <= 1 {
        // Deterministic serial path: components in discovery order, direct emission.
        let busy = Instant::now();
        for component in &components {
            if ctrl.stopped() || sink_stop.load(Ordering::Relaxed) {
                break;
            }
            let mut emit = |vertices: Vec<VertexId>| {
                emitted += 1;
                sink.emit(FairClique::from_vertices(original, vertices))
            };
            let (component_stats, stopped) =
                enumerate_one_component(reduced, component, problem, ctrl, &mut emit);
            stats += &component_stats;
            if stopped {
                sink_stop.store(true, Ordering::Relaxed);
            }
        }
        stats.cpu_micros += busy.elapsed().as_micros() as u64;
    } else {
        // Largest components first so the most expensive enumerations start
        // immediately (ties broken by vertex ids to keep dispatch reproducible).
        components.sort_unstable_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        // Bounded channel: a sink slower than the workers applies backpressure
        // (workers block in `send`) instead of buffering an unbounded backlog —
        // million-clique runs stay constant-memory end to end.
        let (tx, rx) = mpsc::sync_channel::<Vec<VertexId>>(256);
        let n_components = components.len();
        std::thread::scope(|scope| {
            let sink_stop = &sink_stop;
            let components = &components;
            // The work-stealing pool blocks until every component is done, so it runs
            // on a coordinator thread while this thread (the sink's owner) drains the
            // channel; no sink synchronization is ever needed.
            let coordinator = scope.spawn(move || {
                let initial: Vec<usize> = (0..n_components).collect();
                let states: Vec<(EnumStats, mpsc::SyncSender<Vec<VertexId>>)> = (0..workers)
                    .map(|_| (EnumStats::default(), tx.clone()))
                    .collect();
                drop(tx);
                let states = steal::run_pool(workers, initial, states, |state, _spawner, i| {
                    if ctrl.stopped() || sink_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let busy = Instant::now();
                    let (local, tx) = state;
                    local.components_searched += 1;
                    let mut ce =
                        ComponentEnum::new(reduced, &components[i], problem, ctrl, sink_stop);
                    let mut emit = |vertices: Vec<VertexId>| {
                        // A dropped receiver means the run is over.
                        if tx.send(vertices).is_ok() {
                            SinkFlow::Continue
                        } else {
                            SinkFlow::Stop
                        }
                    };
                    ce.run(&mut emit);
                    *local += &ce.stats;
                    local.cpu_micros += busy.elapsed().as_micros() as u64;
                });
                let mut merged = EnumStats::default();
                for (local, _) in states {
                    merged += &local;
                }
                merged
            });
            for vertices in rx {
                if sink_stop.load(Ordering::Relaxed) {
                    continue; // drain in-flight cliques without delivering them
                }
                emitted += 1;
                if sink.emit(FairClique::from_vertices(original, vertices)) == SinkFlow::Stop {
                    sink_stop.store(true, Ordering::Relaxed);
                }
            }
            stats += &coordinator
                .join()
                .expect("enumeration coordinator panicked");
        });
    }

    (stats, emitted, sink_stop.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::RfcSolver;
    use crate::verify;
    use rfc_graph::fixtures;

    fn fig1_solver() -> RfcSolver {
        RfcSolver::new(fixtures::fig1_graph())
    }

    fn serial(query: EnumQuery) -> EnumQuery {
        query.with_threads(ThreadCount::Serial)
    }

    #[test]
    fn fig1_relative_has_exactly_the_five_fair_seven_subsets() {
        let solver = fig1_solver();
        let model = FairnessModel::Relative { k: 3, delta: 1 };
        let mut sink = CollectSink::new();
        let outcome = solver
            .enumerate(&serial(EnumQuery::new(model)), &mut sink)
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::Complete);
        assert!(outcome.termination.is_complete());
        assert_eq!(outcome.emitted, 5);
        assert_eq!(sink.len(), 5);
        for clique in sink.cliques() {
            assert_eq!(clique.size(), 7);
            assert_eq!((clique.counts.a(), clique.counts.b()), (4, 3));
            assert!(verify::is_maximal_fair_clique_under(
                solver.graph(),
                &clique.vertices,
                model
            ));
        }
        // No duplicates.
        let mut sets: Vec<_> = sink.cliques().iter().map(|c| c.vertices.clone()).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), 5);
    }

    #[test]
    fn weak_model_emits_fair_maximal_cliques_via_pivoting() {
        let solver = fig1_solver();
        let model = FairnessModel::Weak { k: 3 };
        let mut sink = CollectSink::new();
        let outcome = solver
            .enumerate(&serial(EnumQuery::new(model)), &mut sink)
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::Complete);
        // Only the planted 8-clique has ≥ 3 of each attribute.
        assert_eq!(outcome.emitted, 1);
        assert_eq!(sink.cliques()[0].size(), 8);
        assert!(verify::is_maximal_fair_clique_under(
            solver.graph(),
            &sink.cliques()[0].vertices,
            model
        ));
    }

    #[test]
    fn strong_model_emits_all_balanced_maximal_cliques() {
        let solver = fig1_solver();
        let model = FairnessModel::Strong { k: 3 };
        let mut sink = CollectSink::new();
        let outcome = solver
            .enumerate(&serial(EnumQuery::new(model)), &mut sink)
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::Complete);
        // All 3 b's of the planted clique plus any 3 of the 5 a's: C(5,3) = 10.
        assert_eq!(outcome.emitted, 10);
        for clique in sink.cliques() {
            assert_eq!((clique.counts.a(), clique.counts.b()), (3, 3));
            assert!(verify::is_maximal_fair_clique_under(
                solver.graph(),
                &clique.vertices,
                model
            ));
        }
    }

    #[test]
    fn min_size_filters_without_breaking_maximality() {
        let solver = fig1_solver();
        let model = FairnessModel::Relative { k: 1, delta: 1 };
        let mut all = CollectSink::new();
        solver
            .enumerate(&serial(EnumQuery::new(model)), &mut all)
            .unwrap();
        let mut filtered = CollectSink::new();
        solver
            .enumerate(
                &serial(EnumQuery::new(model).with_min_size(7)),
                &mut filtered,
            )
            .unwrap();
        let expected: Vec<_> = all
            .cliques()
            .iter()
            .filter(|c| c.size() >= 7)
            .cloned()
            .collect();
        assert!(!expected.is_empty());
        let mut got = filtered.into_cliques();
        let mut want = expected;
        got.sort_by(|x, y| x.vertices.cmp(&y.vertices));
        want.sort_by(|x, y| x.vertices.cmp(&y.vertices));
        assert_eq!(got, want);
    }

    #[test]
    fn coloring_gate_answers_hopeless_queries_without_preprocessing() {
        let solver = fig1_solver();
        let k = solver.num_colors();
        let mut sink = CountSink::new();
        let outcome = solver
            .enumerate(
                &serial(EnumQuery::new(FairnessModel::Weak { k })),
                &mut sink,
            )
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::Complete);
        assert_eq!(outcome.emitted, 0);
        assert_eq!(sink.count(), 0);
        assert_eq!(solver.preprocessing_runs(), 0);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let solver = fig1_solver();
        let mut sink = CountSink::new();
        assert!(solver
            .enumerate(&EnumQuery::new(FairnessModel::Weak { k: 0 }), &mut sink)
            .is_err());
    }

    #[test]
    fn enumeration_shares_the_reduction_cache_with_solve() {
        let solver = fig1_solver();
        let solved = solver
            .solve(&crate::solver::Query::new(FairnessModel::Relative {
                k: 3,
                delta: 1,
            }))
            .unwrap();
        assert!(!solved.reduction_cache_hit);
        let mut sink = CountSink::new();
        let outcome = solver
            .enumerate(
                &serial(EnumQuery::new(FairnessModel::Strong { k: 3 })),
                &mut sink,
            )
            .unwrap();
        assert!(
            outcome.reduction_cache_hit,
            "same k must share one pipeline"
        );
        assert_eq!(solver.preprocessing_runs(), 1);
    }

    #[test]
    fn limit_sink_truncates_and_reports_sink_stopped() {
        let solver = fig1_solver();
        let model = FairnessModel::Strong { k: 3 };
        let mut collect = CollectSink::new();
        let mut limited = LimitSink::new(&mut collect, 4);
        assert_eq!(limited.remaining(), 4);
        let outcome = solver
            .enumerate(&serial(EnumQuery::new(model)), &mut limited)
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::SinkStopped);
        assert_eq!(outcome.emitted, 4);
        assert_eq!(collect.len(), 4);
        for clique in collect.cliques() {
            assert!(verify::is_maximal_fair_clique_under(
                solver.graph(),
                &clique.vertices,
                model
            ));
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_and_partial_output_verifies() {
        let solver = fig1_solver();
        let model = FairnessModel::Strong { k: 3 };
        let mut sink = CollectSink::new();
        let outcome = solver
            .enumerate(
                &serial(EnumQuery::new(model).with_budget(Budget::unlimited().with_node_limit(10))),
                &mut sink,
            )
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::BudgetExhausted);
        assert!(!outcome.termination.is_complete());
        assert!(outcome.emitted < 10, "fig1 strong k=3 has 10 cliques");
        for clique in sink.cliques() {
            assert!(verify::is_maximal_fair_clique_under(
                solver.graph(),
                &clique.vertices,
                model
            ));
        }
    }

    #[test]
    fn cancellation_is_reported() {
        let solver = fig1_solver();
        let token = CancelToken::new();
        token.cancel();
        let mut sink = CountSink::new();
        let outcome = solver
            .enumerate(
                &serial(
                    EnumQuery::new(FairnessModel::Relative { k: 3, delta: 1 }).with_cancel(token),
                ),
                &mut sink,
            )
            .unwrap();
        assert_eq!(outcome.termination, EnumTermination::Cancelled);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn serial_emission_order_is_reproducible() {
        let solver = fig1_solver();
        let query = serial(EnumQuery::new(FairnessModel::Strong { k: 3 }));
        let mut first = CollectSink::new();
        let first_outcome = solver.enumerate(&query, &mut first).unwrap();
        for _ in 0..2 {
            let mut again = CollectSink::new();
            let outcome = solver.enumerate(&query, &mut again).unwrap();
            assert_eq!(again.cliques(), first.cliques(), "emission order changed");
            assert_eq!(outcome.stats.branches, first_outcome.stats.branches);
            assert_eq!(
                outcome.stats.colorful_prunes,
                first_outcome.stats.colorful_prunes
            );
        }
    }

    #[test]
    fn parallel_enumeration_matches_serial_set() {
        let g = fixtures::two_cliques_with_bridge(8, 6);
        let solver = RfcSolver::new(g);
        let model = FairnessModel::Relative { k: 2, delta: 2 };
        let mut serial_sink = CollectSink::new();
        solver
            .enumerate(&serial(EnumQuery::new(model)), &mut serial_sink)
            .unwrap();
        for threads in [ThreadCount::Fixed(2), ThreadCount::Fixed(4)] {
            let mut par_sink = CollectSink::new();
            let outcome = solver
                .enumerate(&EnumQuery::new(model).with_threads(threads), &mut par_sink)
                .unwrap();
            assert_eq!(outcome.termination, EnumTermination::Complete);
            let mut a: Vec<_> = serial_sink
                .cliques()
                .iter()
                .map(|c| c.vertices.clone())
                .collect();
            let mut b: Vec<_> = par_sink
                .cliques()
                .iter()
                .map(|c| c.vertices.clone())
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads {threads:?}");
        }
    }

    #[test]
    fn top_n_sink_keeps_the_largest() {
        let mut sink = TopNSink::new(2);
        let g = fixtures::balanced_clique(6);
        for size in [2usize, 4, 3, 5] {
            let vertices: Vec<VertexId> = (0..size as VertexId).collect();
            sink.emit(FairClique::from_vertices(&g, vertices));
        }
        let sizes: Vec<usize> = sink.cliques().iter().map(|c| c.size()).collect();
        assert_eq!(sizes, vec![5, 4]);
        assert_eq!(sink.into_cliques().len(), 2);
        // n = 0 is clamped to 1.
        let mut tiny = TopNSink::new(0);
        tiny.emit(FairClique::from_vertices(&g, vec![0, 1]));
        tiny.emit(FairClique::from_vertices(&g, vec![0]));
        assert_eq!(tiny.cliques().len(), 1);
        assert_eq!(tiny.cliques()[0].size(), 2);
    }

    #[test]
    fn count_sink_counts_without_storing() {
        let g = fixtures::balanced_clique(5);
        let mut sink = CountSink::new();
        assert_eq!((sink.count(), sink.largest()), (0, 0));
        sink.emit(FairClique::from_vertices(&g, vec![0, 1, 2]));
        sink.emit(FairClique::from_vertices(&g, vec![0, 1]));
        assert_eq!((sink.count(), sink.largest()), (2, 3));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_clique() {
        let g = fixtures::fig1_graph();
        let mut sink = JsonlSink::new(Vec::new());
        let clique = FairClique::from_vertices(&g, vec![9, 6, 7]);
        assert_eq!(sink.emit(clique), SinkFlow::Continue);
        assert_eq!(sink.written(), 1);
        assert!(!sink.pipe_closed());
        let bytes = sink.finish().unwrap();
        let line = String::from_utf8(bytes).unwrap();
        assert_eq!(
            line,
            "{\"size\":3,\"count_a\":0,\"count_b\":3,\"vertices\":[6,7,9]}\n"
        );
    }

    #[test]
    fn jsonl_sink_turns_broken_pipe_into_a_clean_stop() {
        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let g = fixtures::balanced_clique(4);
        let mut sink = JsonlSink::new(BrokenPipe);
        assert_eq!(
            sink.emit(FairClique::from_vertices(&g, vec![0, 1])),
            SinkFlow::Stop
        );
        assert!(sink.pipe_closed());
        assert_eq!(sink.written(), 0);
        // Further emissions keep refusing without touching the writer.
        assert_eq!(
            sink.emit(FairClique::from_vertices(&g, vec![2, 3])),
            SinkFlow::Stop
        );
        assert!(sink.finish().is_ok(), "a closed pipe is not an error");
    }

    #[test]
    fn closure_sinks_work() {
        let solver = fig1_solver();
        let mut sizes = Vec::new();
        let mut sink = |clique: FairClique| {
            sizes.push(clique.size());
            SinkFlow::Continue
        };
        let outcome = solver
            .enumerate(
                &serial(EnumQuery::new(FairnessModel::Relative { k: 3, delta: 1 })),
                &mut sink,
            )
            .unwrap();
        assert_eq!(outcome.emitted, 5);
        assert_eq!(sizes, vec![7; 5]);
    }

    #[test]
    fn enum_stats_merge_accounts_for_every_counter() {
        // When adding a field to `EnumStats`, extend this test.
        let mut total = EnumStats {
            reduction: ReductionStats {
                original_vertices: 5,
                original_edges: 9,
                stages: Vec::new(),
            },
            branches: 10,
            feasibility_prunes: 1,
            bound_prunes: 2,
            colorful_prunes: 3,
            maximality_rejections: 4,
            components_searched: 1,
            elapsed_micros: 100,
            cpu_micros: 90,
        };
        let worker = EnumStats {
            reduction: ReductionStats::default(),
            branches: 20,
            feasibility_prunes: 5,
            bound_prunes: 6,
            colorful_prunes: 7,
            maximality_rejections: 8,
            components_searched: 2,
            elapsed_micros: 50,
            cpu_micros: 45,
        };
        total += &worker;
        assert_eq!(total.branches, 30);
        assert_eq!(total.feasibility_prunes, 6);
        assert_eq!(total.bound_prunes, 8);
        assert_eq!(total.colorful_prunes, 10);
        assert_eq!(total.maximality_rejections, 12);
        assert_eq!(total.components_searched, 3);
        // Wall-clock takes the max (workers overlap in time); CPU busy time sums.
        assert_eq!(total.elapsed_micros, 100);
        assert_eq!(total.cpu_micros, 135);
        assert_eq!(total.reduction.original_vertices, 5);
        let mut fresh = EnumStats::default();
        fresh += &total;
        assert_eq!(fresh.reduction.original_edges, 9);
    }

    #[test]
    fn query_builder_round_trip() {
        let token = CancelToken::new();
        let query = EnumQuery::new(FairnessModel::Strong { k: 2 })
            .with_min_size(6)
            .with_budget(Budget::unlimited().with_node_limit(7))
            .with_cancel(token)
            .with_reductions(ReductionConfig::core_only())
            .with_threads(ThreadCount::Fixed(3));
        assert_eq!(query.fairness, FairnessModel::Strong { k: 2 });
        assert_eq!(query.min_size, 6);
        assert_eq!(query.budget.node_limit, Some(7));
        assert!(query.cancel.is_some());
        assert_eq!(query.reductions, ReductionConfig::core_only());
        assert_eq!(query.threads, ThreadCount::Fixed(3));
        assert_eq!(EnumQuery::default().min_size, 0);
    }
}
