//! The greedy growth procedure shared by `DegHeur` and `ColorfulDegHeur` (Algorithm 5).

use rfc_graph::colorful::colorful_degrees;
use rfc_graph::coloring::greedy_coloring;
use rfc_graph::{Attribute, AttributeCounts, AttributedGraph, VertexId};

use super::HeuristicConfig;
use crate::problem::{FairClique, FairCliqueParams};

/// The vertex score that drives the greedy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyScore {
    /// Plain degree (the `DegHeur` strategy).
    Degree,
    /// Colorful degree `min(D_a(v), D_b(v))` (the `ColorfulDegHeur` strategy).
    ColorfulDegree,
}

/// `DegHeur` (Algorithm 5): degree-based greedy fair clique construction.
pub fn deg_heur(
    g: &AttributedGraph,
    params: FairCliqueParams,
    config: &HeuristicConfig,
) -> Option<FairClique> {
    greedy_fair_clique(g, params, GreedyScore::Degree, config)
}

/// `ColorfulDegHeur`: colorful-degree-based greedy fair clique construction.
pub fn colorful_deg_heur(
    g: &AttributedGraph,
    params: FairCliqueParams,
    config: &HeuristicConfig,
) -> Option<FairClique> {
    greedy_fair_clique(g, params, GreedyScore::ColorfulDegree, config)
}

/// Runs the greedy construction from the `config.seeds` best-scoring seed vertices and
/// returns the largest fair clique found, if any.
pub fn greedy_fair_clique(
    g: &AttributedGraph,
    params: FairCliqueParams,
    score_kind: GreedyScore,
    config: &HeuristicConfig,
) -> Option<FairClique> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    // Per-vertex score.
    let scores: Vec<u64> = match score_kind {
        GreedyScore::Degree => g.vertices().map(|v| g.degree(v) as u64).collect(),
        GreedyScore::ColorfulDegree => {
            let coloring = greedy_coloring(g);
            let cd = colorful_degrees(g, &coloring);
            g.vertices().map(|v| cd.min_degree(v) as u64).collect()
        }
    };

    // Seeds: highest scores first, ties by id (deterministic).
    let mut seed_order: Vec<VertexId> = g.vertices().collect();
    seed_order
        .sort_unstable_by(|&a, &b| scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b)));
    let num_seeds = config.seeds.max(1).min(n);

    let mut best: Option<Vec<VertexId>> = None;
    for &seed in seed_order.iter().take(num_seeds) {
        if g.degree(seed) + 1 < params.min_size() {
            continue; // this seed can never be in a fair clique of size 2k
        }
        if let Some(candidate) = grow_from_seed(g, params, &scores, seed) {
            if best.as_ref().map_or(true, |b| candidate.len() > b.len()) {
                best = Some(candidate);
            }
        }
    }
    best.map(|vs| FairClique::from_vertices(g, vs))
}

/// One greedy walk (the `HeurBranch` loop of Algorithm 5), iterative rather than
/// recursive. Returns the largest fair prefix of the walk, if any prefix is fair.
fn grow_from_seed(
    g: &AttributedGraph,
    params: FairCliqueParams,
    scores: &[u64],
    seed: VertexId,
) -> Option<Vec<VertexId>> {
    let mut r: Vec<VertexId> = vec![seed];
    let mut counts = AttributeCounts::new();
    counts.add(g.attribute(seed));
    let mut candidates: Vec<VertexId> = g.neighbors(seed).to_vec();
    // Alternate attributes, starting with the one the seed does not have.
    let mut attr_choose = g.attribute(seed).other();
    // Cap on the number of vertices of each attribute, set once one attribute's
    // candidate pool dries up (the `amax` of Algorithm 5).
    let mut cap: Option<usize> = None;

    let mut best_fair: Option<Vec<VertexId>> = None;
    if params.is_fair(counts) {
        best_fair = Some(r.clone());
    }

    loop {
        // Enforce the cap: once an attribute has reached it, stop considering its
        // candidates (they could only make the clique unfair).
        if let Some(cap) = cap {
            if counts.a() >= cap || counts.b() >= cap {
                let full: Attribute = if counts.a() >= cap {
                    Attribute::A
                } else {
                    Attribute::B
                };
                candidates.retain(|&v| g.attribute(v) != full);
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Feasibility: even taking every remaining candidate cannot reach k for some
        // attribute, or cannot fix the imbalance — the walk is hopeless beyond the best
        // fair prefix already recorded.
        let cand_counts = g.attribute_counts_of(&candidates);
        if counts.a() + cand_counts.a() < params.k || counts.b() + cand_counts.b() < params.k {
            break;
        }

        // Pick the attribute to extend: prefer `attr_choose`, fall back to the other.
        let mut pick_attr = attr_choose;
        if !candidates.iter().any(|&v| g.attribute(v) == pick_attr) {
            // The preferred attribute ran out: fix the cap (Algorithm 5 lines 9-11) and
            // continue with the other attribute.
            if cap.is_none() {
                cap = Some(counts[pick_attr] + params.delta);
            }
            pick_attr = pick_attr.other();
            if !candidates.iter().any(|&v| g.attribute(v) == pick_attr) {
                break;
            }
        }

        // Highest-scoring candidate of the chosen attribute (ties by id).
        let v = candidates
            .iter()
            .copied()
            .filter(|&v| g.attribute(v) == pick_attr)
            .max_by(|&x, &y| scores[x as usize].cmp(&scores[y as usize]).then(y.cmp(&x)))
            .expect("an eligible candidate exists");

        r.push(v);
        counts.add(g.attribute(v));
        candidates.retain(|&u| u != v && g.has_edge(u, v));
        attr_choose = g.attribute(v).other();

        if params.is_fair(counts) && best_fair.as_ref().map_or(true, |b| r.len() > b.len()) {
            best_fair = Some(r.clone());
        }
    }
    best_fair
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_fair_and_clique;
    use rfc_graph::fixtures;

    fn cfg() -> HeuristicConfig {
        HeuristicConfig::default()
    }

    #[test]
    fn deg_heur_output_is_always_a_fair_clique() {
        let g = fixtures::fig1_graph();
        for (k, delta) in [(1, 0), (2, 1), (3, 1), (3, 2)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            if let Some(c) = deg_heur(&g, params, &cfg()) {
                assert!(
                    is_fair_and_clique(&g, &c.vertices, params),
                    "(k={k}, δ={delta})"
                );
                assert!(c.size() >= params.min_size());
            }
        }
    }

    #[test]
    fn colorful_deg_heur_output_is_always_a_fair_clique() {
        let g = fixtures::fig1_graph();
        for (k, delta) in [(1, 0), (2, 1), (3, 1), (3, 2)] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            if let Some(c) = colorful_deg_heur(&g, params, &cfg()) {
                assert!(
                    is_fair_and_clique(&g, &c.vertices, params),
                    "(k={k}, δ={delta})"
                );
            }
        }
    }

    #[test]
    fn finds_the_planted_clique_in_an_easy_instance() {
        // On the balanced complete graph the greedy must recover the whole graph.
        let g = fixtures::balanced_clique(10);
        let params = FairCliqueParams::new(3, 1).unwrap();
        let c = deg_heur(&g, params, &cfg()).expect("K10 has a fair clique");
        assert_eq!(c.size(), 10);
        let c2 = colorful_deg_heur(&g, params, &cfg()).unwrap();
        assert_eq!(c2.size(), 10);
    }

    #[test]
    fn respects_delta_cap() {
        // Unbalanced clique: 5 a's and 3 b's; with δ = 0 the best fair clique has 6
        // vertices; the greedy must not return an unfair 8-set.
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 0).unwrap();
        if let Some(c) = deg_heur(&g, params, &cfg()) {
            assert!(is_fair_and_clique(&g, &c.vertices, params));
            assert!(c.counts.imbalance() == 0);
        }
    }

    #[test]
    fn returns_none_when_no_fair_clique_exists() {
        let g = fixtures::path_graph(10);
        let params = FairCliqueParams::new(2, 1).unwrap();
        assert!(deg_heur(&g, params, &cfg()).is_none());
        assert!(colorful_deg_heur(&g, params, &cfg()).is_none());
        let single_attr = fixtures::two_cliques_with_bridge(0, 7);
        assert!(deg_heur(&single_attr, FairCliqueParams::new(1, 1).unwrap(), &cfg()).is_none());
    }

    #[test]
    fn empty_graph_returns_none() {
        let g = rfc_graph::GraphBuilder::new(0).build().unwrap();
        assert!(deg_heur(&g, FairCliqueParams::new(1, 1).unwrap(), &cfg()).is_none());
    }

    #[test]
    fn seed_degree_gate_skips_hopeless_seeds() {
        // Every vertex has degree 1 < 2k - 1, so no walk even starts.
        let g = fixtures::path_graph(2);
        let params = FairCliqueParams::new(2, 1).unwrap();
        assert!(greedy_fair_clique(&g, params, GreedyScore::Degree, &cfg()).is_none());
    }
}
