//! Linear-time heuristics for finding a large fair clique (Section V).
//!
//! * [`deg_heur`] — `DegHeur` (Algorithm 5): grow a clique greedily, always adding the
//!   highest-*degree* candidate of the attribute currently in demand.
//! * [`colorful_deg_heur`] — `ColorfulDegHeur`: the same framework but scoring candidates
//!   by their colorful degree `min(D_a, D_b)`.
//! * [`heur_rfc`] — `HeurRFC` (Algorithm 6): run both, use the better result to prune the
//!   graph to its `(|R*| − 1)`-core between and after the runs, and finally recolor the
//!   pruned graph to obtain an upper bound on the maximum fair clique size.
//!
//! The result of `HeurRFC` serves two purposes inside [`crate::search::max_fair_clique`]:
//! it is the initial incumbent (so branches that cannot beat it are pruned immediately)
//! and its upper bound can certify optimality early.
//!
//! Faithfulness note: Algorithm 5 as printed returns whatever set the greedy walk ends
//! on, which need not satisfy the fairness constraint. This implementation additionally
//! remembers the largest *fair* prefix seen along the walk and returns that, so the
//! heuristic's output is always a valid fair clique (or `None`).

mod greedy;

pub use greedy::{colorful_deg_heur, deg_heur, greedy_fair_clique, GreedyScore};

use rfc_graph::coloring::greedy_coloring;
use rfc_graph::cores::k_core_mask;
use rfc_graph::subgraph::vertex_filtered_subgraph;
use rfc_graph::AttributedGraph;

use crate::problem::{FairClique, FairCliqueParams};

/// Tuning knobs for the heuristic framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicConfig {
    /// Number of highest-scoring seed vertices each greedy procedure tries.
    ///
    /// The paper's Algorithm 5 grows from a single seed (the globally best-scoring
    /// vertex); that is fragile when the top-degree vertex happens not to sit in the
    /// densest fair region, so the default here tries the top 8 seeds — still linear
    /// time, and each walk is independent. Set `seeds: 1` to reproduce the paper's
    /// single-seed behaviour exactly.
    pub seeds: usize,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        Self { seeds: 8 }
    }
}

impl HeuristicConfig {
    /// The paper's single-seed configuration (Algorithm 5 as printed).
    pub fn single_seed() -> Self {
        Self { seeds: 1 }
    }
}

/// Result of [`heur_rfc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeuristicOutcome {
    /// The best fair clique found by the greedy procedures (possibly `None`).
    pub best: Option<FairClique>,
    /// An upper bound on the maximum fair clique size: the number of colors of the
    /// graph after pruning it to the `(|best| − 1)`-core.
    pub upper_bound: usize,
}

/// The heuristic framework `HeurRFC` (Algorithm 6).
pub fn heur_rfc(
    g: &AttributedGraph,
    params: FairCliqueParams,
    config: &HeuristicConfig,
) -> HeuristicOutcome {
    // Step 1: degree-based greedy on the original graph.
    let mut best = deg_heur(g, params, config);

    // Step 2: prune to the (|R*| - 1)-core before the second, more informed pass.
    let pruned = match &best {
        Some(c) if c.size() > 1 => {
            let mask = k_core_mask(g, c.size() - 1);
            vertex_filtered_subgraph(g, &mask)
        }
        _ => g.clone(),
    };

    // Step 3: colorful-degree-based greedy on the pruned graph. Vertex ids are stable
    // under `vertex_filtered_subgraph`, so the result needs no translation.
    let second = colorful_deg_heur(&pruned, params, config);
    if let Some(c2) = second {
        if best.as_ref().map_or(true, |b| c2.size() > b.size()) {
            best = Some(c2);
        }
    }

    // Step 4: prune once more with the final incumbent and recolor to get an upper
    // bound on the maximum fair clique size.
    let final_graph = match &best {
        Some(c) if c.size() > 1 => {
            let mask = k_core_mask(g, c.size() - 1);
            vertex_filtered_subgraph(g, &mask)
        }
        _ => g.clone(),
    };
    let upper_bound = greedy_coloring(&final_graph).num_colors;

    HeuristicOutcome { best, upper_bound }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_max_fair_clique;
    use crate::verify::is_fair_and_clique;
    use rfc_graph::fixtures;

    #[test]
    fn heur_rfc_finds_a_valid_fair_clique_on_fig1() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let out = heur_rfc(&g, params, &HeuristicConfig::default());
        let best = out.best.expect("heuristic should find something here");
        assert!(is_fair_and_clique(&g, &best.vertices, params));
        // The optimum is 7; the heuristic must reach at least the minimum size 6 on this
        // easy instance and never exceed the optimum.
        assert!(best.size() >= 6 && best.size() <= 7);
        // The upper bound must dominate the optimum.
        assert!(out.upper_bound >= 7);
    }

    #[test]
    fn heuristic_never_beats_the_exact_optimum() {
        let params_list = [
            FairCliqueParams::new(1, 1).unwrap(),
            FairCliqueParams::new(2, 1).unwrap(),
            FairCliqueParams::new(3, 1).unwrap(),
            FairCliqueParams::new(3, 2).unwrap(),
        ];
        for g in [
            fixtures::fig1_graph(),
            fixtures::balanced_clique(9),
            fixtures::two_cliques_with_bridge(7, 5),
        ] {
            for &params in &params_list {
                let out = heur_rfc(&g, params, &HeuristicConfig::default());
                let opt = brute_force_max_fair_clique(&g, params)
                    .map(|c| c.size())
                    .unwrap_or(0);
                if let Some(best) = &out.best {
                    assert!(is_fair_and_clique(&g, &best.vertices, params));
                    assert!(best.size() <= opt);
                    assert!(out.upper_bound >= opt);
                }
            }
        }
    }

    #[test]
    fn infeasible_graph_yields_none() {
        let g = fixtures::two_cliques_with_bridge(0, 8); // single-attribute graph
        let params = FairCliqueParams::new(1, 4).unwrap();
        let out = heur_rfc(&g, params, &HeuristicConfig::default());
        assert!(out.best.is_none());
    }

    #[test]
    fn more_seeds_never_hurt() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let one = heur_rfc(&g, params, &HeuristicConfig { seeds: 1 });
        let many = heur_rfc(&g, params, &HeuristicConfig { seeds: 8 });
        let s1 = one.best.map(|c| c.size()).unwrap_or(0);
        let s8 = many.best.map(|c| c.size()).unwrap_or(0);
        assert!(s8 >= s1);
    }
}
