//! # rfc-core — maximum relative fair clique search
//!
//! A faithful, production-quality Rust implementation of the algorithms from
//! *"Efficient Maximum Fair Clique Search over Large Networks"* (ICDE 2025):
//!
//! * **Graph reductions** ([`reduction`]): the enhanced colorful k-core reduction
//!   (`EnColorfulCore`), the colorful-support reduction (`ColorfulSup`, Algorithm 1) and
//!   the enhanced colorful-support reduction (`EnColorfulSup`), which iteratively delete
//!   vertices and edges that cannot belong to any relative fair clique.
//! * **Upper bounds** ([`bounds`]): the size/attribute/color family (`ubs`, `uba`,
//!   `ubc`, `ubac`, `ubeac`, grouped as `ubAD`), the degeneracy and h-index bounds
//!   (`ub△`, `ubh`), and the colorful degeneracy / colorful h-index / colorful path
//!   bounds (`ubcd`, `ubch`, `ubcp`).
//! * **Branch-and-bound search** ([`search`]): the `MaxRFC` framework (Algorithms 2–3)
//!   with configurable reductions, bounds, branching order and heuristic warm start.
//! * **Heuristics** ([`heuristic`]): `DegHeur`, `ColorfulDegHeur` and the combined
//!   `HeurRFC` framework (Algorithms 5–6) that finds a large fair clique in linear time.
//! * **Baselines** ([`baseline`]): a Bron–Kerbosch maximal-clique sweep and a
//!   brute-force oracle, used both as experimental baselines and as correctness oracles
//!   in the test suite.
//!
//! ## Quick start
//!
//! ```
//! use rfc_core::prelude::*;
//! use rfc_graph::fixtures;
//!
//! let g = fixtures::fig1_graph();
//! let params = FairCliqueParams::new(3, 1).unwrap();
//! let outcome = max_fair_clique(&g, params, &SearchConfig::default());
//! let best = outcome.best.expect("the example graph contains a fair clique");
//! assert_eq!(best.size(), 7);
//! assert!(rfc_core::verify::is_relative_fair_clique(&g, &best.vertices, params));
//! ```
//!
//! The search is exact: it returns a maximum relative fair clique (there may be several
//! of the same size; ties are broken deterministically).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bounds;
pub mod heuristic;
pub mod problem;
pub mod reduction;
pub mod search;
pub mod verify;

pub use problem::{FairClique, FairCliqueParams, ParamError};
pub use search::{max_fair_clique, SearchConfig, SearchOutcome, SearchStats};

/// Commonly used items for glob import.
pub mod prelude {
    pub use crate::bounds::{BoundConfig, ExtraBound};
    pub use crate::heuristic::{heur_rfc, HeuristicConfig};
    pub use crate::problem::{FairClique, FairCliqueParams};
    pub use crate::reduction::{ReductionConfig, ReductionStats};
    pub use crate::search::{
        max_fair_clique, BranchOrder, SearchConfig, SearchOutcome, SearchStats, ThreadCount,
    };
    pub use rfc_graph::prelude::*;
}
