//! # rfc-core — maximum relative fair clique search
//!
//! A faithful, production-quality Rust implementation of the algorithms from
//! *"Efficient Maximum Fair Clique Search over Large Networks"* (ICDE 2025):
//!
//! * **Graph reductions** ([`reduction`]): the enhanced colorful k-core reduction
//!   (`EnColorfulCore`), the colorful-support reduction (`ColorfulSup`, Algorithm 1) and
//!   the enhanced colorful-support reduction (`EnColorfulSup`), which iteratively delete
//!   vertices and edges that cannot belong to any relative fair clique.
//! * **Upper bounds** ([`bounds`]): the size/attribute/color family (`ubs`, `uba`,
//!   `ubc`, `ubac`, `ubeac`, grouped as `ubAD`), the degeneracy and h-index bounds
//!   (`ub△`, `ubh`), and the colorful degeneracy / colorful h-index / colorful path
//!   bounds (`ubcd`, `ubch`, `ubcp`).
//! * **Branch-and-bound search** ([`search`]): the `MaxRFC` framework (Algorithms 2–3)
//!   with configurable reductions, bounds, branching order and heuristic warm start.
//! * **Heuristics** ([`heuristic`]): `DegHeur`, `ColorfulDegHeur` and the combined
//!   `HeurRFC` framework (Algorithms 5–6) that finds a large fair clique in linear time.
//! * **Baselines** ([`baseline`]): a Bron–Kerbosch maximal-clique sweep and a
//!   brute-force oracle, used both as experimental baselines and as correctness oracles
//!   in the test suite.
//! * **Maximal fair clique enumeration** ([`enumerate`]): a fairness-aware
//!   pivot Bron–Kerbosch over the per-component bitset adjacency that streams every
//!   *maximal* fair clique of the graph through a [`CliqueSink`] (collect, count,
//!   top-N, JSONL, or any closure), with the same budgets, cancellation and parallel
//!   component fan-out as the exact search.
//! * **The multi-query solver** ([`solver`]): [`RfcSolver`] computes the
//!   query-independent preprocessing once and then serves many queries — each with a
//!   first-class [`FairnessModel`] (relative / weak / strong), an [`Objective`]
//!   (maximum or top-k), a time/node [`Budget`] and an optional
//!   [`CancelToken`] — returning structured [`Solution`]s whose
//!   [`Termination`] distinguishes exact answers from budgeted best-so-far results.
//!
//! ## Quick start
//!
//! Build an [`RfcSolver`] once, then query it as often as you like:
//!
//! ```
//! use rfc_core::prelude::*;
//! use rfc_graph::fixtures;
//!
//! let solver = RfcSolver::new(fixtures::fig1_graph());
//!
//! // The paper's relative model: >= 3 of each attribute, imbalance <= 1.
//! let relative = solver
//!     .solve(&Query::new(FairnessModel::Relative { k: 3, delta: 1 }))
//!     .unwrap();
//! assert_eq!(relative.termination, Termination::Optimal);
//! let best = relative.best().expect("the example graph contains a fair clique");
//! assert_eq!(best.size(), 7);
//! assert!(rfc_core::verify::is_fair_clique_under(
//!     solver.graph(),
//!     &best.vertices,
//!     FairnessModel::Relative { k: 3, delta: 1 },
//! ));
//!
//! // Weak / strong fairness reuse the same cached preprocessing (same k).
//! let weak = solver.solve(&Query::new(FairnessModel::Weak { k: 3 })).unwrap();
//! assert_eq!(weak.best().unwrap().size(), 8);
//! assert!(weak.reduction_cache_hit);
//! ```
//!
//! The one-shot [`max_fair_clique`] free function remains as a compatibility wrapper
//! over a throwaway solver. The search is exact: it returns a maximum fair clique
//! (there may be several of the same size; ties are broken deterministically in
//! serial mode).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bounds;
pub mod cache;
pub mod dynamic;
pub mod enumerate;
pub mod heuristic;
pub mod portfolio;
pub mod problem;
pub mod reduction;
pub mod scale;
pub mod search;
pub mod solver;
pub mod verify;

pub use cache::{CacheStats, LruCache};
pub use dynamic::{CommitOutcome, DynCacheStats, DynamicRfcSolver, Shard};

pub use enumerate::{
    CliqueSink, CollectSink, CountSink, EnumOutcome, EnumQuery, EnumStats, EnumTermination,
    JsonlSink, LimitSink, SinkFlow, TopNSink,
};
pub use portfolio::{MemberReport, PortfolioConfig, PortfolioOutcome};
pub use problem::{FairClique, FairCliqueParams, FairnessModel, ParamError};
pub use scale::{ScaleError, ScaleSolver, ScaleStats};
pub use search::{max_fair_clique, PruneCounts, SearchConfig, SearchOutcome, SearchStats};
pub use solver::{
    Budget, CancelToken, Objective, Query, RfcSolver, Solution, SolveError, Termination,
};

/// Commonly used items for glob import.
pub mod prelude {
    pub use crate::bounds::{BoundConfig, ExtraBound};
    pub use crate::dynamic::{CommitOutcome, DynCacheStats, DynamicRfcSolver, Shard};
    pub use crate::enumerate::{
        CliqueSink, CollectSink, CountSink, EnumOutcome, EnumQuery, EnumStats, EnumTermination,
        JsonlSink, LimitSink, SinkFlow, TopNSink,
    };
    pub use crate::heuristic::{heur_rfc, HeuristicConfig};
    pub use crate::portfolio::{MemberReport, PortfolioConfig, PortfolioOutcome};
    pub use crate::problem::{FairClique, FairCliqueParams, FairnessModel};
    pub use crate::reduction::{ReductionConfig, ReductionStats};
    pub use crate::search::{
        max_fair_clique, BranchOrder, PruneCounts, SearchConfig, SearchOutcome, SearchStats,
        ThreadCount,
    };
    pub use crate::solver::{
        Budget, CancelToken, Objective, Query, RfcSolver, Solution, SolveError, Termination,
    };
    pub use rfc_graph::prelude::*;
}
