//! Racing portfolio and anytime engine for budget-bound solves.
//!
//! A single search configuration can be arbitrarily unlucky on a given instance: the
//! branch order explores the wrong subtree first, the chosen extra bound is weak for
//! this structure, or the heuristic warm start misses the large clique. The
//! **portfolio** hedges by racing several diverse exact configurations over one
//! query:
//!
//! * Every member is the full `MaxRFC` pipeline (reduction → heuristic warm start →
//!   branch-and-bound) with its own [`BranchOrder`], extra bound, heuristic seed
//!   count and [`ReductionConfig`], all answering the *same* query. Reduced graphs
//!   preserve the original vertex-id space, so members with different reduction
//!   configs still share one incumbent pool: a clique found by any member
//!   immediately tightens every other member's prunes.
//! * Members hold **linked cancel tokens** ([`CancelToken::child`]): the first member
//!   to run to completion has *proved* the pool's best clique optimal (its own search
//!   was exact and the shared pool only ever holds verified cliques), so it cancels
//!   all of its siblings and the whole portfolio returns early.
//! * With [`PortfolioConfig::anytime`], an extra **anytime improver** member runs a
//!   fairness-aware local search (greedy growth, (1,2)-swaps and plateau
//!   (1,1)-swaps over the reduced graph) that keeps tightening the shared incumbent
//!   while the exact members are still branching — exactly the regime where a
//!   budget-bound query would otherwise return a weak best-so-far. Every clique the
//!   improver offers is re-verified against the *original* graph under the query's
//!   fairness model before it may enter the pool.
//!
//! On budget-bound terminations the returned [`Solution`] carries the best colorful
//! upper bound across the members' reduced graphs, so
//! [`Solution::optimality_gap`] is finite whenever at least one member finished its
//! reduction — and a gap of zero is certified back into [`Termination::Optimal`].
//!
//! Budget semantics: the query's [`Budget`](crate::solver::Budget) applies **per
//! member** — the wall-clock deadline is anchored once for the whole portfolio call,
//! but a `node_limit` bounds each member's own branch count (racing `N` solvers means
//! up to `N ×` the node budget in aggregate).
//!
//! ```
//! use rfc_core::prelude::*;
//! use rfc_graph::fixtures;
//!
//! let solver = RfcSolver::new(fixtures::fig1_graph());
//! let query = Query::new(FairnessModel::Relative { k: 3, delta: 1 });
//! let outcome = solver
//!     .solve_portfolio(&query, &PortfolioConfig::new(3))
//!     .unwrap();
//! assert_eq!(outcome.solution.termination, Termination::Optimal);
//! assert_eq!(outcome.solution.best().unwrap().size(), 7);
//! assert_eq!(outcome.solution.optimality_gap(), Some(0));
//! assert_eq!(outcome.members.iter().filter(|m| m.winner).count(), 1);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rfc_graph::{AttributedGraph, VertexId};

use crate::bounds::{BoundConfig, ExtraBound};
use crate::heuristic::heur_rfc;
use crate::problem::{FairClique, FairCliqueParams, FairnessModel};
use crate::reduction::ReductionConfig;
use crate::search::control::SearchControl;
use crate::search::parallel::SharedIncumbent;
use crate::search::{branch_and_bound, BranchOrder, SearchConfig, SearchStats, ThreadCount};
use crate::solver::{
    colorful_upper_bound, flush_search_metrics, stopped_termination, CancelToken, Objective, Query,
    ReducedEntry, RfcSolver, Solution, SolveError, Termination,
};

/// Configuration of one [`RfcSolver::solve_portfolio`] call.
///
/// The racing members derive their search configurations from the query's own
/// [`SearchConfig`]: member 0 runs it verbatim (so the portfolio never does worse
/// than the single-configuration solve at the same budget), and members 1..n vary
/// the branch order, the extra bound, the heuristic seed count and — from the
/// fourth member on — the reduction pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// How many exact racing members to run (clamped to at least 1).
    pub members: usize,
    /// Whether to run the anytime local-search improver as an extra member.
    pub anytime: bool,
    /// Seed for the improver's deterministic pseudo-random move choices.
    pub seed: u64,
}

impl Default for PortfolioConfig {
    /// Four racing members, no anytime improver.
    fn default() -> Self {
        Self {
            members: 4,
            anytime: false,
            seed: 0x5eed_cafe_f00d_u64,
        }
    }
}

impl PortfolioConfig {
    /// A portfolio of `members` racing configurations (clamped to at least 1).
    pub fn new(members: usize) -> Self {
        Self {
            members: members.max(1),
            ..Self::default()
        }
    }

    /// Returns this configuration with the anytime improver switched on or off.
    pub fn with_anytime(mut self, anytime: bool) -> Self {
        self.anytime = anytime;
        self
    }

    /// Returns this configuration with a different improver seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// How one portfolio member fared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberReport {
    /// Human-readable description of the member's configuration (`"base"`,
    /// `"degeneracy/colorfulhindex/seeds=1"`, `"anytime"`).
    pub label: String,
    /// How the member's own search ended. Non-winners of a decided race report
    /// [`Termination::Cancelled`] — the winner's proof made their work moot.
    pub termination: Termination,
    /// Branch nodes the member visited (for the anytime improver: local-search moves
    /// evaluated).
    pub branches: u64,
    /// The member's wall-clock running time, in microseconds.
    pub elapsed_micros: u64,
    /// Whether this member was the first to run to completion and thereby decided
    /// the race (cancelling every sibling).
    pub winner: bool,
}

/// The result of [`RfcSolver::solve_portfolio`]: the merged [`Solution`] plus one
/// report per member (the anytime improver, when enabled, is the last entry).
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The portfolio's answer. `stats` merges every member's counters
    /// ([`SearchStats`]'s usual merge: counters summed, wall time not).
    pub solution: Solution,
    /// Per-member termination statistics, in member order.
    pub members: Vec<MemberReport>,
}

impl RfcSolver {
    /// Answers one query by racing a portfolio of diverse configurations (see the
    /// [module docs](crate::portfolio) for the full contract).
    ///
    /// Like [`solve`](RfcSolver::solve), errors only on malformed queries; budget
    /// exhaustion and cancellation show up in the solution's [`Termination`].
    pub fn solve_portfolio(
        &self,
        query: &Query,
        portfolio: &PortfolioConfig,
    ) -> Result<PortfolioOutcome, SolveError> {
        solve_portfolio(self, query, portfolio)
    }
}

/// Free-function body of [`RfcSolver::solve_portfolio`].
fn solve_portfolio(
    solver: &RfcSolver,
    query: &Query,
    portfolio: &PortfolioConfig,
) -> Result<PortfolioOutcome, SolveError> {
    let start = Instant::now();
    let mut span = rfc_obs::trace::span("portfolio");
    let params = query
        .fairness
        .resolve(solver.graph().num_vertices())
        .map_err(SolveError::InvalidParams)?;
    let capacity = match query.objective {
        Objective::Maximum => 1,
        Objective::TopK(0) => return Err(SolveError::EmptyTopK),
        Objective::TopK(n) => n,
    };
    let members = portfolio.members.max(1);

    let empty_solution = |termination, upper_bound, stats: SearchStats| Solution {
        cliques: Vec::new(),
        termination,
        stats,
        reduction_cache_hit: false,
        upper_bound,
    };

    // Same O(1) infeasibility gate as the plain solve.
    if params.min_size() > solver.num_colors() {
        let stats = SearchStats {
            elapsed_micros: start.elapsed().as_micros() as u64,
            ..SearchStats::default()
        };
        return Ok(PortfolioOutcome {
            solution: empty_solution(Termination::Infeasible, Some(0), stats),
            members: Vec::new(),
        });
    }

    // One cancel-token family: the query's token (or a fresh root) parents one child
    // per member, so the winner can cancel its siblings without ever touching the
    // caller's token, while a caller-side cancel still reaches every member.
    let root = query.cancel.clone().unwrap_or_default();
    let slots = members + usize::from(portfolio.anytime);
    let tokens: Vec<CancelToken> = (0..slots).map(|_| root.child()).collect();
    // Every control is anchored here, at query entry, so the wall-clock budget
    // covers each member's reduction and warm start too.
    let ctrls: Vec<SearchControl> = tokens
        .iter()
        .map(|t| SearchControl::new(&query.budget, Some(t.clone())))
        .collect();
    let entry_ctrl = SearchControl::new(&query.budget, Some(root.clone()));
    if entry_ctrl.check_now() {
        let stats = SearchStats {
            elapsed_micros: start.elapsed().as_micros() as u64,
            ..SearchStats::default()
        };
        return Ok(PortfolioOutcome {
            solution: empty_solution(stopped_termination(&entry_ctrl), None, stats),
            members: Vec::new(),
        });
    }

    let configs = member_configs(&query.config, members);
    let pool = SharedIncumbent::with_capacity(capacity, None);
    let winner = AtomicUsize::new(usize::MAX);

    type MemberResult = (
        Termination,
        SearchStats,
        bool,
        Option<Arc<ReducedEntry>>,
        u64,
    );
    let mut exact_results: Vec<MemberResult> = Vec::with_capacity(members);
    let mut improver_result: Option<(u64, u64, u64)> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .enumerate()
            .map(|(i, (label, cfg))| {
                let ctrl = &ctrls[i];
                let tokens = &tokens;
                let winner = &winner;
                let pool = &pool;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let mut member_span = rfc_obs::trace::span("portfolio/member");
                    let (termination, stats, hit, entry) =
                        run_member(solver, params, cfg, ctrl, pool);
                    if termination.is_complete()
                        && winner
                            .compare_exchange(usize::MAX, i, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        // First finished proof wins: everything the siblings could
                        // still find is already bounded by the pool.
                        for (j, token) in tokens.iter().enumerate() {
                            if j != i {
                                token.cancel();
                            }
                        }
                        rfc_obs::metrics::global()
                            .counter("rfc_portfolio_winner_cancels_total")
                            .inc();
                    }
                    member_span.counter("member", i as u64);
                    member_span.counter("branches", stats.branches);
                    let _ = label;
                    (
                        termination,
                        stats,
                        hit,
                        entry,
                        t0.elapsed().as_micros() as u64,
                    )
                })
            })
            .collect();

        let improver_handle = portfolio.anytime.then(|| {
            let ctrl = &ctrls[members];
            let pool = &pool;
            let seed = portfolio.seed;
            let base = &query.config;
            let model = query.fairness;
            scope.spawn(move || {
                let t0 = Instant::now();
                let mut improver_span = rfc_obs::trace::span("portfolio/anytime");
                let (moves, improvements) =
                    run_improver(solver, model, params, base, ctrl, pool, seed);
                improver_span.counter("moves", moves);
                improver_span.counter("improvements", improvements);
                (moves, improvements, t0.elapsed().as_micros() as u64)
            })
        });

        for handle in handles {
            exact_results.push(handle.join().expect("portfolio member panicked"));
        }
        // The improver can only stop via cancellation or the wall-clock deadline;
        // once every exact member has returned there is nothing left to prove, so
        // make sure it stops even under a pure node-limit budget.
        if let Some(token) = tokens.get(members) {
            token.cancel();
        }
        if let Some(handle) = improver_handle {
            improver_result = Some(handle.join().expect("portfolio improver panicked"));
        }
    });

    // Merge member stats (member 0 first, so its reduction stats win) and collect
    // the distinct reduced graphs for the bound computation.
    let mut stats = SearchStats::default();
    let mut entries: Vec<Arc<ReducedEntry>> = Vec::new();
    let mut reports: Vec<MemberReport> = Vec::with_capacity(slots);
    let won = winner.load(Ordering::Relaxed);
    for (i, (termination, member_stats, _hit, entry, elapsed)) in exact_results.iter().enumerate() {
        stats += member_stats;
        if let Some(entry) = entry {
            if !entries.iter().any(|e| Arc::ptr_eq(e, entry)) {
                entries.push(Arc::clone(entry));
            }
        }
        reports.push(MemberReport {
            label: configs[i].0.clone(),
            termination: *termination,
            branches: member_stats.branches,
            elapsed_micros: *elapsed,
            winner: won == i,
        });
    }
    let reduction_cache_hit = exact_results.first().is_some_and(|r| r.2);
    let mut anytime_improvements = 0u64;
    if let Some((moves, improvements, elapsed)) = improver_result {
        anytime_improvements = improvements;
        // Force the trip state so the report reflects why the improver stopped
        // (cancelled by the winner / the join, or an earlier deadline).
        let _ = ctrls[members].check_now();
        reports.push(MemberReport {
            label: "anytime".to_string(),
            termination: stopped_termination(&ctrls[members]),
            branches: moves,
            elapsed_micros: elapsed,
            winner: false,
        });
    }

    let cliques: Vec<FairClique> = pool
        .into_cliques()
        .into_iter()
        .map(|vertices| FairClique::from_vertices(solver.graph(), vertices))
        .collect();
    let best_size = cliques.first().map(FairClique::size).unwrap_or(0);
    let mut termination = if won != usize::MAX {
        if cliques.is_empty() {
            Termination::Infeasible
        } else {
            Termination::Optimal
        }
    } else if query.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
        Termination::Cancelled
    } else {
        Termination::BudgetExhausted
    };
    let upper_bound = if termination.is_complete() {
        Some(best_size)
    } else if entries.is_empty() {
        // Every member was stopped before finishing a reduction: no sound bound.
        None
    } else {
        let ub = entries
            .iter()
            .map(|e| colorful_upper_bound(&e.graph, params))
            .min()
            .unwrap_or(0)
            .max(best_size);
        if query.objective == Objective::Maximum && ub == best_size {
            termination = if best_size > 0 {
                Termination::Optimal
            } else {
                Termination::Infeasible
            };
        }
        Some(ub)
    };
    stats.elapsed_micros = start.elapsed().as_micros() as u64;

    span.counter("members", reports.len() as u64);
    span.counter("best_size", best_size as u64);
    drop(span);
    let m = rfc_obs::metrics::global();
    m.counter("rfc_portfolio_runs_total").inc();
    m.counter("rfc_portfolio_members_total")
        .add(reports.len() as u64);
    m.counter("rfc_portfolio_anytime_improvements_total")
        .add(anytime_improvements);
    m.histogram("rfc_portfolio_elapsed_us")
        .observe(stats.elapsed_micros);
    flush_search_metrics(&stats);

    Ok(PortfolioOutcome {
        solution: Solution {
            cliques,
            termination,
            stats,
            reduction_cache_hit,
            upper_bound,
        },
        members: reports,
    })
}

/// Derives the racing members' configurations from the query's base configuration.
///
/// Member 0 is the base configuration verbatim; later members cycle through branch
/// orders, extra bounds and heuristic seed counts, and from the fourth member on
/// also through reduction pipelines (the first wave shares the base reduction so the
/// race starts on a cache hit). Worker threads are split evenly across members.
fn member_configs(base: &SearchConfig, members: usize) -> Vec<(String, SearchConfig)> {
    let per_member = (base.threads.resolve() / members).max(1);
    let threads = if per_member <= 1 {
        ThreadCount::Serial
    } else {
        ThreadCount::Fixed(per_member)
    };
    let orders = [
        BranchOrder::ColorfulCore,
        BranchOrder::Degeneracy,
        BranchOrder::VertexId,
    ];
    let extras = [
        ExtraBound::ColorfulDegeneracy,
        ExtraBound::ColorfulHIndex,
        ExtraBound::ColorfulPath,
        ExtraBound::HIndex,
        ExtraBound::Degeneracy,
    ];
    let reductions = [
        ReductionConfig::default(),
        ReductionConfig::up_to_colorful_sup(),
        ReductionConfig::core_only(),
    ];
    let seed_counts = [8usize, 1, 16, 4, 32, 2];
    (0..members)
        .map(|i| {
            let mut cfg = base.clone();
            cfg.threads = threads;
            if i == 0 {
                return ("base".to_string(), cfg);
            }
            let extra = extras[i % extras.len()];
            cfg.branch_order = orders[i % orders.len()];
            cfg.bounds = BoundConfig::with_extra(extra);
            cfg.heuristic.seeds = seed_counts[i % seed_counts.len()].max(1);
            if i >= orders.len() {
                cfg.reductions = reductions[i % reductions.len()];
            }
            let label = format!(
                "{:?}/{:?}/seeds={}",
                cfg.branch_order, extra, cfg.heuristic.seeds
            )
            .to_lowercase();
            (label, cfg)
        })
        .collect()
}

/// Runs one exact member: reduction (shared through the solver's cache), heuristic
/// warm start offered into the shared pool, then the branch-and-bound.
fn run_member(
    solver: &RfcSolver,
    params: FairCliqueParams,
    cfg: &SearchConfig,
    ctrl: &SearchControl,
    pool: &SharedIncumbent,
) -> (Termination, SearchStats, bool, Option<Arc<ReducedEntry>>) {
    let mut stats = SearchStats::default();
    if ctrl.check_now() {
        return (stopped_termination(ctrl), stats, false, None);
    }
    let (reduced, hit) = match solver.reduced_controlled(params.k, &cfg.reductions, Some(ctrl)) {
        Ok(pair) => pair,
        Err(partial) => {
            stats.reduction = partial;
            return (stopped_termination(ctrl), stats, false, None);
        }
    };
    stats.reduction = reduced.stats.clone();

    if cfg.use_heuristic && !ctrl.check_now() {
        let outcome = heur_rfc(&reduced.graph, params, &cfg.heuristic);
        stats.heuristic_size = outcome.best.as_ref().map(|c| c.size());
        if let Some(clique) = outcome.best {
            pool.offer(clique.vertices);
        }
    }

    stats += &branch_and_bound(&reduced.graph, params, cfg, pool, ctrl);
    let termination = match ctrl.stop_reason() {
        Some(_) => stopped_termination(ctrl),
        None if pool.best_snapshot().is_none() => Termination::Infeasible,
        None => Termination::Optimal,
    };
    (termination, stats, hit, Some(reduced))
}

/// The anytime improver: a fairness-aware local search over the reduced graph that
/// keeps offering verified improvements into the shared pool until its control trips.
///
/// The working set is always a clique of the reduced graph (growth and swaps only
/// ever add vertices adjacent to everything kept), but it is allowed to be *unfair*
/// between offers — fairness is re-established by the balanced growth policy and
/// checked explicitly (against the **original** graph, under the query's own model)
/// before any offer. Moves are chosen by a seeded deterministic PRNG; the schedule
/// is greedy growth first, then a size-improving (1,2)-swap, then a plateau
/// (1,1)-swap, with a random restart after a stretch of stagnation.
fn run_improver(
    solver: &RfcSolver,
    model: FairnessModel,
    params: FairCliqueParams,
    base: &SearchConfig,
    ctrl: &SearchControl,
    pool: &SharedIncumbent,
    seed: u64,
) -> (u64, u64) {
    let original = solver.graph();
    let Ok((entry, _)) = solver.reduced_controlled(params.k, &base.reductions, Some(ctrl)) else {
        return (0, 0);
    };
    let g = &entry.graph;
    let active: Vec<VertexId> = g
        .vertices()
        .filter(|&v| g.degree(v) + 1 >= params.min_size())
        .collect();
    if active.is_empty() {
        return (0, 0);
    }

    let mut rng = SplitMix64::new(seed);
    let mut moves = 0u64;
    let mut improvements = 0u64;
    let mut current: Vec<VertexId> = Vec::new();
    let mut stagnation = 0u32;

    while !ctrl.check_now() {
        // Adopt the pool's best whenever the exact members have overtaken us. Its
        // vertices may be isolated in *our* reduced graph (a different member's
        // pipeline produced it); that is sound — this graph's adjacency is an
        // under-approximation of the original's, so moves stay cliques regardless.
        if let Some(best) = pool.best_snapshot() {
            if best.len() > current.len() {
                current = best;
                stagnation = 0;
            }
        }
        if current.is_empty() {
            current.push(active[rng.below(active.len())]);
        }

        let before = current.len();
        grow(g, &mut current, &mut rng, &mut moves);
        let mut progressed = current.len() > before;
        if offer_if_fair(original, model, &current, pool) {
            improvements += 1;
            progressed = true;
        }
        if !progressed {
            if swap_1_2(g, &mut current, &mut rng, &mut moves) {
                grow(g, &mut current, &mut rng, &mut moves);
                if offer_if_fair(original, model, &current, pool) {
                    improvements += 1;
                }
                stagnation = 0;
            } else {
                let _ = plateau_1_1(g, &mut current, &mut rng, &mut moves);
                stagnation += 1;
                if stagnation >= 8 {
                    perturb(&mut current, &active, &mut rng);
                    stagnation = 0;
                }
            }
        } else {
            stagnation = 0;
        }
    }
    (moves, improvements)
}

/// Vertices of `g` adjacent to every vertex of the (sorted) clique, excluding its
/// own members. Scans the sparsest member's neighborhood.
fn extenders(g: &AttributedGraph, clique: &[VertexId]) -> Vec<VertexId> {
    let Some(&pivot) = clique.iter().min_by_key(|&&v| g.degree(v)) else {
        return Vec::new();
    };
    g.neighbors(pivot)
        .iter()
        .copied()
        .filter(|&v| {
            clique.binary_search(&v).is_err()
                && clique.iter().all(|&u| u == pivot || g.has_edge(u, v))
        })
        .collect()
}

/// Greedily grows the clique to maximality, preferring the attribute that is
/// currently scarcer (random choice within the preferred side).
fn grow(g: &AttributedGraph, current: &mut Vec<VertexId>, rng: &mut SplitMix64, moves: &mut u64) {
    loop {
        let ext = extenders(g, current);
        if ext.is_empty() {
            return;
        }
        let counts = g.attribute_counts_of(current);
        let scarce = usize::from(counts.a() > counts.b());
        let preferred: Vec<VertexId> = ext
            .iter()
            .copied()
            .filter(|&v| g.attribute(v).index() == scarce)
            .collect();
        let pick = if preferred.is_empty() {
            ext[rng.below(ext.len())]
        } else {
            preferred[rng.below(preferred.len())]
        };
        let at = current.binary_search(&pick).unwrap_err();
        current.insert(at, pick);
        *moves += 1;
    }
}

/// Tries to trade one clique vertex for two adjacent outsiders (a strict size
/// improvement). The candidate pair scan is capped so a single attempt stays cheap.
fn swap_1_2(
    g: &AttributedGraph,
    current: &mut Vec<VertexId>,
    rng: &mut SplitMix64,
    moves: &mut u64,
) -> bool {
    if current.is_empty() {
        return false;
    }
    let u_at = rng.below(current.len());
    let u = current[u_at];
    let mut rest = current.clone();
    rest.remove(u_at);
    let mut cand: Vec<VertexId> = extenders(g, &rest)
        .into_iter()
        .filter(|&v| v != u)
        .collect();
    const PAIR_SCAN: usize = 24;
    shuffle_prefix(&mut cand, rng, PAIR_SCAN);
    let cap = cand.len().min(PAIR_SCAN);
    for i in 0..cap {
        for j in (i + 1)..cap {
            *moves += 1;
            if g.has_edge(cand[i], cand[j]) {
                rest.push(cand[i]);
                rest.push(cand[j]);
                rest.sort_unstable();
                *current = rest;
                return true;
            }
        }
    }
    false
}

/// Swaps one clique vertex for a different outsider of the same closed
/// neighborhood — a sideways move that relocates the search on a plateau.
fn plateau_1_1(
    g: &AttributedGraph,
    current: &mut Vec<VertexId>,
    rng: &mut SplitMix64,
    moves: &mut u64,
) -> bool {
    if current.is_empty() {
        return false;
    }
    let u_at = rng.below(current.len());
    let u = current[u_at];
    let mut rest = current.clone();
    rest.remove(u_at);
    let cand: Vec<VertexId> = extenders(g, &rest)
        .into_iter()
        .filter(|&v| v != u)
        .collect();
    if cand.is_empty() {
        return false;
    }
    rest.push(cand[rng.below(cand.len())]);
    rest.sort_unstable();
    *current = rest;
    *moves += 1;
    true
}

/// Random restart: keep a random two-thirds of the clique (still a clique) or, when
/// it is already minimal, reseed from a random active vertex.
fn perturb(current: &mut Vec<VertexId>, active: &[VertexId], rng: &mut SplitMix64) {
    if current.len() <= 1 {
        if !active.is_empty() {
            *current = vec![active[rng.below(active.len())]];
        }
        return;
    }
    let keep = (current.len() * 2 / 3).max(1);
    let len = current.len();
    shuffle_prefix(current, rng, len);
    current.truncate(keep);
    current.sort_unstable();
}

/// Offers the working clique into the pool if it can possibly matter and passes the
/// full fairness-plus-clique verification against the original graph.
fn offer_if_fair(
    original: &AttributedGraph,
    model: FairnessModel,
    current: &[VertexId],
    pool: &SharedIncumbent,
) -> bool {
    if current.len() < pool.useful_size() {
        return false;
    }
    if !crate::verify::is_fair_clique_under(original, current, model) {
        return false;
    }
    pool.offer(current.to_vec())
}

/// Partial Fisher–Yates: uniformly randomizes the first `n` slots of `items`.
fn shuffle_prefix(items: &mut [VertexId], rng: &mut SplitMix64, n: usize) {
    let len = items.len();
    for i in 0..n.min(len) {
        let j = i + rng.below(len - i);
        items.swap(i, j);
    }
}

/// SplitMix64: a tiny, deterministic, dependency-free PRNG for move choices.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Budget;
    use crate::verify;
    use rfc_graph::fixtures;

    #[test]
    fn portfolio_matches_serial_solve_on_all_models() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        for fairness in [
            FairnessModel::Relative { k: 3, delta: 1 },
            FairnessModel::Weak { k: 3 },
            FairnessModel::Strong { k: 3 },
        ] {
            let query = Query::new(fairness).with_config(SearchConfig::default());
            let serial = solver.solve(&query).unwrap();
            let outcome = solver
                .solve_portfolio(&query, &PortfolioConfig::new(4))
                .unwrap();
            assert_eq!(outcome.solution.termination, Termination::Optimal);
            assert_eq!(
                outcome.solution.best().unwrap().size(),
                serial.best().unwrap().size(),
                "{fairness}"
            );
            assert_eq!(outcome.solution.optimality_gap(), Some(0));
            assert_eq!(
                outcome.solution.upper_bound,
                Some(outcome.solution.best_size())
            );
            // Exactly one member decided the race.
            assert_eq!(outcome.members.iter().filter(|m| m.winner).count(), 1);
            let winner = outcome.members.iter().find(|m| m.winner).unwrap();
            assert!(winner.termination.is_complete());
            assert_eq!(outcome.members.len(), 4);
            assert!(verify::is_fair_clique_under(
                solver.graph(),
                &outcome.solution.best().unwrap().vertices,
                fairness
            ));
        }
    }

    #[test]
    fn winner_cancels_the_anytime_improver() {
        // The improver never completes on its own: the only way this call can
        // return under an unlimited budget is the winner's cancellation reaching
        // the improver's child token.
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let query = Query::new(FairnessModel::Relative { k: 3, delta: 1 });
        let outcome = solver
            .solve_portfolio(&query, &PortfolioConfig::new(2).with_anytime(true))
            .unwrap();
        assert_eq!(outcome.solution.termination, Termination::Optimal);
        assert_eq!(outcome.members.len(), 3);
        let anytime = outcome.members.last().unwrap();
        assert_eq!(anytime.label, "anytime");
        assert!(!anytime.winner);
        assert_eq!(anytime.termination, Termination::Cancelled);
        // The caller's own token stays untouched by the internal race.
        assert!(query.cancel.is_none());
    }

    #[test]
    fn budget_bound_portfolio_reports_a_finite_valid_gap() {
        // No heuristic, zero branch nodes: nothing is found, but every member still
        // finishes its reduction, so the colorful bound gives a finite gap.
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let config = SearchConfig {
            use_heuristic: false,
            ..SearchConfig::default()
        };
        let query = Query::new(FairnessModel::Relative { k: 3, delta: 1 })
            .with_config(config)
            .with_budget(Budget::default().with_node_limit(0));
        let outcome = solver
            .solve_portfolio(&query, &PortfolioConfig::new(3))
            .unwrap();
        assert_eq!(outcome.solution.termination, Termination::BudgetExhausted);
        assert!(outcome.solution.best().is_none());
        assert_eq!(outcome.solution.upper_bound, Some(7));
        assert_eq!(outcome.solution.optimality_gap(), Some(7));
        assert!(outcome.members.iter().all(|m| !m.winner));
    }

    #[test]
    fn node_limited_anytime_run_terminates_and_verifies() {
        // A pure node limit can never trip the improver's own control; the join
        // path must cancel it once the exact members are done. Whatever the
        // improver managed to offer must be a genuine fair clique.
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let fairness = FairnessModel::Relative { k: 3, delta: 1 };
        let config = SearchConfig {
            use_heuristic: false,
            ..SearchConfig::default()
        };
        let query = Query::new(fairness)
            .with_config(config)
            .with_budget(Budget::default().with_node_limit(0));
        let outcome = solver
            .solve_portfolio(&query, &PortfolioConfig::new(2).with_anytime(true))
            .unwrap();
        // Gap validity: finite, and zero exactly on certified-optimal outcomes.
        let gap = outcome.solution.optimality_gap().expect("reduction ran");
        assert_eq!(gap == 0, outcome.solution.termination.is_complete());
        if let Some(best) = outcome.solution.best() {
            assert!(verify::is_fair_clique_under(
                solver.graph(),
                &best.vertices,
                fairness
            ));
        }
    }

    #[test]
    fn pre_cancelled_portfolio_stops_at_entry() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let token = CancelToken::new();
        token.cancel();
        let outcome = solver
            .solve_portfolio(
                &Query::new(FairnessModel::Relative { k: 3, delta: 1 }).with_cancel(token),
                &PortfolioConfig::default(),
            )
            .unwrap();
        assert_eq!(outcome.solution.termination, Termination::Cancelled);
        assert!(outcome.members.is_empty());
        assert_eq!(outcome.solution.upper_bound, None);
        assert_eq!(outcome.solution.optimality_gap(), None);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        assert!(solver
            .solve_portfolio(
                &Query::new(FairnessModel::Weak { k: 0 }),
                &PortfolioConfig::default()
            )
            .is_err());
        assert_eq!(
            solver
                .solve_portfolio(
                    &Query::default().with_objective(Objective::TopK(0)),
                    &PortfolioConfig::default()
                )
                .unwrap_err(),
            SolveError::EmptyTopK
        );
    }

    #[test]
    fn member_configs_are_diverse_and_split_threads() {
        let base = SearchConfig::default().with_threads(ThreadCount::Fixed(8));
        let configs = member_configs(&base, 4);
        assert_eq!(configs[0].0, "base");
        assert_eq!(configs[0].1.threads, ThreadCount::Fixed(2));
        // Labels are distinct and later members vary the branch order.
        let labels: std::collections::HashSet<_> = configs.iter().map(|(l, _)| l.clone()).collect();
        assert_eq!(labels.len(), 4);
        assert!(configs[1..]
            .iter()
            .any(|(_, c)| c.branch_order != base.branch_order));
        // The first wave keeps the base reduction; member 3 may diverge.
        assert_eq!(configs[1].1.reductions, base.reductions);
        assert_eq!(configs[2].1.reductions, base.reductions);
        // A serial base pins every member to serial.
        let serial = member_configs(
            &SearchConfig::default().with_threads(ThreadCount::Serial),
            3,
        );
        assert!(serial.iter().all(|(_, c)| c.threads == ThreadCount::Serial));
    }

    #[test]
    fn improver_moves_preserve_the_clique_property() {
        // Drive the move primitives directly on the fig.1 graph and check the
        // working set stays a clique after every accepted move.
        let g = fixtures::fig1_graph();
        let mut rng = SplitMix64::new(7);
        let mut moves = 0u64;
        let mut current = vec![6u32];
        for _ in 0..200 {
            grow(&g, &mut current, &mut rng, &mut moves);
            assert!(is_clique(&g, &current));
            if !swap_1_2(&g, &mut current, &mut rng, &mut moves) {
                let _ = plateau_1_1(&g, &mut current, &mut rng, &mut moves);
            }
            assert!(is_clique(&g, &current), "after swap: {current:?}");
            let active: Vec<VertexId> = g.vertices().collect();
            if moves % 17 == 0 {
                perturb(&mut current, &active, &mut rng);
                assert!(is_clique(&g, &current));
            }
        }
        assert!(moves > 0);
    }

    fn is_clique(g: &AttributedGraph, vs: &[VertexId]) -> bool {
        vs.iter()
            .enumerate()
            .all(|(i, &u)| vs[i + 1..].iter().all(|&v| g.has_edge(u, v)))
    }
}
