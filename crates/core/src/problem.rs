//! Problem parameters and solution types.

use rfc_graph::{AttributeCounts, AttributedGraph, VertexId};

/// Errors from constructing [`FairCliqueParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `k` must be at least 1: with `k = 0` the fairness constraint degenerates and the
    /// problem collapses to (almost) plain maximum clique.
    KMustBePositive,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::KMustBePositive => write!(f, "parameter k must be at least 1"),
        }
    }
}

impl std::error::Error for ParamError {}

/// The parameters `(k, δ)` of the relative fair clique model (Definition 1).
///
/// A clique `C` is feasible when `cnt_C(a) ≥ k`, `cnt_C(b) ≥ k` and
/// `|cnt_C(a) − cnt_C(b)| ≤ δ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FairCliqueParams {
    /// Minimum number of vertices of each attribute.
    pub k: usize,
    /// Maximum allowed difference between the two attribute counts.
    pub delta: usize,
}

impl FairCliqueParams {
    /// Creates parameters, validating `k ≥ 1`.
    pub fn new(k: usize, delta: usize) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::KMustBePositive);
        }
        Ok(Self { k, delta })
    }

    /// The minimum possible size of a relative fair clique: `2k`.
    #[inline]
    pub fn min_size(&self) -> usize {
        2 * self.k
    }

    /// Whether a set with the given attribute counts satisfies the fairness constraint.
    #[inline]
    pub fn is_fair(&self, counts: AttributeCounts) -> bool {
        counts.is_fair(self.k, self.delta)
    }

    /// The largest fair total achievable from *caps* on the per-attribute counts: the
    /// maximum of `x + y` over `x ≤ cap_a`, `y ≤ cap_b`, `x ≥ k`, `y ≥ k`,
    /// `|x − y| ≤ δ`; `None` if no such `(x, y)` exists.
    ///
    /// This is the workhorse behind all attribute-aware upper bounds: any sound cap on
    /// how many vertices of each attribute a fair clique can contain converts into a cap
    /// on its total size.
    pub fn best_fair_total(&self, cap_a: usize, cap_b: usize) -> Option<usize> {
        let lo = cap_a.min(cap_b);
        let hi = cap_a.max(cap_b);
        if lo < self.k {
            return None;
        }
        Some(lo + hi.min(lo + self.delta))
    }
}

impl std::fmt::Display for FairCliqueParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(k={}, δ={})", self.k, self.delta)
    }
}

/// A relative fair clique: a set of vertices together with its attribute counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairClique {
    /// The clique's vertices, sorted by id.
    pub vertices: Vec<VertexId>,
    /// Attribute counts of the clique.
    pub counts: AttributeCounts,
}

impl FairClique {
    /// Builds a fair-clique value from a vertex set (sorting it and computing counts).
    ///
    /// This does **not** check the clique or fairness properties — see
    /// [`crate::verify::is_relative_fair_clique`] for that.
    pub fn from_vertices(g: &AttributedGraph, mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        let counts = g.attribute_counts_of(&vertices);
        Self { vertices, counts }
    }

    /// Number of vertices in the clique.
    #[inline]
    pub fn size(&self) -> usize {
        self.vertices.len()
    }
}

impl std::fmt::Display for FairClique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FairClique(size={}, counts={})",
            self.size(),
            self.counts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    #[test]
    fn params_validation() {
        assert!(FairCliqueParams::new(0, 3).is_err());
        let p = FairCliqueParams::new(2, 1).unwrap();
        assert_eq!(p.min_size(), 4);
        assert_eq!(p.to_string(), "(k=2, δ=1)");
        assert_eq!(
            FairCliqueParams::new(0, 0).unwrap_err().to_string(),
            "parameter k must be at least 1"
        );
    }

    #[test]
    fn fairness_through_params() {
        let p = FairCliqueParams::new(3, 1).unwrap();
        assert!(p.is_fair(AttributeCounts::from_counts(3, 4)));
        assert!(!p.is_fair(AttributeCounts::from_counts(2, 4)));
        assert!(!p.is_fair(AttributeCounts::from_counts(4, 6)));
    }

    #[test]
    fn best_fair_total_cases() {
        let p = FairCliqueParams::new(3, 2).unwrap();
        // Caps (5, 9): best is 5 + 7 = 12.
        assert_eq!(p.best_fair_total(5, 9), Some(12));
        assert_eq!(p.best_fair_total(9, 5), Some(12));
        // Caps below k on one side: infeasible.
        assert_eq!(p.best_fair_total(2, 9), None);
        // Perfectly balanced caps.
        assert_eq!(p.best_fair_total(4, 4), Some(8));
        // delta = 0.
        let p0 = FairCliqueParams::new(1, 0).unwrap();
        assert_eq!(p0.best_fair_total(3, 7), Some(6));
    }

    #[test]
    fn fair_clique_from_vertices_sorts_and_counts() {
        let g = fixtures::fig1_graph();
        let c = FairClique::from_vertices(&g, vec![9, 6, 7, 7, 10]);
        assert_eq!(c.vertices, vec![6, 7, 9, 10]);
        assert_eq!(c.size(), 4);
        assert_eq!(c.counts.a(), 1); // v11
        assert_eq!(c.counts.b(), 3); // v7, v8, v10
        assert!(c.to_string().contains("size=4"));
    }
}
