//! Problem parameters and solution types.

use rfc_graph::{AttributeCounts, AttributedGraph, VertexId};

/// Errors from constructing [`FairCliqueParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `k` must be at least 1: with `k = 0` the fairness constraint degenerates and the
    /// problem collapses to (almost) plain maximum clique.
    KMustBePositive,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::KMustBePositive => write!(f, "parameter k must be at least 1"),
        }
    }
}

impl std::error::Error for ParamError {}

/// A first-class fairness model, as surveyed in Section II of the paper.
///
/// The paper's search algorithms are parameterized by the *relative* model `(k, δ)`;
/// the weak and strong models of the earlier literature are exactly its two extremes:
///
/// * [`Weak`](FairnessModel::Weak) — at least `k` vertices of each attribute, no
///   constraint on the imbalance (`δ = ∞`).
/// * [`Strong`](FairnessModel::Strong) — exactly equal attribute counts, both at least
///   `k` (`δ = 0`).
/// * [`Relative`](FairnessModel::Relative) — the general `(k, δ)` model of Definition 1.
///
/// [`resolve`](FairnessModel::resolve) maps any model onto concrete
/// [`FairCliqueParams`] for the search machinery (reductions, bounds, heuristic, and
/// the branch-and-bound all consume the resolved parameters), while
/// [`is_fair`](FairnessModel::is_fair) states each model's constraint directly so
/// verification never depends on that mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessModel {
    /// The relative fair clique model: `cnt(a) ≥ k`, `cnt(b) ≥ k`,
    /// `|cnt(a) − cnt(b)| ≤ δ`.
    Relative {
        /// Minimum number of vertices of each attribute.
        k: usize,
        /// Maximum allowed difference between the two attribute counts.
        delta: usize,
    },
    /// The weak fair clique model: `cnt(a) ≥ k` and `cnt(b) ≥ k`.
    Weak {
        /// Minimum number of vertices of each attribute.
        k: usize,
    },
    /// The strong fair clique model: `cnt(a) = cnt(b) ≥ k`.
    Strong {
        /// Minimum (and exactly equal) number of vertices of each attribute.
        k: usize,
    },
}

impl FairnessModel {
    /// The `k` parameter common to all three models.
    #[inline]
    pub fn k(&self) -> usize {
        match *self {
            FairnessModel::Relative { k, .. }
            | FairnessModel::Weak { k }
            | FairnessModel::Strong { k } => k,
        }
    }

    /// The minimum possible size of a fair clique under this model: `2k`.
    #[inline]
    pub fn min_size(&self) -> usize {
        2 * self.k()
    }

    /// Validates the model's parameters (`k ≥ 1` for every model).
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.k() == 0 {
            return Err(ParamError::KMustBePositive);
        }
        Ok(())
    }

    /// Whether attribute counts satisfy this model's fairness constraint, stated
    /// directly per model (no δ-remapping involved) so it can serve as an independent
    /// oracle for [`resolve`](FairnessModel::resolve).
    #[inline]
    pub fn is_fair(&self, counts: AttributeCounts) -> bool {
        let (a, b) = (counts.a(), counts.b());
        match *self {
            FairnessModel::Relative { k, delta } => a >= k && b >= k && a.abs_diff(b) <= delta,
            FairnessModel::Weak { k } => a >= k && b >= k,
            FairnessModel::Strong { k } => a == b && a >= k,
        }
    }

    /// Resolves the model to concrete relative-model parameters for a graph with
    /// `num_vertices` vertices.
    ///
    /// The weak model becomes `δ = num_vertices` — no clique of the graph can have an
    /// imbalance above its vertex count, so the constraint never binds; the strong
    /// model becomes `δ = 0`. Within any one graph the resolved parameters accept
    /// exactly the same vertex sets as [`is_fair`](FairnessModel::is_fair).
    pub fn resolve(&self, num_vertices: usize) -> Result<FairCliqueParams, ParamError> {
        match *self {
            FairnessModel::Relative { k, delta } => FairCliqueParams::new(k, delta),
            FairnessModel::Weak { k } => FairCliqueParams::new(k, num_vertices.max(1)),
            FairnessModel::Strong { k } => FairCliqueParams::new(k, 0),
        }
    }
}

impl Default for FairnessModel {
    /// The paper's running-example parameters, `relative (k=2, δ=1)`.
    fn default() -> Self {
        FairnessModel::Relative { k: 2, delta: 1 }
    }
}

impl std::fmt::Display for FairnessModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FairnessModel::Relative { k, delta } => write!(f, "relative (k={k}, δ={delta})"),
            FairnessModel::Weak { k } => write!(f, "weak (k={k})"),
            FairnessModel::Strong { k } => write!(f, "strong (k={k})"),
        }
    }
}

/// The parameters `(k, δ)` of the relative fair clique model (Definition 1).
///
/// A clique `C` is feasible when `cnt_C(a) ≥ k`, `cnt_C(b) ≥ k` and
/// `|cnt_C(a) − cnt_C(b)| ≤ δ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FairCliqueParams {
    /// Minimum number of vertices of each attribute.
    pub k: usize,
    /// Maximum allowed difference between the two attribute counts.
    pub delta: usize,
}

impl FairCliqueParams {
    /// Creates parameters, validating `k ≥ 1`.
    pub fn new(k: usize, delta: usize) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::KMustBePositive);
        }
        Ok(Self { k, delta })
    }

    /// The minimum possible size of a relative fair clique: `2k`.
    #[inline]
    pub fn min_size(&self) -> usize {
        2 * self.k
    }

    /// Whether a set with the given attribute counts satisfies the fairness constraint.
    #[inline]
    pub fn is_fair(&self, counts: AttributeCounts) -> bool {
        counts.is_fair(self.k, self.delta)
    }

    /// The largest fair total achievable from *caps* on the per-attribute counts: the
    /// maximum of `x + y` over `x ≤ cap_a`, `y ≤ cap_b`, `x ≥ k`, `y ≥ k`,
    /// `|x − y| ≤ δ`; `None` if no such `(x, y)` exists.
    ///
    /// This is the workhorse behind all attribute-aware upper bounds: any sound cap on
    /// how many vertices of each attribute a fair clique can contain converts into a cap
    /// on its total size.
    pub fn best_fair_total(&self, cap_a: usize, cap_b: usize) -> Option<usize> {
        let lo = cap_a.min(cap_b);
        let hi = cap_a.max(cap_b);
        if lo < self.k {
            return None;
        }
        Some(lo + hi.min(lo + self.delta))
    }
}

impl std::fmt::Display for FairCliqueParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(k={}, δ={})", self.k, self.delta)
    }
}

/// A relative fair clique: a set of vertices together with its attribute counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairClique {
    /// The clique's vertices, sorted by id.
    pub vertices: Vec<VertexId>,
    /// Attribute counts of the clique.
    pub counts: AttributeCounts,
}

impl FairClique {
    /// Builds a fair-clique value from a vertex set (sorting it and computing counts).
    ///
    /// This does **not** check the clique or fairness properties — see
    /// [`crate::verify::is_relative_fair_clique`] for that.
    pub fn from_vertices(g: &AttributedGraph, mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        let counts = g.attribute_counts_of(&vertices);
        Self { vertices, counts }
    }

    /// Number of vertices in the clique.
    #[inline]
    pub fn size(&self) -> usize {
        self.vertices.len()
    }
}

impl std::fmt::Display for FairClique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FairClique(size={}, counts={})",
            self.size(),
            self.counts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    #[test]
    fn params_validation() {
        assert!(FairCliqueParams::new(0, 3).is_err());
        let p = FairCliqueParams::new(2, 1).unwrap();
        assert_eq!(p.min_size(), 4);
        assert_eq!(p.to_string(), "(k=2, δ=1)");
        assert_eq!(
            FairCliqueParams::new(0, 0).unwrap_err().to_string(),
            "parameter k must be at least 1"
        );
    }

    #[test]
    fn fairness_through_params() {
        let p = FairCliqueParams::new(3, 1).unwrap();
        assert!(p.is_fair(AttributeCounts::from_counts(3, 4)));
        assert!(!p.is_fair(AttributeCounts::from_counts(2, 4)));
        assert!(!p.is_fair(AttributeCounts::from_counts(4, 6)));
    }

    #[test]
    fn best_fair_total_cases() {
        let p = FairCliqueParams::new(3, 2).unwrap();
        // Caps (5, 9): best is 5 + 7 = 12.
        assert_eq!(p.best_fair_total(5, 9), Some(12));
        assert_eq!(p.best_fair_total(9, 5), Some(12));
        // Caps below k on one side: infeasible.
        assert_eq!(p.best_fair_total(2, 9), None);
        // Perfectly balanced caps.
        assert_eq!(p.best_fair_total(4, 4), Some(8));
        // delta = 0.
        let p0 = FairCliqueParams::new(1, 0).unwrap();
        assert_eq!(p0.best_fair_total(3, 7), Some(6));
    }

    #[test]
    fn fairness_model_accessors_and_validation() {
        let rel = FairnessModel::Relative { k: 3, delta: 1 };
        let weak = FairnessModel::Weak { k: 2 };
        let strong = FairnessModel::Strong { k: 4 };
        assert_eq!((rel.k(), weak.k(), strong.k()), (3, 2, 4));
        assert_eq!(
            (rel.min_size(), weak.min_size(), strong.min_size()),
            (6, 4, 8)
        );
        assert!(rel.validate().is_ok());
        assert_eq!(
            FairnessModel::Weak { k: 0 }.validate(),
            Err(ParamError::KMustBePositive)
        );
        assert_eq!(rel.to_string(), "relative (k=3, δ=1)");
        assert_eq!(weak.to_string(), "weak (k=2)");
        assert_eq!(strong.to_string(), "strong (k=4)");
    }

    #[test]
    fn fairness_model_native_constraints() {
        let counts = AttributeCounts::from_counts(4, 2);
        assert!(FairnessModel::Weak { k: 2 }.is_fair(counts));
        assert!(!FairnessModel::Weak { k: 3 }.is_fair(counts));
        assert!(!FairnessModel::Relative { k: 2, delta: 1 }.is_fair(counts));
        assert!(FairnessModel::Relative { k: 2, delta: 2 }.is_fair(counts));
        assert!(!FairnessModel::Strong { k: 2 }.is_fair(counts));
        assert!(FairnessModel::Strong { k: 2 }.is_fair(AttributeCounts::from_counts(3, 3)));
        assert!(!FairnessModel::Strong { k: 4 }.is_fair(AttributeCounts::from_counts(3, 3)));
    }

    #[test]
    fn fairness_model_resolution_matches_native_constraints() {
        // For every model and every reachable (a, b) count pair within an n-vertex
        // graph, the resolved relative parameters accept exactly the same counts.
        let n = 12usize;
        let models = [
            FairnessModel::Relative { k: 2, delta: 1 },
            FairnessModel::Relative { k: 1, delta: 0 },
            FairnessModel::Weak { k: 2 },
            FairnessModel::Strong { k: 3 },
        ];
        for model in models {
            let params = model.resolve(n).unwrap();
            for a in 0..=n {
                for b in 0..=(n - a) {
                    let counts = AttributeCounts::from_counts(a, b);
                    assert_eq!(
                        model.is_fair(counts),
                        params.is_fair(counts),
                        "{model} with counts ({a}, {b})"
                    );
                }
            }
        }
        // Resolution validates k.
        assert!(FairnessModel::Strong { k: 0 }.resolve(5).is_err());
        // The weak model resolves to a δ that can never bind, even on empty graphs.
        assert_eq!(FairnessModel::Weak { k: 1 }.resolve(0).unwrap().delta, 1);
    }

    #[test]
    fn fair_clique_from_vertices_sorts_and_counts() {
        let g = fixtures::fig1_graph();
        let c = FairClique::from_vertices(&g, vec![9, 6, 7, 7, 10]);
        assert_eq!(c.vertices, vec![6, 7, 9, 10]);
        assert_eq!(c.size(), 4);
        assert_eq!(c.counts.a(), 1); // v11
        assert_eq!(c.counts.b(), 3); // v7, v8, v10
        assert!(c.to_string().contains("size=4"));
    }
}
