//! Vertex-level reductions based on colorful k-cores (Lemmas 1 and 2).
//!
//! Any relative fair clique with parameter `k` is contained in the colorful
//! `(k−1)`-core (Lemma 1) and, more strongly, in the *enhanced* colorful `(k−1)`-core
//! (Lemma 2). These wrappers run the corresponding peelings from `rfc-graph` and
//! materialize the surviving subgraph over the original vertex-id space.

use rfc_graph::colorful::{colorful_k_core_mask, enhanced_colorful_k_core_mask};
use rfc_graph::coloring::greedy_coloring;
use rfc_graph::subgraph::vertex_filtered_subgraph;
use rfc_graph::AttributedGraph;

/// The colorful `(k−1)`-core reduction (`ColorfulCore`, Lemma 1).
///
/// Returns a graph on the same vertex-id space containing only the edges induced by the
/// colorful `(k−1)`-core.
pub fn colorful_core_reduction(g: &AttributedGraph, k: usize) -> AttributedGraph {
    let coloring = greedy_coloring(g);
    let mask = colorful_k_core_mask(g, &coloring, k.saturating_sub(1));
    vertex_filtered_subgraph(g, &mask)
}

/// The enhanced colorful `(k−1)`-core reduction (`EnColorfulCore`, Lemma 2).
pub fn en_colorful_core_reduction(g: &AttributedGraph, k: usize) -> AttributedGraph {
    let coloring = greedy_coloring(g);
    let mask = enhanced_colorful_k_core_mask(g, &coloring, k.saturating_sub(1));
    vertex_filtered_subgraph(g, &mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    #[test]
    fn colorful_core_reduction_keeps_planted_clique() {
        let g = fixtures::fig1_graph();
        for k in 1..=3usize {
            let reduced = colorful_core_reduction(&g, k);
            for v in [6u32, 7, 9, 10, 11, 12, 13, 14] {
                assert!(
                    reduced.degree(v) >= 7,
                    "k={k}: clique vertex {v} lost clique edges"
                );
            }
        }
    }

    #[test]
    fn enhanced_is_at_most_plain() {
        let g = fixtures::fig1_graph();
        for k in 1..=4usize {
            let plain = colorful_core_reduction(&g, k);
            let enhanced = en_colorful_core_reduction(&g, k);
            assert!(
                enhanced.num_edges() <= plain.num_edges(),
                "k={k}: enhanced kept more edges than plain"
            );
            assert!(
                enhanced.num_non_isolated_vertices() <= plain.num_non_isolated_vertices(),
                "k={k}: enhanced kept more vertices than plain"
            );
        }
    }

    #[test]
    fn large_k_empties_small_graph() {
        let g = fixtures::fig1_graph();
        let reduced = en_colorful_core_reduction(&g, 10);
        assert_eq!(reduced.num_edges(), 0);
    }

    #[test]
    fn k_equal_one_is_mild() {
        // For k = 1 the (k-1)-core requirement is ED >= 0, which keeps everything.
        let g = fixtures::fig1_graph();
        let reduced = en_colorful_core_reduction(&g, 1);
        assert_eq!(reduced.num_edges(), g.num_edges());
    }
}
