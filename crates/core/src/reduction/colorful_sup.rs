//! The colorful-support reduction `ColorfulSup` (Algorithm 1, Lemma 3).
//!
//! For an edge `(u, v)` and attribute `x`, the colorful support `sup_x(u, v)` is the
//! number of distinct colors among the common neighbors of `u` and `v` with attribute
//! `x` (Definition 6). Inside a relative fair clique of size ≥ 2k every edge must be
//! supported by enough differently-colored common neighbors of each attribute
//! (`k−2` of the endpoints' own attribute when they share it, `k` of the other, and
//! `k−1`/`k−1` for mixed edges), so edges falling short are peeled iteratively.

use rfc_graph::coloring::greedy_coloring;
use rfc_graph::subgraph::edge_filtered_subgraph;
use rfc_graph::AttributedGraph;

use super::edge_support::{peel_edges, support_requirements};

/// Runs `ColorfulSup` and returns the surviving subgraph (same vertex-id space).
pub fn colorful_sup_reduction(g: &AttributedGraph, k: usize) -> AttributedGraph {
    let alive = colorful_sup_alive_edges(g, k);
    edge_filtered_subgraph(g, &alive)
}

/// Runs `ColorfulSup` and returns the edge aliveness mask (useful for composing with
/// other edge filters without materializing intermediate graphs).
pub fn colorful_sup_alive_edges(g: &AttributedGraph, k: usize) -> Vec<bool> {
    let coloring = greedy_coloring(g);
    peel_edges(g, &coloring, |state, e| {
        let (u, v) = g.edge_endpoints(e);
        let (need_a, need_b) = support_requirements(g.attribute(u), g.attribute(v), k);
        let (sup_a, sup_b) = state.colorful_support(e);
        sup_a < need_a || sup_b < need_b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_max_fair_clique;
    use crate::problem::FairCliqueParams;
    use rfc_graph::fixtures;

    #[test]
    fn removes_edge_from_example2() {
        // Example 2: for k = 3, edge (v2, v5) has sup_b = 1 < k - 1 = 2 and must go.
        let g = fixtures::fig1_graph();
        let reduced = colorful_sup_reduction(&g, 3);
        assert!(!reduced.has_edge(1, 4));
    }

    #[test]
    fn keeps_planted_clique_edges() {
        let g = fixtures::fig1_graph();
        for k in 1..=3usize {
            let reduced = colorful_sup_reduction(&g, k);
            let clique = [6u32, 7, 9, 10, 11, 12, 13, 14];
            for (i, &u) in clique.iter().enumerate() {
                for &v in &clique[i + 1..] {
                    assert!(reduced.has_edge(u, v), "k={k}: lost clique edge ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn large_k_removes_all_edges() {
        let g = fixtures::fig1_graph();
        let reduced = colorful_sup_reduction(&g, 6);
        assert_eq!(reduced.num_edges(), 0);
    }

    #[test]
    fn reduction_is_safe_for_the_optimum() {
        // The maximum fair clique of the original graph must survive the reduction
        // unchanged (Lemma 3 safety).
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let best_before = brute_force_max_fair_clique(&g, params)
            .expect("fixture has a fair clique")
            .size();
        let reduced = colorful_sup_reduction(&g, params.k);
        let best_after = brute_force_max_fair_clique(&reduced, params)
            .expect("optimum survives reduction")
            .size();
        assert_eq!(best_before, best_after);
    }

    #[test]
    fn k_zero_and_one_keep_all_triangle_edges() {
        // With k <= 1 the requirements are at most (0, 1)/(1, 0)/(0, 0); edges inside
        // any triangle with both attributes present survive.
        let g = fixtures::balanced_clique(4);
        let reduced = colorful_sup_reduction(&g, 1);
        assert_eq!(reduced.num_edges(), g.num_edges());
    }
}
