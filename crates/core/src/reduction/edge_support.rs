//! Shared machinery for the edge-peeling (truss-style) reductions.
//!
//! Both `ColorfulSup` and `EnColorfulSup` maintain, for every edge `(u, v)`, the
//! multiset of `(color, attribute)` pairs of the common neighbors of `u` and `v`, and
//! peel edges whose support drops below a threshold. [`EdgeSupportState`] owns that
//! per-edge state and [`peel_edges`] runs the generic peeling loop; the two reductions
//! only differ in their violation predicate.

use std::collections::HashMap;
use std::collections::VecDeque;

use rfc_graph::colorful::ColorGroups;
use rfc_graph::coloring::Coloring;
use rfc_graph::{Attribute, AttributedGraph, EdgeId};

/// Per-edge color/attribute counts over common neighbors, with the derived
/// exclusive/mixed color groups.
#[derive(Debug, Clone)]
pub struct EdgeSupportState {
    /// `counts[e][color] = [#common neighbors with attribute a, #with b]`.
    counts: Vec<HashMap<u32, [u32; 2]>>,
    /// Color groups of every edge, kept in sync with `counts`.
    groups: Vec<ColorGroups>,
}

impl EdgeSupportState {
    /// Builds the state by enumerating, for every edge, the common neighbors of its
    /// endpoints. Runs in `O(Σ_(u,v)∈E (deg(u) + deg(v)))` time.
    pub fn new(g: &AttributedGraph, coloring: &Coloring) -> Self {
        let m = g.num_edges();
        let mut counts: Vec<HashMap<u32, [u32; 2]>> = vec![HashMap::new(); m];
        for e in 0..m as EdgeId {
            let (u, v) = g.edge_endpoints(e);
            let map = &mut counts[e as usize];
            g.for_each_common_neighbor(u, v, |w, _, _| {
                let entry = map.entry(coloring.color(w)).or_insert([0, 0]);
                entry[g.attribute(w).index()] += 1;
            });
        }
        let groups = counts
            .iter()
            .map(|map| ColorGroups::from_counts(map.values()))
            .collect();
        Self { counts, groups }
    }

    /// The color groups (exclusive-a, exclusive-b, mixed) of edge `e`.
    #[inline]
    pub fn groups(&self, e: EdgeId) -> ColorGroups {
        self.groups[e as usize]
    }

    /// The plain colorful supports `(sup_a, sup_b)` of edge `e` (Definition 6): the
    /// number of distinct colors among common neighbors with each attribute. Note that
    /// `sup_attr = exclusive_attr + mixed`.
    #[inline]
    pub fn colorful_support(&self, e: EdgeId) -> (usize, usize) {
        let g = self.groups[e as usize];
        (g.exclusive[0] + g.mixed, g.exclusive[1] + g.mixed)
    }

    /// Records that vertex `w` (with the given color and attribute) is no longer a
    /// common neighbor of edge `e`'s endpoints, updating the color groups.
    pub fn remove_common_neighbor(&mut self, e: EdgeId, color: u32, attr: Attribute) {
        let map = &mut self.counts[e as usize];
        let entry = map
            .get_mut(&color)
            .expect("removing a common neighbor that was never counted");
        let before = (entry[0] > 0, entry[1] > 0);
        let slot = &mut entry[attr.index()];
        debug_assert!(*slot > 0, "common-neighbor count underflow");
        *slot -= 1;
        let after = (entry[0] > 0, entry[1] > 0);
        if entry[0] == 0 && entry[1] == 0 {
            map.remove(&color);
        }
        if before != after {
            let groups = &mut self.groups[e as usize];
            match before {
                (true, true) => groups.mixed -= 1,
                (true, false) => groups.exclusive[0] -= 1,
                (false, true) => groups.exclusive[1] -= 1,
                (false, false) => unreachable!("a counted color must have a positive count"),
            }
            match after {
                (true, true) => groups.mixed += 1,
                (true, false) => groups.exclusive[0] += 1,
                (false, true) => groups.exclusive[1] += 1,
                (false, false) => {}
            }
        }
    }
}

/// Per-attribute support an edge must offer for its endpoints to possibly lie in a
/// relative fair clique of size ≥ 2k (the three cases of Lemma 3 / Lemma 4).
///
/// Returns `(need_a, need_b)`.
pub fn support_requirements(attr_u: Attribute, attr_v: Attribute, k: usize) -> (usize, usize) {
    use Attribute::{A, B};
    match (attr_u, attr_v) {
        (A, A) => (k.saturating_sub(2), k),
        (B, B) => (k, k.saturating_sub(2)),
        _ => (k.saturating_sub(1), k.saturating_sub(1)),
    }
}

/// Generic truss-style edge peeling.
///
/// `violates(state, edge)` must return `true` when the edge can no longer belong to any
/// fair clique; such edges are removed and the supports of the edges of every triangle
/// they participated in are decremented, possibly cascading. Returns the aliveness mask
/// over edge ids.
///
/// Bookkeeping detail: an edge is *condemned* (queued) as soon as it violates the
/// predicate, but it only stops counting as a triangle member when it is actually
/// processed. This way every triangle is torn down exactly once — when its first edge is
/// processed — so the supports of the surviving edges stay exact (supports are
/// monotonically non-increasing, so condemned edges can never be resurrected).
pub fn peel_edges<F>(g: &AttributedGraph, coloring: &Coloring, violates: F) -> Vec<bool>
where
    F: Fn(&EdgeSupportState, EdgeId) -> bool,
{
    let m = g.num_edges();
    let mut state = EdgeSupportState::new(g, coloring);
    let mut alive = vec![true; m];
    let mut queued = vec![false; m];
    let mut queue: VecDeque<EdgeId> = VecDeque::new();

    for e in 0..m as EdgeId {
        if violates(&state, e) {
            queued[e as usize] = true;
            queue.push_back(e);
        }
    }

    while let Some(e) = queue.pop_front() {
        alive[e as usize] = false;
        let (u, v) = g.edge_endpoints(e);
        let color_u = coloring.color(u);
        let color_v = coloring.color(v);
        let attr_u = g.attribute(u);
        let attr_v = g.attribute(v);
        // Collect the live triangles first to avoid borrowing conflicts in the closure.
        let mut affected: Vec<(EdgeId, EdgeId)> = Vec::new();
        g.for_each_common_neighbor(u, v, |_, e_uw, e_vw| {
            if alive[e_uw as usize] && alive[e_vw as usize] {
                affected.push((e_uw, e_vw));
            }
        });
        for (e_uw, e_vw) in affected {
            // The triangle (u, v, w) disappears: edge (u, w) loses common neighbor v and
            // edge (v, w) loses common neighbor u.
            state.remove_common_neighbor(e_uw, color_v, attr_v);
            if !queued[e_uw as usize] && violates(&state, e_uw) {
                queued[e_uw as usize] = true;
                queue.push_back(e_uw);
            }
            state.remove_common_neighbor(e_vw, color_u, attr_u);
            if !queued[e_vw as usize] && violates(&state, e_vw) {
                queued[e_vw as usize] = true;
                queue.push_back(e_vw);
            }
        }
    }
    alive
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::coloring::greedy_coloring;
    use rfc_graph::fixtures;

    #[test]
    fn support_requirements_match_lemma3() {
        use Attribute::{A, B};
        assert_eq!(support_requirements(A, A, 4), (2, 4));
        assert_eq!(support_requirements(B, B, 4), (4, 2));
        assert_eq!(support_requirements(A, B, 4), (3, 3));
        assert_eq!(support_requirements(B, A, 4), (3, 3));
        // Saturation for tiny k.
        assert_eq!(support_requirements(A, A, 1), (0, 1));
        assert_eq!(support_requirements(A, B, 1), (0, 0));
    }

    #[test]
    fn initial_supports_match_example2() {
        // Edge (v2, v5) of the Fig. 1 fixture: common neighbors {v1, v6, v9} with
        // attributes {a, a, b}; v1 and v6 are adjacent so they get distinct colors,
        // giving sup_a = 2, sup_b = 1.
        let g = fixtures::fig1_graph();
        let coloring = greedy_coloring(&g);
        let state = EdgeSupportState::new(&g, &coloring);
        let e = g.edge_id(1, 4).expect("edge (v2, v5) exists");
        assert_eq!(state.colorful_support(e), (2, 1));
    }

    #[test]
    fn supports_inside_clique() {
        // In the 8-clique (3 b's and 5 a's), an edge between two a-vertices has 3 a- and
        // 3 b-colored common neighbors inside the clique (colors are all distinct), plus
        // possibly more outside.
        let g = fixtures::fig1_graph();
        let coloring = greedy_coloring(&g);
        let state = EdgeSupportState::new(&g, &coloring);
        let e = g.edge_id(10, 11).unwrap(); // (v11, v12), both a
        let (sa, sb) = state.colorful_support(e);
        assert!(
            sa >= 3 && sb >= 3,
            "clique edge support too small: ({sa}, {sb})"
        );
    }

    #[test]
    fn remove_common_neighbor_reclassifies_colors() {
        let g = fixtures::fig2_graph(); // edge (0,1) with 7 common neighbors, one shared color class
        let coloring = greedy_coloring(&g);
        let mut state = EdgeSupportState::new(&g, &coloring);
        let e = g.edge_id(0, 1).unwrap();
        // All seven w's are pairwise non-adjacent, so they share one color: the single
        // color is mixed (used by both a- and b-attributed neighbors).
        let before = state.groups(e);
        assert_eq!(before.mixed, 1);
        assert_eq!(before.exclusive, [0, 0]);
        // Remove all four a-attributed common neighbors: the color becomes exclusive-b.
        for w in 2..=5u32 {
            state.remove_common_neighbor(e, coloring.color(w), Attribute::A);
        }
        let after = state.groups(e);
        assert_eq!(after.mixed, 0);
        assert_eq!(after.exclusive, [0, 1]);
        assert_eq!(state.colorful_support(e), (0, 1));
    }

    #[test]
    fn peeling_with_always_false_keeps_everything() {
        let g = fixtures::fig1_graph();
        let coloring = greedy_coloring(&g);
        let alive = peel_edges(&g, &coloring, |_, _| false);
        assert!(alive.iter().all(|&a| a));
    }

    #[test]
    fn peeling_with_always_true_removes_everything() {
        let g = fixtures::fig1_graph();
        let coloring = greedy_coloring(&g);
        let alive = peel_edges(&g, &coloring, |_, _| true);
        assert!(alive.iter().all(|&a| !a));
    }
}
