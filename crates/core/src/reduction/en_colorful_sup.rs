//! The enhanced colorful-support reduction `EnColorfulSup` (Definition 7, Lemma 4).
//!
//! `ColorfulSup` counts the colors of common neighbors per attribute independently, so a
//! color shared between an a-neighbor and a b-neighbor is counted for both — but inside
//! a clique each color can serve only one attribute. The enhanced variant therefore
//! partitions the common-neighbor colors of an edge into exclusive-a, exclusive-b and
//! mixed groups and assigns the mixed colors to attributes greedily against the edge's
//! demand (Example 3 of the paper): first top up the endpoints' own-attribute demand,
//! then the other attribute. Edges whose assigned supports still fall short are peeled.

use rfc_graph::coloring::greedy_coloring;
use rfc_graph::subgraph::edge_filtered_subgraph;
use rfc_graph::AttributedGraph;

use super::edge_support::{peel_edges, support_requirements};

/// Runs `EnColorfulSup` and returns the surviving subgraph (same vertex-id space).
pub fn en_colorful_sup_reduction(g: &AttributedGraph, k: usize) -> AttributedGraph {
    let alive = en_colorful_sup_alive_edges(g, k);
    edge_filtered_subgraph(g, &alive)
}

/// Runs `EnColorfulSup` and returns the edge aliveness mask.
pub fn en_colorful_sup_alive_edges(g: &AttributedGraph, k: usize) -> Vec<bool> {
    let coloring = greedy_coloring(g);
    peel_edges(g, &coloring, |state, e| {
        let (u, v) = g.edge_endpoints(e);
        let (need_a, need_b) = support_requirements(g.attribute(u), g.attribute(v), k);
        let (gsup_a, gsup_b) = state.groups(e).demand_assignment(need_a, need_b);
        gsup_a < need_a || gsup_b < need_b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_max_fair_clique;
    use crate::problem::FairCliqueParams;
    use crate::reduction::colorful_sup::colorful_sup_reduction;
    use rfc_graph::fixtures;
    use rfc_graph::{Attribute, GraphBuilder};

    #[test]
    fn enhanced_never_keeps_more_than_plain() {
        let g = fixtures::fig1_graph();
        for k in 1..=4usize {
            let plain = colorful_sup_reduction(&g, k);
            let enhanced = en_colorful_sup_reduction(&g, k);
            assert!(
                enhanced.num_edges() <= plain.num_edges(),
                "k={k}: enhanced kept more edges"
            );
        }
    }

    #[test]
    fn keeps_planted_clique_edges() {
        let g = fixtures::fig1_graph();
        for k in 1..=3usize {
            let reduced = en_colorful_sup_reduction(&g, k);
            let clique = [6u32, 7, 9, 10, 11, 12, 13, 14];
            for (i, &u) in clique.iter().enumerate() {
                for &v in &clique[i + 1..] {
                    assert!(reduced.has_edge(u, v), "k={k}: lost clique edge ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn reduction_is_safe_for_the_optimum() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let best_before = brute_force_max_fair_clique(&g, params).unwrap().size();
        let reduced = en_colorful_sup_reduction(&g, params.k);
        let best_after = brute_force_max_fair_clique(&reduced, params)
            .unwrap()
            .size();
        assert_eq!(best_before, best_after);
    }

    #[test]
    fn mixed_colors_are_not_double_counted_by_the_predicate() {
        // Fig. 2-style situation (Example 3): an edge between two a-vertices with k = 4,
        // whose common neighbors offer no exclusive a-colors, three exclusive b-colors
        // and two mixed colors. Plain colorful support counts the mixed colors for both
        // attributes and keeps the edge; the enhanced assignment shows the b-side demand
        // cannot be met.
        use crate::reduction::edge_support::support_requirements;
        use rfc_graph::colorful::ColorGroups;

        let groups = ColorGroups {
            exclusive: [0, 3],
            mixed: 2,
        };
        let (need_a, need_b) = support_requirements(Attribute::A, Attribute::A, 4);
        assert_eq!((need_a, need_b), (2, 4));
        // Plain supports: sup_attr = exclusive + mixed.
        let (sup_a, sup_b) = (
            groups.exclusive[0] + groups.mixed,
            groups.exclusive[1] + groups.mixed,
        );
        assert!(
            sup_a >= need_a && sup_b >= need_b,
            "plain check keeps the edge"
        );
        // Enhanced supports after exclusive assignment.
        let (gsup_a, gsup_b) = groups.demand_assignment(need_a, need_b);
        assert_eq!((gsup_a, gsup_b), (2, 3));
        assert!(gsup_b < need_b, "enhanced check removes the edge");
    }

    #[test]
    fn plain_keeps_example_edge_that_enhanced_also_keeps_for_small_k() {
        // Sanity: for small k both reductions agree on a well-supported clique edge.
        let mut b = GraphBuilder::new(6);
        for v in 0..6u32 {
            b.set_attribute(
                v,
                if v % 2 == 0 {
                    Attribute::A
                } else {
                    Attribute::B
                },
            );
            for u in 0..v {
                b.add_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let plain = colorful_sup_reduction(&g, 2);
        let enhanced = en_colorful_sup_reduction(&g, 2);
        assert_eq!(plain.num_edges(), g.num_edges());
        assert_eq!(enhanced.num_edges(), g.num_edges());
    }

    #[test]
    fn large_k_removes_all_edges() {
        let g = fixtures::fig1_graph();
        let reduced = en_colorful_sup_reduction(&g, 6);
        assert_eq!(reduced.num_edges(), 0);
    }
}
