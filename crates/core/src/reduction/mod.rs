//! Graph reduction techniques (Section III of the paper).
//!
//! Before the branch-and-bound search runs, the graph is shrunk by removing vertices and
//! edges that provably cannot appear in any relative fair clique of size ≥ 2k:
//!
//! 1. [`colorful_core::en_colorful_core_reduction`] — the *enhanced colorful k-core*
//!    vertex reduction (`EnColorfulCore`, Lemma 2): keep only vertices whose neighbor
//!    colors can be split so that each attribute gets at least `k − 1` colors.
//! 2. [`colorful_sup::colorful_sup_reduction`] — the *colorful support* edge reduction
//!    (`ColorfulSup`, Algorithm 1 / Lemma 3): peel edges whose common neighbors do not
//!    offer enough distinct colors per attribute.
//! 3. [`en_colorful_sup::en_colorful_sup_reduction`] — the *enhanced colorful support*
//!    edge reduction (`EnColorfulSup`, Lemma 4): like ColorfulSup but each color is
//!    assigned exclusively to one attribute before counting.
//!
//! [`apply_reductions`] chains the three stages in the order used by `MaxRFC`
//! (Algorithm 2, lines 1–3) and records per-stage statistics — exactly the numbers
//! plotted in Fig. 4 / Fig. 5 of the paper.

pub mod colorful_core;
pub mod colorful_sup;
pub mod edge_support;
pub mod en_colorful_sup;
pub mod streaming;

use rfc_graph::AttributedGraph;

use crate::problem::FairCliqueParams;

/// Which reduction stages to run, in pipeline order.
///
/// `Hash` because `(k, ReductionConfig)` keys the [`RfcSolver`](crate::solver::RfcSolver)
/// reduced-graph cache: no reduction stage looks at `δ`, so queries that differ only in
/// fairness model or `δ` share one preprocessing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReductionConfig {
    /// Run the enhanced colorful (k−1)-core vertex reduction (`EnColorfulCore`).
    pub en_colorful_core: bool,
    /// Run the colorful-support edge reduction (`ColorfulSup`).
    pub colorful_sup: bool,
    /// Run the enhanced colorful-support edge reduction (`EnColorfulSup`).
    pub en_colorful_sup: bool,
}

impl Default for ReductionConfig {
    /// The full pipeline used by `MaxRFC`.
    fn default() -> Self {
        Self {
            en_colorful_core: true,
            colorful_sup: true,
            en_colorful_sup: true,
        }
    }
}

impl ReductionConfig {
    /// No reduction at all (useful for ablation).
    pub fn none() -> Self {
        Self {
            en_colorful_core: false,
            colorful_sup: false,
            en_colorful_sup: false,
        }
    }

    /// Only the vertex-level `EnColorfulCore` reduction.
    pub fn core_only() -> Self {
        Self {
            en_colorful_core: true,
            colorful_sup: false,
            en_colorful_sup: false,
        }
    }

    /// `EnColorfulCore` followed by `ColorfulSup` (no enhanced support stage).
    pub fn up_to_colorful_sup() -> Self {
        Self {
            en_colorful_core: true,
            colorful_sup: true,
            en_colorful_sup: false,
        }
    }
}

/// Size of the graph after one reduction stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Human-readable stage name (`"EnColorfulCore"`, `"ColorfulSup"`, `"EnColorfulSup"`).
    pub stage: &'static str,
    /// Number of vertices that still have at least one incident edge.
    pub vertices: usize,
    /// Number of remaining edges.
    pub edges: usize,
    /// Wall-clock time spent in this stage, in microseconds (same unit and width as
    /// [`SearchStats::elapsed_micros`](crate::search::SearchStats::elapsed_micros)).
    pub micros: u64,
}

/// Statistics for a full reduction pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Original graph size (`|V|` counting all vertices, `|E|`).
    pub original_vertices: usize,
    /// Original edge count.
    pub original_edges: usize,
    /// Per-stage sizes, in execution order.
    pub stages: Vec<StageStats>,
}

impl ReductionStats {
    /// Vertices remaining after the last executed stage (or the original count if no
    /// stage ran).
    pub fn final_vertices(&self) -> usize {
        self.stages
            .last()
            .map(|s| s.vertices)
            .unwrap_or(self.original_vertices)
    }

    /// Edges remaining after the last executed stage.
    pub fn final_edges(&self) -> usize {
        self.stages
            .last()
            .map(|s| s.edges)
            .unwrap_or(self.original_edges)
    }
}

/// Runs the configured reduction stages and returns the reduced graph (same vertex-id
/// space as the input; removed vertices simply become isolated) plus statistics.
pub fn apply_reductions(
    g: &AttributedGraph,
    params: FairCliqueParams,
    config: &ReductionConfig,
) -> (AttributedGraph, ReductionStats) {
    let (reduced, stats) = apply_reductions_controlled(g, params, config, None);
    (
        reduced.expect("uncontrolled reduction cannot be interrupted"),
        stats,
    )
}

/// [`apply_reductions`] with a cooperative stop check between pipeline stages.
///
/// When the control trips (deadline passed or cancel token fired) before a stage
/// starts, the pipeline aborts: the graph comes back as `None` and the stats cover
/// only the stages that actually ran. Callers must treat an aborted pipeline as
/// uncacheable — each stage is individually sound, but a partial pipeline must not
/// masquerade as the configured one.
pub(crate) fn apply_reductions_controlled(
    g: &AttributedGraph,
    params: FairCliqueParams,
    config: &ReductionConfig,
    ctrl: Option<&crate::search::control::SearchControl>,
) -> (Option<AttributedGraph>, ReductionStats) {
    let mut stats = ReductionStats {
        original_vertices: g.num_vertices(),
        original_edges: g.num_edges(),
        stages: Vec::new(),
    };
    let tripped =
        |c: Option<&crate::search::control::SearchControl>| c.is_some_and(|c| c.check_now());
    let mut current = g.clone();

    if config.en_colorful_core {
        if tripped(ctrl) {
            return (None, stats);
        }
        current = run_stage(
            &current,
            "EnColorfulCore",
            "reduce/EnColorfulCore",
            &mut stats,
            |g| colorful_core::en_colorful_core_reduction(g, params.k),
        );
    }
    if config.colorful_sup {
        if tripped(ctrl) {
            return (None, stats);
        }
        current = run_stage(
            &current,
            "ColorfulSup",
            "reduce/ColorfulSup",
            &mut stats,
            |g| colorful_sup::colorful_sup_reduction(g, params.k),
        );
    }
    if config.en_colorful_sup {
        if tripped(ctrl) {
            return (None, stats);
        }
        current = run_stage(
            &current,
            "EnColorfulSup",
            "reduce/EnColorfulSup",
            &mut stats,
            |g| en_colorful_sup::en_colorful_sup_reduction(g, params.k),
        );
    }

    (Some(current), stats)
}

/// Runs one reduction stage inside a trace span, recording its surviving graph size
/// both as [`StageStats`] and as span counters.
fn run_stage(
    current: &AttributedGraph,
    stage: &'static str,
    span_name: &'static str,
    stats: &mut ReductionStats,
    reduce: impl FnOnce(&AttributedGraph) -> AttributedGraph,
) -> AttributedGraph {
    let mut span = rfc_obs::trace::span(span_name);
    let t = std::time::Instant::now();
    let next = reduce(current);
    let vertices = next.num_non_isolated_vertices();
    let edges = next.num_edges();
    span.counter("vertices", vertices as u64);
    span.counter("edges", edges as u64);
    stats.stages.push(StageStats {
        stage,
        vertices,
        edges,
        micros: t.elapsed().as_micros() as u64,
    });
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    #[test]
    fn pipeline_preserves_planted_fair_clique_edges() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (reduced, stats) = apply_reductions(&g, params, &ReductionConfig::default());
        // All 28 edges of the planted 8-clique must survive: its sub-cliques include the
        // maximum fair clique and every edge of the 8-clique lies in a fair clique of
        // size >= 2k = 6.
        let clique = [6u32, 7, 9, 10, 11, 12, 13, 14];
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                assert!(reduced.has_edge(u, v), "lost clique edge ({u}, {v})");
            }
        }
        assert_eq!(stats.original_edges, g.num_edges());
        assert_eq!(stats.stages.len(), 3);
        // Each stage is monotone non-increasing in edges.
        let mut prev = stats.original_edges;
        for s in &stats.stages {
            assert!(s.edges <= prev, "stage {} grew the graph", s.stage);
            prev = s.edges;
        }
        assert_eq!(stats.final_edges(), reduced.num_edges());
    }

    #[test]
    fn pipeline_removes_sparse_left_side() {
        // For k = 3 the sparse left half of the Fig.1 fixture cannot host any fair
        // clique of size >= 6, so the support reductions should strip most of it.
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (reduced, _) = apply_reductions(&g, params, &ReductionConfig::default());
        assert!(reduced.num_edges() < g.num_edges());
        // Specifically, the left-side edge (v1, v2) = (0, 1) cannot survive.
        assert!(!reduced.has_edge(0, 1));
    }

    #[test]
    fn disabled_pipeline_is_identity() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (reduced, stats) = apply_reductions(&g, params, &ReductionConfig::none());
        assert_eq!(reduced.num_edges(), g.num_edges());
        assert!(stats.stages.is_empty());
        assert_eq!(stats.final_vertices(), g.num_vertices());
        assert_eq!(stats.final_edges(), g.num_edges());
    }

    #[test]
    fn partial_configs_run_expected_stages() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(2, 1).unwrap();
        let (_, s1) = apply_reductions(&g, params, &ReductionConfig::core_only());
        assert_eq!(
            s1.stages.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec!["EnColorfulCore"]
        );
        let (_, s2) = apply_reductions(&g, params, &ReductionConfig::up_to_colorful_sup());
        assert_eq!(
            s2.stages.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec!["EnColorfulCore", "ColorfulSup"]
        );
    }
}
