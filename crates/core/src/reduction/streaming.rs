//! Out-of-core first-pass reduction over a [`GraphStore`].
//!
//! The exact reduction pipeline ([`super::apply_reductions`])
//! clones and rebuilds the graph per stage — perfect for the residual the search
//! runs on, unaffordable for a raw multi-million-vertex input. This module runs a
//! weaker but *sound* first pass directly against any [`GraphStore`] (in
//! particular the on-disk [`DiskCsr`](rfc_graph::disk::DiskCsr)) while keeping
//! only O(n) per-vertex state in memory:
//!
//! * [`fair_core_peel`] — iterated **fair-core** peeling: a vertex can belong to a
//!   fair clique with parameter `k` (under *any* of the three fairness models,
//!   which all force at least `k` members per attribute) only if it has at least
//!   `k − [attr(v) = a]` surviving neighbors of attribute `a`, at least
//!   `k − [attr(v) = b]` of attribute `b`, and hence total surviving degree at
//!   least `2k − 1`. Peeling repeats until a fixpoint. The criterion is implied by
//!   membership in the enhanced colorful `(k−1)`-core, so the survivor set is a
//!   superset of what `EnColorfulCore` keeps: no vertex of any fair clique is ever
//!   lost, and the exact pipeline still runs afterwards on the residual.
//! * [`extract_residual`] — materializes the survivors as a compact in-memory
//!   [`AttributedGraph`] (dense new ids) plus the id map back to store ids.
//! * [`reduce_store`] — the composition: peel → extract → exact pipeline,
//!   returning the fully reduced residual and all statistics.
//!
//! Memory model: peeling holds two `u32` counters plus one flag per vertex
//! (~9 bytes/vertex); the sequential scan streams adjacency through a fixed
//! buffer, and the cascade touches only the neighbor lists of vertices that just
//! died (targeted [`neighbors_into`](GraphStore::neighbors_into) reads).

use std::io;

use rfc_graph::store::GraphStore;
use rfc_graph::{Attribute, AttributedGraph, GraphBuilder, VertexId};

use super::{apply_reductions, ReductionConfig, ReductionStats};
use crate::problem::FairCliqueParams;

/// Statistics for one [`fair_core_peel`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeelStats {
    /// Vertices in the input store.
    pub initial_vertices: usize,
    /// Edges in the input store.
    pub initial_edges: usize,
    /// Vertices surviving the peel.
    pub surviving_vertices: usize,
    /// Targeted random-access adjacency reads performed by the cascade.
    pub cascade_reads: u64,
    /// Peeling waves until the fixpoint: the seed scan's failures are round 1, the
    /// deaths they trigger are round 2, and so on. 0 means nothing was peeled.
    pub rounds: u64,
    /// Wall-clock time of the initial sequential scan, in microseconds.
    pub scan_micros: u64,
    /// Wall-clock time of the peeling cascade, in microseconds.
    pub cascade_micros: u64,
}

/// Result of [`fair_core_peel`]: which vertices survive, plus statistics.
#[derive(Debug, Clone)]
pub struct PeelOutcome {
    /// `alive[v]` is `true` iff vertex `v` survived the peel.
    pub alive: Vec<bool>,
    /// Counters for the run.
    pub stats: PeelStats,
}

impl PeelOutcome {
    /// Ids of the surviving vertices, ascending.
    pub fn survivors(&self) -> Vec<VertexId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Whether a vertex still meets the fair-core criterion given its surviving
/// per-attribute neighbor counts.
fn meets_criterion(k: usize, attr: Attribute, cnt_a: u32, cnt_b: u32) -> bool {
    let (need_a, need_b) = match attr {
        Attribute::A => (k.saturating_sub(1), k),
        Attribute::B => (k, k.saturating_sub(1)),
    };
    (cnt_a as usize) >= need_a
        && (cnt_b as usize) >= need_b
        && (cnt_a as usize + cnt_b as usize) >= (2 * k).saturating_sub(1)
}

/// Iterated fair-core peeling over any [`GraphStore`], keeping only per-vertex
/// degree counters and alive flags in memory.
///
/// One buffered sequential pass initializes per-attribute neighbor counts; the
/// cascade then repeatedly removes vertices that fall below the criterion,
/// fetching only the adjacency of vertices that just died. Sound for every
/// fairness model with parameter `k` (see the module docs) and independent of
/// `δ`, matching how the exact pipeline is cached per `(k, config)`.
pub fn fair_core_peel<S: GraphStore + ?Sized>(store: &S, k: usize) -> io::Result<PeelOutcome> {
    fair_core_peel_controlled(store, k, None)
        .map(|o| o.expect("uncontrolled peel cannot be interrupted"))
}

/// How many dead-vertex adjacency reads the cascade performs between budget/cancel
/// probes. Each read is a targeted store access, so a chunk bounds the time between
/// probes even on stores with slow random reads.
const PEEL_CHECK_CHUNK: usize = 4096;

/// [`fair_core_peel`] with a cooperative stop check between waves and every
/// [`PEEL_CHECK_CHUNK`] cascade reads.
///
/// Returns `Ok(None)` when the control trips: the partially peeled state is
/// discarded (it *over*-approximates the survivor set, so discarding is the only
/// sound option short of finishing the fixpoint — callers must not treat a partial
/// peel as a complete one).
pub(crate) fn fair_core_peel_controlled<S: GraphStore + ?Sized>(
    store: &S,
    k: usize,
    ctrl: Option<&crate::search::control::SearchControl>,
) -> io::Result<Option<PeelOutcome>> {
    let tripped =
        |c: Option<&crate::search::control::SearchControl>| c.is_some_and(|c| c.check_now());
    if tripped(ctrl) {
        return Ok(None);
    }
    let n = store.num_vertices();
    let mut stats = PeelStats {
        initial_vertices: n,
        initial_edges: store.num_edges(),
        ..PeelStats::default()
    };
    let mut alive = vec![true; n];
    let mut cnt_a = vec![0u32; n];
    let mut cnt_b = vec![0u32; n];

    // Pass 1: sequential scan to seed the per-attribute neighbor counts.
    let t = std::time::Instant::now();
    store.scan_adjacency(&mut |v, nbrs| {
        let (mut a, mut b) = (0u32, 0u32);
        for &u in nbrs {
            match store.attribute(u) {
                Attribute::A => a += 1,
                Attribute::B => b += 1,
            }
        }
        cnt_a[v as usize] = a;
        cnt_b[v as usize] = b;
    })?;
    stats.scan_micros = t.elapsed().as_micros() as u64;
    if tripped(ctrl) {
        return Ok(None);
    }

    // Pass 2: cascade, in waves: every vertex the seed scan kills is round 1, the
    // deaths those removals trigger are round 2, and so on until the fixpoint. The
    // wave structure changes only the processing order (the surviving set is the
    // same fixpoint regardless) and gives the peel a meaningful depth counter.
    let t = std::time::Instant::now();
    let mut frontier: Vec<VertexId> = Vec::new();
    for v in 0..n {
        if !meets_criterion(k, store.attribute(v as VertexId), cnt_a[v], cnt_b[v]) {
            alive[v] = false;
            frontier.push(v as VertexId);
        }
    }
    let mut buf: Vec<VertexId> = Vec::new();
    let mut next: Vec<VertexId> = Vec::new();
    while !frontier.is_empty() {
        if tripped(ctrl) {
            return Ok(None);
        }
        stats.rounds += 1;
        for (processed, &dead) in frontier.iter().enumerate() {
            if processed % PEEL_CHECK_CHUNK == PEEL_CHECK_CHUNK - 1 && tripped(ctrl) {
                return Ok(None);
            }
            buf.clear();
            store.neighbors_into(dead, &mut buf)?;
            stats.cascade_reads += 1;
            let dead_attr = store.attribute(dead);
            for &u in &buf {
                let ui = u as usize;
                if !alive[ui] {
                    continue;
                }
                match dead_attr {
                    Attribute::A => cnt_a[ui] -= 1,
                    Attribute::B => cnt_b[ui] -= 1,
                }
                if !meets_criterion(k, store.attribute(u), cnt_a[ui], cnt_b[ui]) {
                    alive[ui] = false;
                    next.push(u);
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    stats.cascade_micros = t.elapsed().as_micros() as u64;
    stats.surviving_vertices = alive.iter().filter(|&&a| a).count();

    Ok(Some(PeelOutcome { alive, stats }))
}

/// The peel survivors materialized as a compact in-memory graph.
#[derive(Debug, Clone)]
pub struct Residual {
    /// The surviving subgraph with dense vertex ids `0..survivors`.
    pub graph: AttributedGraph,
    /// `vertex_map[new_id] = store_id`: translate residual ids back to the store.
    pub vertex_map: Vec<VertexId>,
}

impl Residual {
    /// Translates a set of residual vertex ids back to store ids (sorted).
    pub fn to_store_ids(&self, vertices: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = vertices
            .iter()
            .map(|&v| self.vertex_map[v as usize])
            .collect();
        out.sort_unstable();
        out
    }
}

/// Extracts the `alive` subgraph of a store as a compact [`AttributedGraph`] via
/// one sequential adjacency scan. Resident memory is proportional to the
/// *residual* (survivor) size, not the store size, apart from the `n`-sized id
/// translation table.
pub fn extract_residual<S: GraphStore + ?Sized>(store: &S, alive: &[bool]) -> io::Result<Residual> {
    assert_eq!(alive.len(), store.num_vertices(), "alive flags mismatch");
    const DEAD: VertexId = VertexId::MAX;
    let mut new_id = vec![DEAD; alive.len()];
    let mut vertex_map: Vec<VertexId> = Vec::new();
    for (v, &is_alive) in alive.iter().enumerate() {
        if is_alive {
            new_id[v] = vertex_map.len() as VertexId;
            vertex_map.push(v as VertexId);
        }
    }
    let attrs: Vec<Attribute> = vertex_map.iter().map(|&v| store.attribute(v)).collect();
    let mut builder = GraphBuilder::with_attributes(attrs);
    store.scan_adjacency(&mut |v, nbrs| {
        let nv = new_id[v as usize];
        if nv == DEAD {
            return;
        }
        for &u in nbrs {
            // Each surviving edge is seen from both endpoints; add it once.
            if v < u && new_id[u as usize] != DEAD {
                builder.add_edge(nv, new_id[u as usize]);
            }
        }
    })?;
    let graph = builder
        .build()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Residual { graph, vertex_map })
}

/// Statistics for a full [`reduce_store`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingReductionStats {
    /// The out-of-core peel.
    pub peel: PeelStats,
    /// Wall-clock time of residual extraction, in microseconds.
    pub extract_micros: u64,
    /// The exact in-memory pipeline that ran on the extracted residual.
    pub exact: ReductionStats,
}

/// Result of [`reduce_store`]: the fully reduced residual graph, the id map back
/// to store ids, and per-phase statistics.
#[derive(Debug, Clone)]
pub struct StreamingReduction {
    /// The reduced graph (dense ids; vertices removed by the exact pipeline are
    /// isolated, exactly as [`apply_reductions`] leaves them).
    pub graph: AttributedGraph,
    /// `vertex_map[residual_id] = store_id`.
    pub vertex_map: Vec<VertexId>,
    /// Per-phase statistics.
    pub stats: StreamingReductionStats,
}

/// Full scale-tier reduction: out-of-core fair-core peel, residual extraction,
/// then the exact in-memory pipeline (`EnColorfulCore` → `ColorfulSup` →
/// `EnColorfulSup` as configured) on the residual.
///
/// Only the peel and extraction touch the store; everything downstream operates
/// on the in-memory residual, so peak resident graph memory is bounded by the
/// residual size plus O(n) counters.
pub fn reduce_store<S: GraphStore + ?Sized>(
    store: &S,
    params: FairCliqueParams,
    config: &ReductionConfig,
) -> io::Result<StreamingReduction> {
    let peel = fair_core_peel(store, params.k)?;
    let t = std::time::Instant::now();
    let residual = extract_residual(store, &peel.alive)?;
    let extract_micros = t.elapsed().as_micros() as u64;
    let (graph, exact) = apply_reductions(&residual.graph, params, config);
    Ok(StreamingReduction {
        graph,
        vertex_map: residual.vertex_map,
        stats: StreamingReductionStats {
            peel: peel.stats,
            extract_micros,
            exact,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::colorful_core::en_colorful_core_reduction;
    use rfc_graph::fixtures;

    /// Soundness: no vertex of any fair clique is peeled, and the survivor set is
    /// a fixpoint of the criterion (every survivor still meets it counting only
    /// surviving neighbors).
    #[test]
    fn peel_is_sound_and_a_fixpoint() {
        let g = fixtures::fig1_graph();
        for k in 1..=4usize {
            let peel = fair_core_peel(&g, k).unwrap();
            // Fixpoint: recompute surviving per-attribute counts from scratch.
            for v in g.vertices() {
                if !peel.alive[v as usize] {
                    continue;
                }
                let (mut a, mut b) = (0u32, 0u32);
                for &u in g.neighbors(v) {
                    if peel.alive[u as usize] {
                        match g.attribute(u) {
                            Attribute::A => a += 1,
                            Attribute::B => b += 1,
                        }
                    }
                }
                assert!(
                    meets_criterion(k, g.attribute(v), a, b),
                    "k={k}: survivor {v} no longer meets the criterion"
                );
            }
            // Soundness: every maximal weak-k fair clique survives intact. The
            // weak model is the least constrained, so its cliques cover the
            // relative and strong models' cliques too.
            let solver = crate::solver::RfcSolver::new(g.clone());
            let mut sink = crate::enumerate::CollectSink::new();
            let query = crate::enumerate::EnumQuery::new(crate::problem::FairnessModel::Weak { k });
            solver.enumerate(&query, &mut sink).unwrap();
            for clique in sink.cliques() {
                for &v in &clique.vertices {
                    assert!(
                        peel.alive[v as usize],
                        "k={k}: peel dropped fair-clique vertex {v}"
                    );
                }
            }
        }
    }

    /// The peel removes at least as much as plain `(2k−1)`-core-style degree
    /// filtering and never more than the exact `EnColorfulSup` pipeline allows —
    /// sanity-check it against the exact `EnColorfulCore` stage output on the
    /// running example (both keep the planted clique).
    #[test]
    fn peel_and_en_colorful_core_both_keep_planted_clique() {
        let g = fixtures::fig1_graph();
        for k in 1..=3usize {
            let peel = fair_core_peel(&g, k).unwrap();
            let exact = en_colorful_core_reduction(&g, k);
            for v in [6u32, 7, 9, 10, 11, 12, 13, 14] {
                assert!(peel.alive[v as usize], "k={k}: peel lost clique vertex {v}");
                assert!(exact.degree(v) > 0, "k={k}: exact lost clique vertex {v}");
            }
        }
    }

    #[test]
    fn peel_keeps_planted_clique_and_drops_background() {
        let g = fixtures::fig1_graph();
        // k = 3: the planted 8-clique (6 a-vertices / 2 b... see fixtures) survives.
        let peel = fair_core_peel(&g, 3).unwrap();
        for v in [6u32, 7, 9, 10, 11, 12, 13, 14] {
            assert!(peel.alive[v as usize], "lost clique vertex {v}");
        }
        // Something was peeled, so the cascade ran at least one wave, and each
        // wave performs at least one targeted read.
        assert!(peel.stats.rounds >= 1);
        assert!(peel.stats.cascade_reads >= peel.stats.rounds);
        // A huge k kills everything in the seed scan: exactly one wave.
        let peel = fair_core_peel(&g, 100).unwrap();
        assert_eq!(peel.stats.surviving_vertices, 0);
        assert!(peel.survivors().is_empty());
        assert_eq!(peel.stats.rounds, 1);
        // When nothing dies, no wave runs at all.
        let clique = fixtures::balanced_clique(6);
        let peel = fair_core_peel(&clique, 1).unwrap();
        assert_eq!(peel.stats.surviving_vertices, clique.num_vertices());
        assert_eq!(peel.stats.rounds, 0);
    }

    #[test]
    fn extract_residual_matches_induced_subgraph() {
        let g = fixtures::fig1_graph();
        let peel = fair_core_peel(&g, 3).unwrap();
        let residual = extract_residual(&g, &peel.alive).unwrap();
        assert_eq!(residual.graph.num_vertices(), residual.vertex_map.len());
        // Every residual edge maps back to an edge of g between alive endpoints,
        // and every alive-alive edge of g appears in the residual.
        let alive_edges = g
            .edge_list()
            .iter()
            .filter(|&&(u, v)| peel.alive[u as usize] && peel.alive[v as usize])
            .count();
        assert_eq!(residual.graph.num_edges(), alive_edges);
        for &(u, v) in residual.graph.edge_list() {
            let (su, sv) = (
                residual.vertex_map[u as usize],
                residual.vertex_map[v as usize],
            );
            assert!(g.has_edge(su, sv));
            assert_eq!(residual.graph.attribute(u), g.attribute(su));
            assert_eq!(residual.graph.attribute(v), g.attribute(sv));
        }
    }

    #[test]
    fn reduce_store_runs_exact_pipeline_on_residual() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let out = reduce_store(&g, params, &ReductionConfig::default()).unwrap();
        assert_eq!(out.stats.exact.stages.len(), 3);
        assert!(out.stats.peel.surviving_vertices <= g.num_vertices());
        assert_eq!(out.graph.num_vertices(), out.vertex_map.len());
        // The planted 8-clique survives end to end, in residual coordinates.
        let store_to_new: std::collections::HashMap<_, _> = out
            .vertex_map
            .iter()
            .enumerate()
            .map(|(new, &store)| (store, new as VertexId))
            .collect();
        let clique = [6u32, 7, 9, 10, 11, 12, 13, 14];
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                let (nu, nv) = (store_to_new[&u], store_to_new[&v]);
                assert!(out.graph.has_edge(nu, nv), "lost clique edge ({u}, {v})");
            }
        }
    }
}
