//! Scale-tier solver entry points: solve / heuristic / enumerate directly from a
//! [`GraphStore`] (typically a disk-backed [`DiskCsr`](rfc_graph::disk::DiskCsr)).
//!
//! [`ScaleSolver::from_store`] runs the out-of-core fair-core peel
//! ([`reduction::streaming`](crate::reduction::streaming)) against the store,
//! extracts the surviving subgraph as a compact in-memory residual, and builds an
//! ordinary [`RfcSolver`] on it. Everything downstream — exact reductions, bounds,
//! heuristic, branch-and-bound, enumeration — is the unchanged in-memory machinery;
//! the store is never touched again after construction, and peak resident graph
//! memory is bounded by the residual (see [`ScaleSolver::residual_resident_bytes`]).
//!
//! Results are translated back to **store vertex ids** before they are returned,
//! so callers never see residual coordinates.

use std::io;

use rfc_graph::store::GraphStore;
use rfc_graph::{AttributedGraph, VertexId};

use crate::enumerate::{CliqueSink, EnumOutcome, EnumQuery, SinkFlow};
use crate::heuristic::HeuristicOutcome;
use crate::problem::FairClique;
use crate::reduction::streaming::{
    extract_residual, fair_core_peel_controlled, PeelStats, Residual,
};
use crate::search::control::SearchControl;
use crate::solver::{Budget, CancelToken, Query, RfcSolver, Solution, SolveError};

/// Errors from scale-tier solving.
#[derive(Debug)]
pub enum ScaleError {
    /// I/O against the backing store failed.
    Io(io::Error),
    /// The inner solve failed (invalid parameters, …).
    Solve(SolveError),
    /// The query's `k` is smaller than the `k` the store was peeled at, so the
    /// peel may have removed vertices the query still needs.
    KBelowPeel {
        /// `k` of the query's fairness model.
        query_k: usize,
        /// `k` the peel ran with.
        peel_k: usize,
    },
    /// The construction budget ran out during the out-of-core peel / extraction
    /// (see [`ScaleSolver::from_store_budgeted`]). No partial state is kept: a
    /// partial peel over-approximates the survivor set and must not be solved on.
    BudgetExhausted,
    /// The cancel token fired during the out-of-core peel / extraction.
    Cancelled,
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleError::Io(e) => write!(f, "store I/O error: {e}"),
            ScaleError::Solve(e) => write!(f, "{e}"),
            ScaleError::KBelowPeel { query_k, peel_k } => write!(
                f,
                "query k={query_k} is below the peel k={peel_k}: rebuild the \
                 ScaleSolver with k<={query_k}"
            ),
            ScaleError::BudgetExhausted => {
                write!(f, "time budget exhausted during the out-of-core peel")
            }
            ScaleError::Cancelled => write!(f, "cancelled during the out-of-core peel"),
        }
    }
}

impl std::error::Error for ScaleError {}

impl From<io::Error> for ScaleError {
    fn from(e: io::Error) -> Self {
        ScaleError::Io(e)
    }
}

impl From<SolveError> for ScaleError {
    fn from(e: SolveError) -> Self {
        ScaleError::Solve(e)
    }
}

/// Counters for the store → residual phase of a [`ScaleSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleStats {
    /// Vertices in the backing store.
    pub store_vertices: usize,
    /// Edges in the backing store.
    pub store_edges: usize,
    /// The out-of-core peel.
    pub peel: PeelStats,
    /// Wall-clock time of residual extraction, in microseconds.
    pub extract_micros: u64,
    /// Vertices in the extracted residual.
    pub residual_vertices: usize,
    /// Edges in the extracted residual.
    pub residual_edges: usize,
    /// Adjacency bytes the backing store served from disk while peeling and
    /// extracting (0 for in-memory or resident-mode stores).
    pub disk_read_bytes: u64,
}

/// A solver for graphs that live in a [`GraphStore`]: out-of-core peel once at
/// construction, then in-memory solving on the residual with results mapped back
/// to store ids.
#[derive(Debug)]
pub struct ScaleSolver {
    solver: RfcSolver,
    vertex_map: Vec<VertexId>,
    peel_k: usize,
    stats: ScaleStats,
}

impl ScaleSolver {
    /// Peels the store at parameter `k` (sound for every fairness model with the
    /// same or larger `k`) and builds the in-memory solver on the residual.
    pub fn from_store<S: GraphStore + ?Sized>(store: &S, k: usize) -> io::Result<Self> {
        match Self::from_store_budgeted(store, k, &Budget::unlimited(), None) {
            Ok(solver) => Ok(solver),
            Err(ScaleError::Io(e)) => Err(e),
            Err(other) => unreachable!("unlimited construction cannot fail with {other}"),
        }
    }

    /// [`from_store`](Self::from_store) under a [`Budget`] / [`CancelToken`]: the
    /// out-of-core peel checks the control between waves (and every few thousand
    /// cascade reads), and extraction is gated on it too, so a `.rfcg` solve with a
    /// time limit stays cancellable during its most expensive phase.
    ///
    /// A trip returns [`ScaleError::BudgetExhausted`] / [`ScaleError::Cancelled`]
    /// with no partial solver: a half-finished peel over-approximates the survivor
    /// set and would silently weaken every later reduction if kept. Only the
    /// budget's `time_limit` applies here — `node_limit` counts branch nodes, which
    /// construction has none of.
    pub fn from_store_budgeted<S: GraphStore + ?Sized>(
        store: &S,
        k: usize,
        budget: &Budget,
        cancel: Option<CancelToken>,
    ) -> Result<Self, ScaleError> {
        let ctrl = SearchControl::new(budget, cancel);
        let stop = |ctrl: &SearchControl| match crate::solver::stopped_termination(ctrl) {
            crate::solver::Termination::Cancelled => ScaleError::Cancelled,
            _ => ScaleError::BudgetExhausted,
        };
        let peel = {
            let mut span = rfc_obs::trace::span("scale/peel");
            let Some(peel) = fair_core_peel_controlled(store, k, Some(&ctrl))? else {
                return Err(stop(&ctrl));
            };
            span.counter("rounds", peel.stats.rounds);
            span.counter("cascade_reads", peel.stats.cascade_reads);
            span.counter("survivors", peel.stats.surviving_vertices as u64);
            peel
        };
        if ctrl.check_now() {
            return Err(stop(&ctrl));
        }
        let t = std::time::Instant::now();
        let (graph, vertex_map) = {
            let mut span = rfc_obs::trace::span("scale/extract");
            let Residual { graph, vertex_map } = extract_residual(store, &peel.alive)?;
            span.counter("vertices", graph.num_vertices() as u64);
            span.counter("edges", graph.num_edges() as u64);
            (graph, vertex_map)
        };
        let extract_micros = t.elapsed().as_micros() as u64;
        let stats = ScaleStats {
            store_vertices: store.num_vertices(),
            store_edges: store.num_edges(),
            peel: peel.stats,
            extract_micros,
            residual_vertices: graph.num_vertices(),
            residual_edges: graph.num_edges(),
            disk_read_bytes: store.disk_bytes_read(),
        };
        flush_scale_metrics(&stats);
        Ok(Self {
            solver: RfcSolver::new(graph),
            vertex_map,
            peel_k: k,
            stats,
        })
    }

    /// The residual graph the in-memory machinery operates on (residual ids).
    pub fn residual(&self) -> &AttributedGraph {
        self.solver.graph()
    }

    /// `vertex_map[residual_id] = store_id`.
    pub fn vertex_map(&self) -> &[VertexId] {
        &self.vertex_map
    }

    /// The `k` the store was peeled at; queries must use `k` at least this large.
    pub fn peel_k(&self) -> usize {
        self.peel_k
    }

    /// Counters for the store → residual phase.
    pub fn stats(&self) -> &ScaleStats {
        &self.stats
    }

    /// Resident bytes of the residual graph — the peak resident *graph* memory of
    /// everything downstream of the peel (counters during the peel add ~9 bytes
    /// per store vertex on top).
    pub fn residual_resident_bytes(&self) -> usize {
        self.solver.graph().resident_bytes()
    }

    fn check_k(&self, query_k: usize) -> Result<(), ScaleError> {
        if query_k < self.peel_k {
            return Err(ScaleError::KBelowPeel {
                query_k,
                peel_k: self.peel_k,
            });
        }
        Ok(())
    }

    fn remap_clique(&self, clique: FairClique) -> FairClique {
        let mut vertices: Vec<VertexId> = clique
            .vertices
            .iter()
            .map(|&v| self.vertex_map[v as usize])
            .collect();
        vertices.sort_unstable();
        FairClique {
            vertices,
            counts: clique.counts,
        }
    }

    /// Solves the query on the residual and maps the resulting cliques back to
    /// store ids.
    pub fn solve(&self, query: &Query) -> Result<Solution, ScaleError> {
        self.check_k(query.fairness.k())?;
        let mut solution = self.solver.solve(query)?;
        solution.cliques = solution
            .cliques
            .into_iter()
            .map(|c| self.remap_clique(c))
            .collect();
        Ok(solution)
    }

    /// Races a configuration portfolio on the residual (see
    /// [`portfolio`](crate::portfolio)), with the resulting cliques mapped back to
    /// store ids.
    pub fn solve_portfolio(
        &self,
        query: &Query,
        portfolio: &crate::portfolio::PortfolioConfig,
    ) -> Result<crate::portfolio::PortfolioOutcome, ScaleError> {
        self.check_k(query.fairness.k())?;
        let mut outcome = self.solver.solve_portfolio(query, portfolio)?;
        outcome.solution.cliques = outcome
            .solution
            .cliques
            .into_iter()
            .map(|c| self.remap_clique(c))
            .collect();
        Ok(outcome)
    }

    /// Runs the `HeurRFC` heuristic on the residual, result in store ids.
    pub fn heuristic(&self, query: &Query) -> Result<HeuristicOutcome, ScaleError> {
        self.check_k(query.fairness.k())?;
        let mut outcome = self.solver.heuristic(query)?;
        outcome.best = outcome.best.map(|c| self.remap_clique(c));
        Ok(outcome)
    }

    /// Enumerates maximal fair cliques on the residual, emitting each to `sink`
    /// in store ids.
    pub fn enumerate(
        &self,
        query: &EnumQuery,
        sink: &mut dyn CliqueSink,
    ) -> Result<EnumOutcome, ScaleError> {
        self.check_k(query.fairness.k())?;
        let mut remapping =
            |clique: FairClique| -> SinkFlow { sink.emit(self.remap_clique(clique)) };
        Ok(self.solver.enumerate(query, &mut remapping)?)
    }
}

/// Publishes one store → residual pass into the global metrics registry.
fn flush_scale_metrics(stats: &ScaleStats) {
    let reg = rfc_obs::metrics::global();
    reg.counter("rfc_scale_peels_total").inc();
    reg.counter("rfc_scale_peel_rounds_total")
        .add(stats.peel.rounds);
    reg.counter("rfc_scale_cascade_reads_total")
        .add(stats.peel.cascade_reads);
    reg.counter("rfc_scale_disk_read_bytes_total")
        .add(stats.disk_read_bytes);
    reg.gauge("rfc_scale_residual_vertices")
        .set(stats.residual_vertices as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::CollectSink;
    use crate::problem::FairnessModel;
    use rfc_graph::fixtures;

    #[test]
    fn scale_solver_matches_direct_solver_on_fig1() {
        let g = fixtures::fig1_graph();
        let direct = RfcSolver::new(g.clone());
        let scale = ScaleSolver::from_store(&g, 3).unwrap();
        let query = Query::new(FairnessModel::Relative { k: 3, delta: 1 });
        let a = direct.solve(&query).unwrap();
        let b = scale.solve(&query).unwrap();
        assert_eq!(a.termination, b.termination);
        let va = a.best().unwrap().vertices.clone();
        let vb = b.best().unwrap().vertices.clone();
        assert_eq!(va.len(), vb.len());
        // Same size and both are verified fair cliques of g; ids are store ids.
        for &v in &vb {
            assert!((v as usize) < g.num_vertices());
        }
        assert_eq!(a.best().unwrap().counts, b.best().unwrap().counts);
    }

    #[test]
    fn scale_solver_enumeration_remaps_to_store_ids() {
        let g = fixtures::fig1_graph();
        let direct = RfcSolver::new(g.clone());
        let scale = ScaleSolver::from_store(&g, 2).unwrap();
        let query = EnumQuery::new(FairnessModel::Relative { k: 2, delta: 1 });
        let mut a = CollectSink::new();
        direct.enumerate(&query, &mut a).unwrap();
        let mut b = CollectSink::new();
        scale.enumerate(&query, &mut b).unwrap();
        let norm = |s: &CollectSink| {
            let mut v: Vec<Vec<VertexId>> =
                s.cliques().iter().map(|c| c.vertices.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&a), norm(&b));
    }

    #[test]
    fn k_below_peel_is_rejected() {
        let g = fixtures::fig1_graph();
        let scale = ScaleSolver::from_store(&g, 3).unwrap();
        let query = Query::new(FairnessModel::Relative { k: 2, delta: 1 });
        assert!(matches!(
            scale.solve(&query),
            Err(ScaleError::KBelowPeel {
                query_k: 2,
                peel_k: 3
            })
        ));
    }
}
