//! The per-component branch-and-bound recursion (Algorithm 3, canonical-order variant).

use rfc_graph::subgraph::InducedSubgraph;
use rfc_graph::{AttributeCounts, VertexId};

use crate::bounds::{instance_upper_bound, ExtraBound};
use crate::problem::FairCliqueParams;

use super::ordering::ordering_positions;
use super::{SearchConfig, SearchStats};

/// Branch-and-bound search over a single connected component (given as an induced
/// subgraph with compact vertex ids).
pub(super) struct ComponentSearch<'a> {
    sub: &'a InducedSubgraph,
    params: FairCliqueParams,
    config: &'a SearchConfig,
    stats: &'a mut SearchStats,
    /// Size of the best fair clique known so far (across components / heuristic).
    best_size: usize,
    /// Best fair clique found in this component, in *original* (parent graph) ids.
    best: Option<Vec<VertexId>>,
    /// Current partial clique, in component-local ids.
    r: Vec<VertexId>,
}

impl<'a> ComponentSearch<'a> {
    pub(super) fn new(
        sub: &'a InducedSubgraph,
        params: FairCliqueParams,
        config: &'a SearchConfig,
        stats: &'a mut SearchStats,
    ) -> Self {
        Self {
            sub,
            params,
            config,
            stats,
            best_size: 0,
            best: None,
            r: Vec::new(),
        }
    }

    /// Runs the search with the given incumbent size (from the heuristic or previous
    /// components) and returns a strictly larger fair clique if one exists in this
    /// component, expressed in parent-graph vertex ids.
    pub(super) fn run(&mut self, incumbent_size: usize) -> Option<Vec<VertexId>> {
        self.best_size = incumbent_size;
        let cg = &self.sub.graph;
        let positions = ordering_positions(cg, self.config.branch_order);

        // Root candidate set: all component vertices, sorted by branching order.
        let mut candidates: Vec<VertexId> = cg.vertices().collect();
        candidates.sort_unstable_by_key(|&v| positions[v as usize]);

        self.branch(AttributeCounts::new(), &candidates, 0);
        self.best.take()
    }

    fn branch(&mut self, counts: AttributeCounts, candidates: &[VertexId], depth: usize) {
        self.stats.branches += 1;
        let cg = &self.sub.graph;
        let params = self.params;

        // Record the current clique if it is fair and improves the incumbent.
        if self.r.len() > self.best_size && params.is_fair(counts) {
            self.best_size = self.r.len();
            self.best = Some(self.sub.to_original_set(&self.r));
            self.stats.incumbent_updates += 1;
        }
        if candidates.is_empty() {
            return;
        }

        // --- Cheap feasibility pruning (every node) ---------------------------------
        let cand_counts = cg.attribute_counts_of(candidates);
        let reach_a = counts.a() + cand_counts.a();
        let reach_b = counts.b() + cand_counts.b();
        if reach_a < params.k || reach_b < params.k {
            self.stats.feasibility_prunes += 1;
            return;
        }
        // δ-feasibility: the committed majority can never be balanced out.
        if counts.a() > reach_b + params.delta || counts.b() > reach_a + params.delta {
            self.stats.feasibility_prunes += 1;
            return;
        }
        // Trivial size bound (ubs) and minimum-size gate.
        let ubs = self.r.len() + candidates.len();
        if ubs <= self.best_size || ubs < params.min_size() {
            self.stats.bound_prunes += 1;
            return;
        }
        // Attribute bound (uba) — still O(1) from the counts above.
        match params.best_fair_total(reach_a, reach_b) {
            None => {
                self.stats.feasibility_prunes += 1;
                return;
            }
            Some(uba) => {
                if uba <= self.best_size || uba < params.min_size() {
                    self.stats.bound_prunes += 1;
                    return;
                }
            }
        }

        // --- Expensive bounds (shallow nodes only) -----------------------------------
        let bounds = &self.config.bounds;
        let use_expensive = depth <= bounds.max_depth
            && (bounds.advanced || bounds.extra != ExtraBound::None)
            && !candidates.is_empty();
        if use_expensive {
            let mut instance: Vec<VertexId> = Vec::with_capacity(self.r.len() + candidates.len());
            instance.extend_from_slice(&self.r);
            instance.extend_from_slice(candidates);
            let ub = instance_upper_bound(cg, &instance, params, bounds);
            if ub <= self.best_size || ub < params.min_size() {
                self.stats.bound_prunes += 1;
                return;
            }
        }

        // --- Canonical-order branching ------------------------------------------------
        for i in 0..candidates.len() {
            // Even taking every remaining candidate cannot beat the incumbent.
            let remaining = candidates.len() - i;
            if self.r.len() + remaining <= self.best_size
                || self.r.len() + remaining < params.min_size()
            {
                self.stats.bound_prunes += 1;
                break;
            }
            let v = candidates[i];
            let mut next_counts = counts;
            next_counts.add(cg.attribute(v));
            let next_candidates: Vec<VertexId> = candidates[i + 1..]
                .iter()
                .copied()
                .filter(|&u| cg.has_edge(u, v))
                .collect();
            self.r.push(v);
            self.branch(next_counts, &next_candidates, depth + 1);
            self.r.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::subgraph::induced_subgraph;
    use rfc_graph::{fixtures, AttributedGraph};

    fn search_component(
        g: &AttributedGraph,
        params: FairCliqueParams,
        config: &SearchConfig,
        incumbent: usize,
    ) -> (Option<Vec<VertexId>>, SearchStats) {
        let all: Vec<VertexId> = g.vertices().collect();
        let sub = induced_subgraph(g, &all);
        let mut stats = SearchStats::default();
        let mut searcher = ComponentSearch::new(&sub, params, config, &mut stats);
        let best = searcher.run(incumbent);
        (best, stats)
    }

    #[test]
    fn finds_optimum_within_a_component() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, stats) = search_component(&g, params, &SearchConfig::default(), 0);
        assert_eq!(best.unwrap().len(), 7);
        assert!(stats.branches > 0);
    }

    #[test]
    fn incumbent_at_optimum_suppresses_new_solution() {
        // If the incumbent already matches the optimum, the component search must not
        // return anything (it only reports strict improvements).
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, _) = search_component(&g, params, &SearchConfig::default(), 7);
        assert!(best.is_none());
    }

    #[test]
    fn incumbent_below_optimum_is_improved() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, _) = search_component(&g, params, &SearchConfig::default(), 6);
        assert_eq!(best.unwrap().len(), 7);
    }

    #[test]
    fn basic_config_explores_more_branches_than_bounded_config() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (_, basic) = search_component(&g, params, &SearchConfig::basic(), 0);
        let (_, bounded) = search_component(
            &g,
            params,
            &SearchConfig::with_bounds(crate::bounds::ExtraBound::ColorfulDegeneracy),
            0,
        );
        assert!(bounded.branches <= basic.branches);
    }
}
