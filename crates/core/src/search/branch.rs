//! The per-component branch-and-bound recursion (Algorithm 3, canonical-order variant).
//!
//! Vertices of the component are re-labeled by their rank in the configured
//! [`BranchOrder`](super::BranchOrder), and all candidate sets are [`Bitset`]s over
//! ranks backed by a dense [`BitMatrix`] adjacency built once per component. The hot
//! `candidates ∩ N(v)` step of every branch is then a fused AND+popcount into a
//! pooled scratch bitset ([`BitsetPool`]), so steady-state branching allocates
//! nothing, and iterating a candidate set's bits in ascending order *is* iterating it
//! in branching order.
//!
//! The per-component state is split in two so one component can be searched by many
//! workers:
//!
//! * [`ComponentContext`] — the immutable, shareable part (induced subgraph, branching
//!   order, bitset adjacency, attribute mask). Built once per component, read by every
//!   worker that runs one of its subtrees.
//! * [`ComponentSearch`] — one worker's view of a search in progress: its stats,
//!   scratch pool, current partial clique and the subtree tasks it has split off.
//!
//! When `split_depth > 0` the search does not recurse through the top levels of the
//! tree: each branch node shallower than `split_depth` is packaged as a
//! [`SubtreeTask`] — an owned `(clique, counts, candidates)` snapshot — and collected
//! for the caller to scatter across the work-stealing pool. A subtree task re-enters
//! [`branch`](ComponentSearch::run_task) at its recorded depth and from there on runs
//! the ordinary recursion, re-checking every bound against the *current* shared
//! incumbent first, so work that was already pruned-out by the time it is stolen costs
//! one node visit.

use rfc_graph::bitset::{BitMatrix, Bitset, BitsetPool};
use rfc_graph::subgraph::{induced_subgraph, InducedSubgraph};
use rfc_graph::{Attribute, AttributeCounts, AttributedGraph, VertexId};

use crate::bounds::{instance_upper_bound, ExtraBound};
use crate::problem::FairCliqueParams;

use super::control::SearchControl;
use super::ordering::{ordering_sequence, positions_of};
use super::parallel::SharedIncumbent;
use super::{SearchConfig, SearchStats};

/// The immutable per-component search state, shareable across workers.
pub(super) struct ComponentContext {
    /// The component as an induced subgraph with compact vertex ids.
    pub(super) sub: InducedSubgraph,
    /// `order[rank]` is the component-local vertex with that branching rank.
    pub(super) order: Vec<VertexId>,
    /// Adjacency over ranks: bit `r` of row `q` is set iff the vertices ranked `q` and
    /// `r` are adjacent.
    pub(super) adj: BitMatrix,
    /// Ranks whose vertex has attribute `a` (candidate attribute counts come from one
    /// AND + popcount against this mask).
    pub(super) attr_a: Bitset,
    /// Branch nodes strictly shallower than this depth are split off as
    /// [`SubtreeTask`]s instead of being recursed into. `0` (the serial setting)
    /// disables splitting entirely.
    pub(super) split_depth: usize,
}

impl ComponentContext {
    /// Builds the context for one connected `component` of `parent`.
    pub(super) fn new(
        parent: &AttributedGraph,
        component: &[VertexId],
        config: &SearchConfig,
    ) -> Self {
        let sub = induced_subgraph(parent, component);
        let cg = &sub.graph;
        let n = cg.num_vertices();
        let order = ordering_sequence(cg, config.branch_order);
        let positions = positions_of(&order);
        let mut adj = BitMatrix::new(n);
        for &(u, v) in cg.edge_list() {
            adj.set_edge(positions[u as usize], positions[v as usize]);
        }
        let mut attr_a = Bitset::new(n);
        for v in cg.vertices() {
            if cg.attribute(v) == Attribute::A {
                attr_a.insert(positions[v as usize]);
            }
        }
        Self {
            sub,
            order,
            adj,
            attr_a,
            split_depth: 0,
        }
    }

    /// Returns the context with the given split depth (see
    /// [`split_depth`](Self::split_depth)).
    pub(super) fn with_split_depth(mut self, depth: usize) -> Self {
        self.split_depth = depth;
        self
    }

    /// Number of vertices of the component (the capacity of all its bitsets).
    pub(super) fn num_vertices(&self) -> usize {
        self.sub.graph.num_vertices()
    }
}

/// A stealable piece of one component's search tree: a branch node snapshot that any
/// worker can resume given the component's [`ComponentContext`].
pub(super) struct SubtreeTask {
    /// Index of the owning component (into the caller's context table).
    pub(super) comp: usize,
    /// The partial clique at the subtree root, in component-local ids.
    pub(super) r: Vec<VertexId>,
    /// Attribute counts of `r`.
    pub(super) counts: AttributeCounts,
    /// The candidate set at the subtree root.
    pub(super) candidates: Bitset,
    /// Depth of the subtree root in the component's tree.
    pub(super) depth: usize,
}

/// Branch-and-bound search over (part of) a single connected component.
///
/// The incumbent is shared: improvements are published through the [`SharedIncumbent`]
/// as soon as they are found, and the size/bound prunes always test against the current
/// global [`useful_size`](SharedIncumbent::useful_size) — whether it came from this
/// component, the heuristic warm start, or (in parallel mode) another worker.
pub(super) struct ComponentSearch<'a> {
    ctx: &'a ComponentContext,
    /// Index of `ctx`'s component in the caller's table, stamped onto spawned tasks.
    comp: usize,
    params: FairCliqueParams,
    config: &'a SearchConfig,
    stats: &'a mut SearchStats,
    incumbent: &'a SharedIncumbent,
    /// Budget/cancellation control; checked once per node so exhausted budgets unwind
    /// the whole recursion promptly.
    ctrl: &'a SearchControl,
    /// This worker's scratch bitsets, reused across every node of the run.
    scratch: &'a mut BitsetPool,
    /// Current partial clique, in component-local ids.
    r: Vec<VertexId>,
    /// Subtree tasks split off at shallow depths, for the caller to scatter.
    spawned: Vec<SubtreeTask>,
}

impl<'a> ComponentSearch<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        ctx: &'a ComponentContext,
        comp: usize,
        params: FairCliqueParams,
        config: &'a SearchConfig,
        stats: &'a mut SearchStats,
        incumbent: &'a SharedIncumbent,
        ctrl: &'a SearchControl,
        scratch: &'a mut BitsetPool,
    ) -> Self {
        debug_assert_eq!(
            scratch.nbits(),
            ctx.num_vertices(),
            "scratch pool must be reset to the component size"
        );
        Self {
            ctx,
            comp,
            params,
            config,
            stats,
            incumbent,
            ctrl,
            scratch,
            r: Vec::new(),
            spawned: Vec::new(),
        }
    }

    /// Runs the search from the component root. Any fair clique reaching the shared
    /// pool's useful size is published (in parent-graph vertex ids) the moment it is
    /// found.
    pub(super) fn run(&mut self) {
        let n = self.ctx.num_vertices();
        let root = Bitset::full(n);
        self.branch(AttributeCounts::new(), &root, n, 0);
    }

    /// Resumes the search at a [`SubtreeTask`]'s recorded branch node.
    pub(super) fn run_task(&mut self, task: SubtreeTask) {
        debug_assert_eq!(task.comp, self.comp, "task routed to the wrong component");
        self.r = task.r;
        let total = task.candidates.count();
        self.branch(task.counts, &task.candidates, total, task.depth);
    }

    /// Takes the subtree tasks split off so far (empty unless
    /// [`split_depth`](ComponentContext::split_depth) is positive).
    pub(super) fn take_spawned(&mut self) -> Vec<SubtreeTask> {
        std::mem::take(&mut self.spawned)
    }

    fn branch(
        &mut self,
        counts: AttributeCounts,
        candidates: &Bitset,
        cand_total: usize,
        depth: usize,
    ) {
        if self.ctrl.on_node() {
            return;
        }
        self.stats.branches += 1;
        let cg = &self.ctx.sub.graph;
        let params = self.params;

        // Record the current clique if it is fair and useful to the shared pool
        // (strictly better than a single incumbent; at least tying the cut-off of a
        // top-k pool, where the canonical tie-break decides membership).
        if self.r.len() >= self.incumbent.useful_size()
            && params.is_fair(counts)
            && self.incumbent.offer(self.ctx.sub.to_original_set(&self.r))
        {
            self.stats.incumbent_updates += 1;
        }
        if cand_total == 0 {
            return;
        }

        // --- Cheap feasibility pruning (every node) ---------------------------------
        let cand_a = candidates.intersection_count(self.ctx.attr_a.words());
        let cand_b = cand_total - cand_a;
        let reach_a = counts.a() + cand_a;
        let reach_b = counts.b() + cand_b;
        if reach_a < params.k || reach_b < params.k {
            self.stats.feasibility_prunes += 1;
            self.stats.prune_counts.attr_reach += 1;
            return;
        }
        // δ-feasibility: the committed majority can never be balanced out.
        if counts.a() > reach_b + params.delta || counts.b() > reach_a + params.delta {
            self.stats.feasibility_prunes += 1;
            self.stats.prune_counts.delta += 1;
            return;
        }
        // Trivial size bound (ubs) and minimum-size gate. `useful` is the smallest
        // completed-clique size still worth reporting to the pool; with a single
        // incumbent it is `incumbent size + 1`, i.e. this is the classic strict
        // improvement prune.
        let useful = self.incumbent.useful_size();
        let ubs = self.r.len() + cand_total;
        if ubs < useful || ubs < params.min_size() {
            self.stats.bound_prunes += 1;
            self.stats.prune_counts.size_bound += 1;
            return;
        }
        // Attribute bound (uba) — still O(1) from the counts above.
        match params.best_fair_total(reach_a, reach_b) {
            None => {
                self.stats.feasibility_prunes += 1;
                self.stats.prune_counts.attr_infeasible += 1;
                return;
            }
            Some(uba) => {
                if uba < useful || uba < params.min_size() {
                    self.stats.bound_prunes += 1;
                    self.stats.prune_counts.attr_bound += 1;
                    return;
                }
            }
        }

        // --- Expensive bounds (shallow nodes only) -----------------------------------
        let bounds = &self.config.bounds;
        let use_expensive =
            depth <= bounds.max_depth && (bounds.advanced || bounds.extra != ExtraBound::None);
        if use_expensive {
            let mut instance: Vec<VertexId> = Vec::with_capacity(self.r.len() + cand_total);
            instance.extend_from_slice(&self.r);
            instance.extend(candidates.iter().map(|rank| self.ctx.order[rank]));
            let ub = instance_upper_bound(cg, &instance, params, bounds);
            if ub < useful || ub < params.min_size() {
                self.stats.bound_prunes += 1;
                self.stats.prune_counts.colorful_bound += 1;
                return;
            }
        }

        // --- Canonical-order branching ------------------------------------------------
        // `rest` always holds the candidates not yet branched on; taking the lowest set
        // bit walks them in branching order, and removing the branch vertex before the
        // AND keeps only *later-ordered* neighbors, so every clique is visited once.
        // Nodes shallower than the split depth spawn their children as stealable
        // subtree tasks instead of recursing.
        let mut rest = self.scratch.acquire_copy(candidates);
        let mut remaining = cand_total;
        while let Some(rank) = rest.first_set() {
            if self.ctrl.stopped() {
                break;
            }
            // Even taking every remaining candidate cannot produce a useful clique.
            let goal = self.incumbent.useful_size().max(params.min_size());
            if self.r.len() + remaining < goal {
                self.stats.bound_prunes += 1;
                self.stats.prune_counts.tail_cut += 1;
                break;
            }
            rest.remove(rank);
            let v = self.ctx.order[rank];
            let mut next_counts = counts;
            next_counts.add(cg.attribute(v));
            let (next_candidates, next_total) = self
                .scratch
                .acquire_intersection(&rest, self.ctx.adj.row(rank));
            if depth < self.ctx.split_depth {
                let mut r = self.r.clone();
                r.push(v);
                // The bitset moves into the task (it crosses workers); the pool mints
                // a replacement on the next iteration.
                self.spawned.push(SubtreeTask {
                    comp: self.comp,
                    r,
                    counts: next_counts,
                    candidates: next_candidates,
                    depth: depth + 1,
                });
            } else {
                self.r.push(v);
                self.branch(next_counts, &next_candidates, next_total, depth + 1);
                self.r.pop();
                self.scratch.release(next_candidates);
            }
            remaining -= 1;
        }
        self.scratch.release(rest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::{fixtures, AttributedGraph};

    fn search_component(
        g: &AttributedGraph,
        params: FairCliqueParams,
        config: &SearchConfig,
        incumbent_size: usize,
    ) -> (Option<Vec<VertexId>>, SearchStats) {
        let all: Vec<VertexId> = g.vertices().collect();
        let ctx = ComponentContext::new(g, &all, config);
        let mut stats = SearchStats::default();
        let incumbent = SharedIncumbent::with_floor(incumbent_size);
        let ctrl = SearchControl::unlimited();
        let mut scratch = BitsetPool::new(ctx.num_vertices());
        ComponentSearch::new(
            &ctx,
            0,
            params,
            config,
            &mut stats,
            &incumbent,
            &ctrl,
            &mut scratch,
        )
        .run();
        (incumbent.into_best(), stats)
    }

    #[test]
    fn finds_optimum_within_a_component() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, stats) = search_component(&g, params, &SearchConfig::default(), 0);
        assert_eq!(best.unwrap().len(), 7);
        assert!(stats.branches > 0);
        assert!(stats.incumbent_updates > 0);
    }

    #[test]
    fn incumbent_at_optimum_suppresses_new_solution() {
        // If the incumbent already matches the optimum, the component search must not
        // record anything (it only reports strict improvements).
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, _) = search_component(&g, params, &SearchConfig::default(), 7);
        assert!(best.is_none());
    }

    #[test]
    fn incumbent_below_optimum_is_improved() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, _) = search_component(&g, params, &SearchConfig::default(), 6);
        assert_eq!(best.unwrap().len(), 7);
    }

    #[test]
    fn basic_config_explores_more_branches_than_bounded_config() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (_, basic) = search_component(&g, params, &SearchConfig::basic(), 0);
        let (_, bounded) = search_component(
            &g,
            params,
            &SearchConfig::with_bounds(crate::bounds::ExtraBound::ColorfulDegeneracy),
            0,
        );
        assert!(bounded.branches <= basic.branches);
    }

    #[test]
    fn bitset_adjacency_matches_graph_adjacency() {
        let g = fixtures::fig1_graph();
        let all: Vec<VertexId> = g.vertices().collect();
        let config = SearchConfig::default();
        let ctx = ComponentContext::new(&g, &all, &config);
        let n = ctx.num_vertices();
        for qr in 0..n {
            for rr in 0..n {
                let (u, v) = (ctx.order[qr], ctx.order[rr]);
                assert_eq!(
                    ctx.adj.contains(qr, rr),
                    ctx.sub.graph.has_edge(u, v),
                    "ranks ({qr}, {rr}) ↔ vertices ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn split_depth_spawns_every_root_subtree_and_loses_no_cliques() {
        // With split_depth = 1 the component run must produce one subtree task per
        // root branch it did not prune; running all of them must find the optimum the
        // plain recursion finds.
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let config = SearchConfig::basic();
        let all: Vec<VertexId> = g.vertices().collect();
        let ctx = ComponentContext::new(&g, &all, &config).with_split_depth(1);
        let incumbent = SharedIncumbent::new(None);
        let ctrl = SearchControl::unlimited();
        let mut stats = SearchStats::default();
        let mut scratch = BitsetPool::new(ctx.num_vertices());
        let tasks = {
            let mut search = ComponentSearch::new(
                &ctx,
                0,
                params,
                &config,
                &mut stats,
                &incumbent,
                &ctrl,
                &mut scratch,
            );
            search.run();
            search.take_spawned()
        };
        // The root is not pruned under the basic config, so every vertex spawns a
        // subtree — except the last `min_size - 1` roots, whose subtrees cannot reach
        // the minimum fair-clique size and are cut by the tail early-exit.
        assert_eq!(tasks.len(), g.num_vertices() - params.min_size() + 1);
        for task in tasks {
            let mut search = ComponentSearch::new(
                &ctx,
                0,
                params,
                &config,
                &mut stats,
                &incumbent,
                &ctrl,
                &mut scratch,
            );
            search.run_task(task);
            assert!(search.take_spawned().is_empty(), "split depth 1 re-splits");
        }
        assert_eq!(incumbent.into_best().map(|c| c.len()), Some(7));
    }
}
