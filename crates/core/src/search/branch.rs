//! The per-component branch-and-bound recursion (Algorithm 3, canonical-order variant).
//!
//! Vertices of the component are re-labeled by their rank in the configured
//! [`BranchOrder`](super::BranchOrder), and all candidate sets are [`Bitset`]s over
//! ranks backed by a dense [`BitMatrix`] adjacency built once per component. The hot
//! `candidates ∩ N(v)` step of every branch is then a word-wise AND, and iterating a
//! candidate set's bits in ascending order *is* iterating it in branching order.

use rfc_graph::bitset::{BitMatrix, Bitset};
use rfc_graph::subgraph::InducedSubgraph;
use rfc_graph::{Attribute, AttributeCounts, VertexId};

use crate::bounds::{instance_upper_bound, ExtraBound};
use crate::problem::FairCliqueParams;

use super::control::SearchControl;
use super::ordering::{ordering_sequence, positions_of};
use super::parallel::SharedIncumbent;
use super::{SearchConfig, SearchStats};

/// Branch-and-bound search over a single connected component (given as an induced
/// subgraph with compact vertex ids).
///
/// The incumbent is shared: improvements are published through the [`SharedIncumbent`]
/// as soon as they are found, and the size/bound prunes always test against the current
/// global incumbent — whether it came from this component, the heuristic warm start, or
/// (in parallel mode) another worker.
pub(super) struct ComponentSearch<'a> {
    sub: &'a InducedSubgraph,
    params: FairCliqueParams,
    config: &'a SearchConfig,
    stats: &'a mut SearchStats,
    incumbent: &'a SharedIncumbent,
    /// Budget/cancellation control; checked once per node so exhausted budgets unwind
    /// the whole recursion promptly.
    ctrl: &'a SearchControl,
    /// `order[rank]` is the component-local vertex with that branching rank.
    order: Vec<VertexId>,
    /// Adjacency over ranks: bit `r` of row `q` is set iff the vertices ranked `q` and
    /// `r` are adjacent.
    adj: BitMatrix,
    /// Ranks whose vertex has attribute `a` (candidate attribute counts come from one
    /// AND + popcount against this mask).
    attr_a: Bitset,
    /// Current partial clique, in component-local ids.
    r: Vec<VertexId>,
}

impl<'a> ComponentSearch<'a> {
    pub(super) fn new(
        sub: &'a InducedSubgraph,
        params: FairCliqueParams,
        config: &'a SearchConfig,
        stats: &'a mut SearchStats,
        incumbent: &'a SharedIncumbent,
        ctrl: &'a SearchControl,
    ) -> Self {
        let cg = &sub.graph;
        let n = cg.num_vertices();
        let order = ordering_sequence(cg, config.branch_order);
        let positions = positions_of(&order);
        let mut adj = BitMatrix::new(n);
        for &(u, v) in cg.edge_list() {
            adj.set_edge(positions[u as usize], positions[v as usize]);
        }
        let mut attr_a = Bitset::new(n);
        for v in cg.vertices() {
            if cg.attribute(v) == Attribute::A {
                attr_a.insert(positions[v as usize]);
            }
        }
        Self {
            sub,
            params,
            config,
            stats,
            incumbent,
            ctrl,
            order,
            adj,
            attr_a,
            r: Vec::new(),
        }
    }

    /// Runs the search. Any fair clique strictly improving the shared incumbent is
    /// published to it (in parent-graph vertex ids) the moment it is found.
    pub(super) fn run(&mut self) {
        let root = Bitset::full(self.sub.graph.num_vertices());
        self.branch(AttributeCounts::new(), &root, 0);
    }

    fn branch(&mut self, counts: AttributeCounts, candidates: &Bitset, depth: usize) {
        if self.ctrl.on_node() {
            return;
        }
        self.stats.branches += 1;
        let cg = &self.sub.graph;
        let params = self.params;

        // Record the current clique if it is fair and improves the incumbent.
        if self.r.len() > self.incumbent.size()
            && params.is_fair(counts)
            && self.incumbent.offer(self.sub.to_original_set(&self.r))
        {
            self.stats.incumbent_updates += 1;
        }
        let cand_total = candidates.count();
        if cand_total == 0 {
            return;
        }

        // --- Cheap feasibility pruning (every node) ---------------------------------
        let cand_a = candidates.intersection_count(self.attr_a.words());
        let cand_b = cand_total - cand_a;
        let reach_a = counts.a() + cand_a;
        let reach_b = counts.b() + cand_b;
        if reach_a < params.k || reach_b < params.k {
            self.stats.feasibility_prunes += 1;
            return;
        }
        // δ-feasibility: the committed majority can never be balanced out.
        if counts.a() > reach_b + params.delta || counts.b() > reach_a + params.delta {
            self.stats.feasibility_prunes += 1;
            return;
        }
        // Trivial size bound (ubs) and minimum-size gate.
        let best_size = self.incumbent.size();
        let ubs = self.r.len() + cand_total;
        if ubs <= best_size || ubs < params.min_size() {
            self.stats.bound_prunes += 1;
            return;
        }
        // Attribute bound (uba) — still O(1) from the counts above.
        match params.best_fair_total(reach_a, reach_b) {
            None => {
                self.stats.feasibility_prunes += 1;
                return;
            }
            Some(uba) => {
                if uba <= best_size || uba < params.min_size() {
                    self.stats.bound_prunes += 1;
                    return;
                }
            }
        }

        // --- Expensive bounds (shallow nodes only) -----------------------------------
        let bounds = &self.config.bounds;
        let use_expensive =
            depth <= bounds.max_depth && (bounds.advanced || bounds.extra != ExtraBound::None);
        if use_expensive {
            let mut instance: Vec<VertexId> = Vec::with_capacity(self.r.len() + cand_total);
            instance.extend_from_slice(&self.r);
            instance.extend(candidates.iter().map(|rank| self.order[rank]));
            let ub = instance_upper_bound(cg, &instance, params, bounds);
            if ub <= best_size || ub < params.min_size() {
                self.stats.bound_prunes += 1;
                return;
            }
        }

        // --- Canonical-order branching ------------------------------------------------
        // `rest` always holds the candidates not yet branched on; taking the lowest set
        // bit walks them in branching order, and removing the branch vertex before the
        // AND keeps only *later-ordered* neighbors, so every clique is visited once.
        let mut rest = candidates.clone();
        let mut remaining = cand_total;
        while let Some(rank) = rest.first_set() {
            if self.ctrl.stopped() {
                break;
            }
            // Even taking every remaining candidate cannot beat the incumbent.
            if self.r.len() + remaining <= self.incumbent.size()
                || self.r.len() + remaining < params.min_size()
            {
                self.stats.bound_prunes += 1;
                break;
            }
            rest.remove(rank);
            let v = self.order[rank];
            let mut next_counts = counts;
            next_counts.add(cg.attribute(v));
            let next_candidates = rest.intersection_with(self.adj.row(rank));
            self.r.push(v);
            self.branch(next_counts, &next_candidates, depth + 1);
            self.r.pop();
            remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::subgraph::induced_subgraph;
    use rfc_graph::{fixtures, AttributedGraph};

    fn search_component(
        g: &AttributedGraph,
        params: FairCliqueParams,
        config: &SearchConfig,
        incumbent_size: usize,
    ) -> (Option<Vec<VertexId>>, SearchStats) {
        let all: Vec<VertexId> = g.vertices().collect();
        let sub = induced_subgraph(g, &all);
        let mut stats = SearchStats::default();
        let incumbent = SharedIncumbent::with_floor(incumbent_size);
        let ctrl = SearchControl::unlimited();
        ComponentSearch::new(&sub, params, config, &mut stats, &incumbent, &ctrl).run();
        (incumbent.into_best(), stats)
    }

    #[test]
    fn finds_optimum_within_a_component() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, stats) = search_component(&g, params, &SearchConfig::default(), 0);
        assert_eq!(best.unwrap().len(), 7);
        assert!(stats.branches > 0);
        assert!(stats.incumbent_updates > 0);
    }

    #[test]
    fn incumbent_at_optimum_suppresses_new_solution() {
        // If the incumbent already matches the optimum, the component search must not
        // record anything (it only reports strict improvements).
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, _) = search_component(&g, params, &SearchConfig::default(), 7);
        assert!(best.is_none());
    }

    #[test]
    fn incumbent_below_optimum_is_improved() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (best, _) = search_component(&g, params, &SearchConfig::default(), 6);
        assert_eq!(best.unwrap().len(), 7);
    }

    #[test]
    fn basic_config_explores_more_branches_than_bounded_config() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let (_, basic) = search_component(&g, params, &SearchConfig::basic(), 0);
        let (_, bounded) = search_component(
            &g,
            params,
            &SearchConfig::with_bounds(crate::bounds::ExtraBound::ColorfulDegeneracy),
            0,
        );
        assert!(bounded.branches <= basic.branches);
    }

    #[test]
    fn bitset_adjacency_matches_graph_adjacency() {
        let g = fixtures::fig1_graph();
        let all: Vec<VertexId> = g.vertices().collect();
        let sub = induced_subgraph(&g, &all);
        let config = SearchConfig::default();
        let mut stats = SearchStats::default();
        let incumbent = SharedIncumbent::new(None);
        let ctrl = SearchControl::unlimited();
        let params = FairCliqueParams::new(2, 1).unwrap();
        let search = ComponentSearch::new(&sub, params, &config, &mut stats, &incumbent, &ctrl);
        let n = sub.graph.num_vertices();
        for qr in 0..n {
            for rr in 0..n {
                let (u, v) = (search.order[qr], search.order[rr]);
                assert_eq!(
                    search.adj.contains(qr, rr),
                    sub.graph.has_edge(u, v),
                    "ranks ({qr}, {rr}) ↔ vertices ({u}, {v})"
                );
            }
        }
    }
}
