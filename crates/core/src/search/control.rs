//! Cooperative stop control for the branch-and-bound: time/node budgets and
//! cancellation.
//!
//! A [`SearchControl`] is shared by every component search of one query (and every
//! worker thread in parallel mode). The branch recursion calls [`on_node`] once per
//! node; when a budget is exhausted or the query's [`CancelToken`] fires, a sticky
//! stop flag is set and every frame unwinds promptly. The incumbent found so far is
//! untouched, so a stopped search still returns a valid (possibly suboptimal)
//! best-so-far.
//!
//! An unlimited control (no deadline, no node limit, no token) compiles the per-node
//! check down to a single predictable branch, so queries that don't use budgets pay
//! essentially nothing.
//!
//! [`on_node`]: SearchControl::on_node

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

use crate::solver::{Budget, CancelToken};

/// Why a search stopped before running to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StopReason {
    /// The time or node budget was exhausted.
    Budget,
    /// The query's [`CancelToken`] was cancelled.
    Cancelled,
}

/// Shared stop state for one query's branch-and-bound.
#[derive(Debug)]
pub(crate) struct SearchControl {
    /// Fast path: `false` means no deadline, no node limit and no cancel token, so
    /// [`on_node`](Self::on_node) returns immediately.
    active: bool,
    /// Wall-clock instant after which the search must stop.
    deadline: Option<Instant>,
    /// Maximum number of branch nodes across all components and workers
    /// (`u64::MAX` when unlimited).
    node_limit: u64,
    /// Cooperative cancellation token, if the query carries one.
    cancel: Option<CancelToken>,
    /// Branch nodes counted so far (shared across workers).
    nodes: AtomicU64,
    /// Sticky stop flag: `0` running, otherwise a [`StopReason`] + 1.
    stop: AtomicU8,
}

impl SearchControl {
    /// A control that never stops the search.
    #[cfg(test)]
    pub(crate) fn unlimited() -> Self {
        Self::new(&Budget::default(), None)
    }

    /// Builds the control for one query. The deadline is anchored at this call, so
    /// construct it when the query's search phase starts.
    pub(crate) fn new(budget: &Budget, cancel: Option<CancelToken>) -> Self {
        // A time limit too large for the clock to represent can never fire: treat it
        // as unlimited instead of panicking on `Instant` overflow.
        let deadline = budget
            .time_limit
            .and_then(|limit| Instant::now().checked_add(limit));
        let node_limit = budget.node_limit.unwrap_or(u64::MAX);
        Self {
            active: deadline.is_some() || node_limit != u64::MAX || cancel.is_some(),
            deadline,
            node_limit,
            cancel,
            nodes: AtomicU64::new(0),
            stop: AtomicU8::new(0),
        }
    }

    /// Whether the stop flag has been raised. Cheap enough for inner loops.
    #[inline]
    pub(crate) fn stopped(&self) -> bool {
        self.active && self.stop.load(Ordering::Relaxed) != 0
    }

    /// Counts one branch node and returns `true` if the search must stop.
    ///
    /// The node counter is exact (one shared atomic increment per node); the clock is
    /// only consulted on the first node and every 64th node thereafter, so a
    /// `time_limit` of zero still trips deterministically on the very first node while
    /// steady-state nodes stay syscall-free.
    #[inline]
    pub(crate) fn on_node(&self) -> bool {
        if !self.active {
            return false;
        }
        if self.stop.load(Ordering::Relaxed) != 0 {
            return true;
        }
        let n = self.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.node_limit {
            self.trip(StopReason::Budget);
            return true;
        }
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                self.trip(StopReason::Cancelled);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if n % 64 == 1 && Instant::now() >= deadline {
                self.trip(StopReason::Budget);
                return true;
            }
        }
        false
    }

    /// Checks the deadline and the cancel token *now*, without counting a branch
    /// node, and returns `true` if the query must stop.
    ///
    /// The budget phases that run before (or outside) the branch-and-bound —
    /// reduction stages, out-of-core peel rounds — call this between units of work so
    /// `Budget.time_limit` covers the whole query, while the node counter keeps its
    /// meaning of "branch nodes visited" (a `node_limit` alone never trips here).
    pub(crate) fn check_now(&self) -> bool {
        if !self.active {
            return false;
        }
        if self.stop.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                self.trip(StopReason::Cancelled);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(StopReason::Budget);
                return true;
            }
        }
        false
    }

    /// Why the search stopped, or `None` if it ran to completion.
    pub(crate) fn stop_reason(&self) -> Option<StopReason> {
        match self.stop.load(Ordering::Relaxed) {
            0 => None,
            1 => Some(StopReason::Budget),
            _ => Some(StopReason::Cancelled),
        }
    }

    /// Total branch nodes counted (0 when the control is inactive — the stats'
    /// `branches` counter is the authoritative number there).
    #[cfg(test)]
    pub(crate) fn nodes_visited(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Raises the stop flag; the first reason to trip wins.
    fn trip(&self, reason: StopReason) {
        let value = match reason {
            StopReason::Budget => 1,
            StopReason::Cancelled => 2,
        };
        let _ = self
            .stop
            .compare_exchange(0, value, Ordering::Relaxed, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_control_never_stops() {
        let ctrl = SearchControl::unlimited();
        for _ in 0..10_000 {
            assert!(!ctrl.on_node());
        }
        assert!(!ctrl.stopped());
        assert_eq!(ctrl.stop_reason(), None);
        // Inactive controls skip the node counter entirely.
        assert_eq!(ctrl.nodes_visited(), 0);
    }

    #[test]
    fn node_limit_trips_exactly_after_the_budget() {
        let budget = Budget::default().with_node_limit(5);
        let ctrl = SearchControl::new(&budget, None);
        for _ in 0..5 {
            assert!(!ctrl.on_node());
        }
        assert!(ctrl.on_node());
        assert!(ctrl.stopped());
        assert_eq!(ctrl.stop_reason(), Some(StopReason::Budget));
        // The flag is sticky.
        assert!(ctrl.on_node());
    }

    #[test]
    fn zero_time_limit_trips_on_the_first_node() {
        let budget = Budget::default().with_time_limit(Duration::ZERO);
        let ctrl = SearchControl::new(&budget, None);
        assert!(ctrl.on_node());
        assert_eq!(ctrl.stop_reason(), Some(StopReason::Budget));
    }

    #[test]
    fn absurdly_large_time_limit_behaves_as_unlimited() {
        // `Instant + Duration` would panic on overflow; the control must degrade to
        // "no deadline" instead (a limit centuries away can never fire anyway).
        let budget = Budget::default().with_time_limit(Duration::from_secs(u64::MAX));
        let ctrl = SearchControl::new(&budget, None);
        for _ in 0..200 {
            assert!(!ctrl.on_node());
        }
        assert_eq!(ctrl.stop_reason(), None);
    }

    #[test]
    fn cancellation_wins_over_later_budget_trips() {
        let token = CancelToken::new();
        let budget = Budget::default().with_node_limit(100);
        let ctrl = SearchControl::new(&budget, Some(token.clone()));
        assert!(!ctrl.on_node());
        token.cancel();
        assert!(ctrl.on_node());
        assert_eq!(ctrl.stop_reason(), Some(StopReason::Cancelled));
        // Subsequent node-limit exhaustion cannot overwrite the sticky reason.
        for _ in 0..200 {
            ctrl.on_node();
        }
        assert_eq!(ctrl.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn check_now_trips_on_deadline_and_cancel_but_never_on_node_limits() {
        // Zero time limit: an immediate check trips without visiting any node.
        let ctrl = SearchControl::new(&Budget::default().with_time_limit(Duration::ZERO), None);
        assert!(ctrl.check_now());
        assert_eq!(ctrl.stop_reason(), Some(StopReason::Budget));
        assert_eq!(ctrl.nodes_visited(), 0);

        // A pre-cancelled token trips too.
        let token = CancelToken::new();
        token.cancel();
        let ctrl = SearchControl::new(&Budget::default(), Some(token));
        assert!(ctrl.check_now());
        assert_eq!(ctrl.stop_reason(), Some(StopReason::Cancelled));

        // A pure node limit is about branch nodes only: check_now must not trip it,
        // so a node-starved query still gets its reduction and warm start.
        let ctrl = SearchControl::new(&Budget::default().with_node_limit(0), None);
        assert!(!ctrl.check_now());
        assert_eq!(ctrl.stop_reason(), None);

        // Inactive controls short-circuit.
        let ctrl = SearchControl::unlimited();
        assert!(!ctrl.check_now());
    }

    #[test]
    fn node_counter_is_shared_and_exact() {
        let budget = Budget::default().with_node_limit(u64::MAX - 1);
        let ctrl = SearchControl::new(&budget, None);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctrl = &ctrl;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        ctrl.on_node();
                    }
                });
            }
        });
        assert_eq!(ctrl.nodes_visited(), 4000);
        assert!(!ctrl.stopped());
    }
}
