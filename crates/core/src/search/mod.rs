//! The `MaxRFC` branch-and-bound framework (Section IV, Algorithms 2–3).
//!
//! The crate's primary entry point is the reusable [`RfcSolver`](crate::solver); this
//! module houses the search engine below it plus the classic one-shot wrappers.
//! A solve:
//!
//! 1. shrinks the input graph with the configured [reduction pipeline](crate::reduction)
//!    (`EnColorfulCore` → `ColorfulSup` → `EnColorfulSup`, Algorithm 2 lines 1–3);
//! 2. optionally warm-starts the incumbent with the [`HeurRFC`](crate::heuristic)
//!    heuristic;
//! 3. runs an exact branch-and-bound over every connected component of the reduced
//!    graph — serially or across worker threads with a shared incumbent (see
//!    [`ThreadCount`]) — ordering vertices by the colorful-core peeling order
//!    (`CalColorOD`) and pruning with the configured [upper bounds](crate::bounds)
//!    plus attribute- and δ-feasibility checks;
//! 4. returns the maximum relative fair clique (if any) together with detailed
//!    [`SearchStats`].
//!
//! ### Branching-order note
//!
//! Algorithm 3 of the paper interleaves an alternating-attribute vertex choice with the
//! global ordering filter `O(v) > O(u)`; read literally, that combination can skip fair
//! cliques whose attribute-alternating order disagrees with `O`. To keep the search
//! exact, this implementation uses canonical-order branching: candidates are processed
//! in the chosen [`BranchOrder`] and each branch keeps only later-ordered neighbors, so
//! every clique of the component is visited exactly once. All of the paper's pruning
//! rules are applied unchanged. See DESIGN.md §4 for the full discussion.

mod branch;
pub(crate) mod control;
mod ordering;
pub(crate) mod parallel;
pub(crate) mod steal;

pub use ordering::{ordering_positions, ordering_sequence, BranchOrder};
pub use parallel::ThreadCount;

use rfc_graph::components::components_of_subset;
use rfc_graph::{AttributedGraph, VertexId};

use crate::bounds::BoundConfig;
use crate::heuristic::HeuristicConfig;
use crate::problem::{FairClique, FairCliqueParams, FairnessModel};
use crate::reduction::{ReductionConfig, ReductionStats};
use crate::solver::{Query, RfcSolver};

/// Full configuration of the `MaxRFC` search.
///
/// The [`Default`] configuration is the strongest exact setup (full reductions, the
/// advanced bounds plus the colorful-degeneracy bound, and the heuristic warm start —
/// i.e. `MaxRFC+ub+HeurRFC`); use [`SearchConfig::basic`] or [`SearchConfig::with_bounds`]
/// to reproduce the weaker configurations the paper compares against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchConfig {
    /// Which reduction stages run before the search.
    pub reductions: ReductionConfig,
    /// Which upper bounds prune the search tree.
    pub bounds: BoundConfig,
    /// Whether to warm-start the incumbent with `HeurRFC`.
    pub use_heuristic: bool,
    /// Tuning for the heuristic warm start (ignored unless `use_heuristic`).
    pub heuristic: HeuristicConfig,
    /// Vertex ordering used for canonical branching.
    pub branch_order: BranchOrder,
    /// How many worker threads search the connected components of the reduced graph.
    ///
    /// The default ([`ThreadCount::Auto`]) uses all available CPUs; components are
    /// dispatched largest-first and all workers share one incumbent, so a clique found
    /// anywhere immediately tightens every other worker's prunes. Use
    /// [`ThreadCount::Serial`] for the classic fully deterministic sequential search —
    /// see [`ThreadCount`] for the determinism trade-off.
    pub threads: ThreadCount,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::full(crate::bounds::ExtraBound::ColorfulDegeneracy)
    }
}

impl SearchConfig {
    /// The *basic* `MaxRFC` of the experiments: full reductions, only the trivial size
    /// bound, no heuristic.
    pub fn basic() -> Self {
        Self {
            reductions: ReductionConfig::default(),
            bounds: BoundConfig::basic(),
            use_heuristic: false,
            heuristic: HeuristicConfig::default(),
            branch_order: BranchOrder::ColorfulCore,
            threads: ThreadCount::default(),
        }
    }

    /// `MaxRFC+ub`: reductions plus the advanced bound group and the given extra bound.
    pub fn with_bounds(extra: crate::bounds::ExtraBound) -> Self {
        Self {
            reductions: ReductionConfig::default(),
            bounds: BoundConfig::with_extra(extra),
            use_heuristic: false,
            heuristic: HeuristicConfig::default(),
            branch_order: BranchOrder::ColorfulCore,
            threads: ThreadCount::default(),
        }
    }

    /// `MaxRFC+ub+HeurRFC`: everything on (this is also the [`Default`]).
    pub fn full(extra: crate::bounds::ExtraBound) -> Self {
        Self {
            reductions: ReductionConfig::default(),
            bounds: BoundConfig::with_extra(extra),
            use_heuristic: true,
            heuristic: HeuristicConfig::default(),
            branch_order: BranchOrder::ColorfulCore,
            threads: ThreadCount::default(),
        }
    }

    /// Returns this configuration with the given thread count.
    pub fn with_threads(mut self, threads: ThreadCount) -> Self {
        self.threads = threads;
        self
    }
}

/// Per-reason breakdown of the prune counters, one field per cut site in the
/// branch-and-bound recursion.
///
/// The aggregate [`SearchStats::feasibility_prunes`] and [`SearchStats::bound_prunes`]
/// counters partition exactly into these reasons:
/// `feasibility_prunes == attr_reach + delta + attr_infeasible` and
/// `bound_prunes == size_bound + attr_bound + colorful_bound + tail_cut` — the
/// invariant [`consistent_with`](Self::consistent_with) checks. The same names label
/// the `rfc_search_prunes_total{reason=...}` metric series and trace counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneCounts {
    /// Too few reachable vertices of one attribute to hit `k` (`reach < k`).
    pub attr_reach: u64,
    /// The committed attribute majority can never be balanced back within `δ`.
    pub delta: u64,
    /// No fair total exists for the reachable attribute counts (`uba` undefined).
    pub attr_infeasible: u64,
    /// Trivial size bound `|R| + |C|` below the useful/minimum size (`ubs`).
    pub size_bound: u64,
    /// Attribute-count upper bound `uba` below the useful/minimum size.
    pub attr_bound: u64,
    /// The expensive colorful instance bound cut a shallow node.
    pub colorful_bound: u64,
    /// Early exit of the branching loop: the remaining tail is too short.
    pub tail_cut: u64,
}

impl PruneCounts {
    /// Sum of the feasibility-cut reasons (must equal
    /// [`SearchStats::feasibility_prunes`]).
    pub fn feasibility(&self) -> u64 {
        self.attr_reach + self.delta + self.attr_infeasible
    }

    /// Sum of the bound-cut reasons (must equal [`SearchStats::bound_prunes`]).
    pub fn bound(&self) -> u64 {
        self.size_bound + self.attr_bound + self.colorful_bound + self.tail_cut
    }

    /// `(reason, count)` pairs in a fixed order — the vocabulary shared by the JSON
    /// stats output, the `reason` metric label and trace counters.
    pub fn reasons(&self) -> [(&'static str, u64); 7] {
        [
            ("attr_reach", self.attr_reach),
            ("delta", self.delta),
            ("attr_infeasible", self.attr_infeasible),
            ("size_bound", self.size_bound),
            ("attr_bound", self.attr_bound),
            ("colorful_bound", self.colorful_bound),
            ("tail_cut", self.tail_cut),
        ]
    }

    /// Whether this breakdown partitions the given aggregate counters exactly.
    pub fn consistent_with(&self, feasibility_prunes: u64, bound_prunes: u64) -> bool {
        self.feasibility() == feasibility_prunes && self.bound() == bound_prunes
    }
}

impl std::ops::AddAssign<&PruneCounts> for PruneCounts {
    fn add_assign(&mut self, rhs: &PruneCounts) {
        self.attr_reach += rhs.attr_reach;
        self.delta += rhs.delta;
        self.attr_infeasible += rhs.attr_infeasible;
        self.size_bound += rhs.size_bound;
        self.attr_bound += rhs.attr_bound;
        self.colorful_bound += rhs.colorful_bound;
        self.tail_cut += rhs.tail_cut;
    }
}

/// Counters describing one `max_fair_clique` run.
///
/// In parallel mode every worker accumulates its own `SearchStats` and the per-worker
/// counters are summed into the final value with the [`AddAssign`](std::ops::AddAssign)
/// merge below, so no counter is ever dropped on the way back to the caller. The
/// branch/prune counters of a multi-threaded run depend on incumbent-update timing and
/// may differ between runs; with [`ThreadCount::Serial`] they are fully deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Statistics of the reduction pipeline.
    pub reduction: ReductionStats,
    /// Size of the fair clique found by the heuristic warm start (which runs on the
    /// *reduced* graph), if it ran and found one.
    pub heuristic_size: Option<usize>,
    /// Number of branch-and-bound nodes visited.
    pub branches: u64,
    /// Branches cut by an upper bound (including the trivial size bound).
    pub bound_prunes: u64,
    /// Branches cut by attribute-count or δ feasibility.
    pub feasibility_prunes: u64,
    /// Per-reason breakdown of the two prune counters above; always partitions them
    /// exactly (see [`PruneCounts::consistent_with`]).
    pub prune_counts: PruneCounts,
    /// Number of times the incumbent improved during the search.
    pub incumbent_updates: u64,
    /// Number of connected components searched.
    pub components_searched: usize,
    /// Wall-clock time of the call, in microseconds (same unit and width as the
    /// per-stage reduction timings in [`ReductionStats`]). Merging takes the larger
    /// of the two sides, so a parallel solve reports real elapsed time — never the
    /// sum of its workers' clocks.
    pub elapsed_micros: u64,
    /// Total CPU busy time across all workers, in microseconds. For a serial run this
    /// is the search phase's wall time; for a parallel run it is the summed per-worker
    /// busy time and may legitimately exceed [`elapsed_micros`](Self::elapsed_micros).
    pub cpu_micros: u64,
}

impl std::ops::AddAssign<&SearchStats> for SearchStats {
    /// Merges another run's (or worker's) counters into `self`.
    ///
    /// All branch/prune/component counters and the CPU busy time are summed;
    /// wall-clock time takes the maximum of the two sides (summing per-worker clocks
    /// used to over-report parallel "time" several-fold). `heuristic_size` keeps the
    /// larger of the two, and the reduction stats keep whichever side actually ran a
    /// pipeline (workers never do) — `self`'s wins if both did.
    fn add_assign(&mut self, rhs: &SearchStats) {
        self.branches += rhs.branches;
        self.bound_prunes += rhs.bound_prunes;
        self.feasibility_prunes += rhs.feasibility_prunes;
        self.prune_counts += &rhs.prune_counts;
        self.incumbent_updates += rhs.incumbent_updates;
        self.components_searched += rhs.components_searched;
        self.elapsed_micros = self.elapsed_micros.max(rhs.elapsed_micros);
        self.cpu_micros += rhs.cpu_micros;
        self.heuristic_size = self.heuristic_size.max(rhs.heuristic_size);
        if self.reduction == ReductionStats::default() {
            self.reduction = rhs.reduction.clone();
        }
    }
}

/// The result of [`max_fair_clique`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// A maximum relative fair clique, or `None` if the graph has no fair clique.
    pub best: Option<FairClique>,
    /// Counters for the run.
    pub stats: SearchStats,
}

/// Finds a maximum **weak** fair clique: a largest clique with at least `k` vertices of
/// each attribute, with no constraint on the imbalance (the weak fair clique model of
/// Pan et al., which the relative model generalizes with `δ = ∞`).
///
/// Equivalent to solving [`FairnessModel::Weak`] through a throwaway [`RfcSolver`];
/// build a solver directly to serve many queries off one preprocessing pass.
pub fn max_weak_fair_clique(g: &AttributedGraph, k: usize, config: &SearchConfig) -> SearchOutcome {
    solve_one_shot(g, FairnessModel::Weak { k }, config)
}

/// Finds a maximum **strong** fair clique: a largest clique with the *same* number of
/// vertices of each attribute, both at least `k` (the strong fair clique model, i.e.
/// the relative model with `δ = 0`).
///
/// Equivalent to solving [`FairnessModel::Strong`] through a throwaway [`RfcSolver`].
pub fn max_strong_fair_clique(
    g: &AttributedGraph,
    k: usize,
    config: &SearchConfig,
) -> SearchOutcome {
    solve_one_shot(g, FairnessModel::Strong { k }, config)
}

/// Finds a maximum relative fair clique of `g` under `params` — the `MaxRFC` algorithm.
///
/// This is the classic one-shot entry point, kept as a thin compatibility wrapper: it
/// builds a throwaway [`RfcSolver`] (cloning `g` and redoing all preprocessing) and
/// solves a single unbudgeted [`FairnessModel::Relative`] query. Callers issuing more
/// than one query over the same graph should build an [`RfcSolver`] once and reuse it.
pub fn max_fair_clique(
    g: &AttributedGraph,
    params: FairCliqueParams,
    config: &SearchConfig,
) -> SearchOutcome {
    solve_one_shot(
        g,
        FairnessModel::Relative {
            k: params.k,
            delta: params.delta,
        },
        config,
    )
}

/// Shared body of the one-shot compatibility wrappers.
fn solve_one_shot(
    g: &AttributedGraph,
    model: FairnessModel,
    config: &SearchConfig,
) -> SearchOutcome {
    let solver = RfcSolver::new(g.clone());
    let query = Query::new(model).with_config(config.clone());
    match solver.solve(&query) {
        Ok(solution) => {
            let (cliques, stats) = solution.into_parts();
            SearchOutcome {
                best: cliques.into_iter().next(),
                stats,
            }
        }
        // Only reachable by bypassing the validated constructors (e.g. a literal
        // `FairCliqueParams { k: 0, .. }`): report "no fair clique" instead of
        // panicking inside a compatibility wrapper.
        Err(_) => SearchOutcome {
            best: None,
            stats: SearchStats::default(),
        },
    }
}

/// Runs the branch-and-bound phase over every eligible connected component of
/// `reduced`, publishing improvements into `incumbent` and honoring `ctrl`.
///
/// This is the engine below [`RfcSolver::solve`]: reduction and the heuristic warm
/// start have already happened by the time it runs. Returns the search-phase counters
/// (the caller owns reduction stats and wall-clock time).
pub(crate) fn branch_and_bound(
    reduced: &AttributedGraph,
    params: FairCliqueParams,
    config: &SearchConfig,
    incumbent: &parallel::SharedIncumbent,
    ctrl: &control::SearchControl,
) -> SearchStats {
    let mut stats = SearchStats::default();

    // Only vertices that kept enough neighbors can be part of a fair clique.
    let active: Vec<VertexId> = reduced
        .vertices()
        .filter(|&v| reduced.degree(v) + 1 >= params.min_size())
        .collect();
    let mut components: Vec<Vec<VertexId>> = components_of_subset(reduced, &active)
        .into_iter()
        .filter(|component| component.len() >= params.min_size())
        .collect();

    // A single giant component still uses every worker (its subtrees are stealable),
    // so the worker count is *not* capped at the component count.
    let workers = if components.is_empty() {
        1
    } else {
        config.threads.resolve()
    };
    if workers <= 1 {
        // Deterministic serial path: components in discovery order, exactly the
        // classic sequential algorithm (improvements still flow through `incumbent`).
        let busy = std::time::Instant::now();
        let mut scratch = rfc_graph::bitset::BitsetPool::new(0);
        for component in &components {
            if ctrl.stopped() {
                break;
            }
            stats.components_searched += 1;
            let mut span = rfc_obs::trace::span("component");
            span.counter("vertices", component.len() as u64);
            let branches_before = stats.branches;
            let ctx = branch::ComponentContext::new(reduced, component, config);
            scratch.reset(ctx.num_vertices());
            branch::ComponentSearch::new(
                &ctx,
                0,
                params,
                config,
                &mut stats,
                incumbent,
                ctrl,
                &mut scratch,
            )
            .run();
            span.counter("branches", stats.branches - branches_before);
        }
        stats.cpu_micros += busy.elapsed().as_micros() as u64;
    } else {
        // Largest components first so the most expensive searches start immediately
        // and a straggler can't serialize the tail (ties broken by vertex ids to keep
        // the dispatch order itself reproducible).
        components.sort_unstable_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        stats += &parallel::search_components(
            reduced,
            &components,
            params,
            config,
            workers,
            incumbent,
            ctrl,
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{bron_kerbosch_max_fair_clique, brute_force_max_fair_clique};
    use crate::bounds::ExtraBound;
    use crate::verify::{is_fair_and_clique, is_relative_fair_clique};
    use rfc_graph::fixtures;

    fn all_configs() -> Vec<SearchConfig> {
        let mut configs = vec![SearchConfig::basic(), SearchConfig::default()];
        for extra in ExtraBound::ALL {
            configs.push(SearchConfig::with_bounds(extra));
            configs.push(SearchConfig::full(extra));
        }
        configs
    }

    #[test]
    fn finds_the_optimum_on_fig1_with_every_config() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        for config in all_configs() {
            let outcome = max_fair_clique(&g, params, &config);
            let best = outcome.best.expect("a fair clique exists");
            assert_eq!(best.size(), 7, "config {config:?}");
            assert!(is_fair_and_clique(&g, &best.vertices, params));
            assert!(is_relative_fair_clique(&g, &best.vertices, params));
        }
    }

    #[test]
    fn agrees_with_baselines_across_parameters() {
        let g = fixtures::fig1_graph();
        for (k, delta) in [
            (1usize, 0usize),
            (1, 2),
            (2, 0),
            (2, 1),
            (3, 1),
            (3, 2),
            (4, 1),
            (4, 4),
        ] {
            let params = FairCliqueParams::new(k, delta).unwrap();
            let exact = max_fair_clique(&g, params, &SearchConfig::default());
            let brute = brute_force_max_fair_clique(&g, params);
            let bk = bron_kerbosch_max_fair_clique(&g, params);
            let sizes = (
                exact.best.as_ref().map(|c| c.size()),
                brute.as_ref().map(|c| c.size()),
                bk.as_ref().map(|c| c.size()),
            );
            assert_eq!(sizes.0, sizes.1, "(k={k}, δ={delta})");
            assert_eq!(sizes.0, sizes.2, "(k={k}, δ={delta})");
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two cliques joined by a bridge: only the mixed-attribute one can be fair; the
        // reductions disconnect / strip the other.
        let g = fixtures::two_cliques_with_bridge(8, 6);
        let params = FairCliqueParams::new(3, 2).unwrap();
        let outcome = max_fair_clique(&g, params, &SearchConfig::default());
        let best = outcome.best.unwrap();
        assert_eq!(best.size(), 8);
        assert!(best.vertices.iter().all(|&v| (v as usize) < 8));
    }

    #[test]
    fn infeasible_instances_return_none() {
        let g = fixtures::path_graph(10);
        let params = FairCliqueParams::new(2, 1).unwrap();
        assert!(max_fair_clique(&g, params, &SearchConfig::default())
            .best
            .is_none());

        let single_attr = fixtures::two_cliques_with_bridge(0, 9);
        let params1 = FairCliqueParams::new(1, 3).unwrap();
        assert!(
            max_fair_clique(&single_attr, params1, &SearchConfig::default())
                .best
                .is_none()
        );
    }

    #[test]
    fn stats_are_populated() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let outcome = max_fair_clique(&g, params, &SearchConfig::full(ExtraBound::ColorfulPath));
        assert!(outcome.stats.branches > 0);
        assert!(outcome.stats.components_searched >= 1);
        assert_eq!(outcome.stats.reduction.stages.len(), 3);
        assert!(outcome.stats.heuristic_size.is_some());
        // The heuristic can never beat the exact optimum.
        assert!(outcome.stats.heuristic_size.unwrap() <= outcome.best.unwrap().size());
    }

    #[test]
    fn heuristic_warm_start_prunes_at_least_as_much() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let plain = max_fair_clique(
            &g,
            params,
            &SearchConfig::with_bounds(ExtraBound::ColorfulDegeneracy),
        );
        let warm = max_fair_clique(
            &g,
            params,
            &SearchConfig::full(ExtraBound::ColorfulDegeneracy),
        );
        assert_eq!(
            plain.best.as_ref().unwrap().size(),
            warm.best.as_ref().unwrap().size()
        );
        assert!(warm.stats.branches <= plain.stats.branches);
    }

    #[test]
    fn weak_and_strong_models_bracket_the_relative_model() {
        // On the Fig.1 fixture with k = 3: strong (δ=0) gives 6, relative (δ=1) gives 7,
        // weak (δ=∞) gives 8 (the whole planted clique).
        let g = fixtures::fig1_graph();
        let config = SearchConfig::default();
        let strong = max_strong_fair_clique(&g, 3, &config).best.unwrap().size();
        let relative = max_fair_clique(&g, FairCliqueParams::new(3, 1).unwrap(), &config)
            .best
            .unwrap()
            .size();
        let weak = max_weak_fair_clique(&g, 3, &config).best.unwrap().size();
        assert_eq!(strong, 6);
        assert_eq!(relative, 7);
        assert_eq!(weak, 8);
        assert!(strong <= relative && relative <= weak);
        // Strong fair cliques are perfectly balanced.
        let strong_clique = max_strong_fair_clique(&g, 3, &config).best.unwrap();
        assert_eq!(strong_clique.counts.a(), strong_clique.counts.b());
        // With k larger than the rarer attribute can support, all three are infeasible.
        assert!(max_weak_fair_clique(&g, 6, &config).best.is_none());
        assert!(max_strong_fair_clique(&g, 6, &config).best.is_none());
    }

    #[test]
    fn stats_merge_accounts_for_every_counter() {
        // A worker's stats must fold into the aggregate without dropping anything:
        // every counter field is non-zero on both sides and summed (or max'd) here.
        // When adding a field to `SearchStats`, extend this test.
        let mut total = SearchStats {
            reduction: ReductionStats {
                original_vertices: 10,
                original_edges: 20,
                stages: Vec::new(),
            },
            heuristic_size: Some(4),
            branches: 100,
            bound_prunes: 10,
            feasibility_prunes: 20,
            prune_counts: PruneCounts {
                attr_reach: 11,
                delta: 5,
                attr_infeasible: 4,
                size_bound: 4,
                attr_bound: 3,
                colorful_bound: 2,
                tail_cut: 1,
            },
            incumbent_updates: 1,
            components_searched: 2,
            elapsed_micros: 1_000,
            cpu_micros: 900,
        };
        assert!(total
            .prune_counts
            .consistent_with(total.feasibility_prunes, total.bound_prunes));
        let worker = SearchStats {
            reduction: ReductionStats::default(),
            heuristic_size: Some(6),
            branches: 50,
            bound_prunes: 5,
            feasibility_prunes: 7,
            prune_counts: PruneCounts {
                attr_reach: 3,
                delta: 2,
                attr_infeasible: 2,
                size_bound: 2,
                attr_bound: 1,
                colorful_bound: 1,
                tail_cut: 1,
            },
            incumbent_updates: 3,
            components_searched: 4,
            elapsed_micros: 500,
            cpu_micros: 450,
        };
        assert!(worker
            .prune_counts
            .consistent_with(worker.feasibility_prunes, worker.bound_prunes));
        total += &worker;
        assert_eq!(total.branches, 150);
        assert_eq!(total.bound_prunes, 15);
        assert_eq!(total.feasibility_prunes, 27);
        // The breakdown merges field-by-field and stays an exact partition of the
        // aggregates — the drift this test exists to catch.
        assert_eq!(
            total.prune_counts,
            PruneCounts {
                attr_reach: 14,
                delta: 7,
                attr_infeasible: 6,
                size_bound: 6,
                attr_bound: 4,
                colorful_bound: 3,
                tail_cut: 2,
            }
        );
        assert!(total
            .prune_counts
            .consistent_with(total.feasibility_prunes, total.bound_prunes));
        let reason_sum: u64 = total.prune_counts.reasons().iter().map(|(_, n)| n).sum();
        assert_eq!(reason_sum, total.feasibility_prunes + total.bound_prunes);
        assert_eq!(total.incumbent_updates, 4);
        assert_eq!(total.components_searched, 6);
        // Wall-clock takes the max (workers overlap in time); CPU busy time sums.
        assert_eq!(total.elapsed_micros, 1_000);
        assert_eq!(total.cpu_micros, 1_350);
        assert_eq!(total.heuristic_size, Some(6));
        // The aggregate's reduction stats survive a merge with a reduction-less worker…
        assert_eq!(total.reduction.original_vertices, 10);
        // …and a default aggregate adopts the other side's reduction stats.
        let mut fresh = SearchStats::default();
        fresh += &total;
        assert_eq!(fresh.reduction.original_edges, 20);
        assert_eq!(fresh.branches, 150);
    }

    #[test]
    fn prune_breakdown_partitions_the_aggregates_on_real_runs() {
        // Every prune site must bump its reason alongside the aggregate counter, in
        // serial and parallel mode alike (the parallel merge sums the breakdown).
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        for threads in [ThreadCount::Serial, ThreadCount::Fixed(3)] {
            for config in all_configs() {
                let outcome = max_fair_clique(&g, params, &config.with_threads(threads));
                let stats = &outcome.stats;
                assert!(
                    stats
                        .prune_counts
                        .consistent_with(stats.feasibility_prunes, stats.bound_prunes),
                    "breakdown {:?} vs feasibility={} bound={} (threads {threads:?})",
                    stats.prune_counts,
                    stats.feasibility_prunes,
                    stats.bound_prunes,
                );
            }
        }
    }

    #[test]
    fn parallel_threads_find_the_serial_optimum() {
        let graphs = [
            fixtures::fig1_graph(),
            fixtures::two_cliques_with_bridge(8, 6),
            fixtures::fig2_graph(),
        ];
        for g in &graphs {
            for (k, delta) in [(1usize, 1usize), (2, 1), (3, 2)] {
                let params = FairCliqueParams::new(k, delta).unwrap();
                let serial_cfg = SearchConfig::default().with_threads(ThreadCount::Serial);
                let serial = max_fair_clique(g, params, &serial_cfg);
                for threads in [
                    ThreadCount::Fixed(2),
                    ThreadCount::Fixed(4),
                    ThreadCount::Auto,
                ] {
                    let parallel_cfg = SearchConfig::default().with_threads(threads);
                    let parallel = max_fair_clique(g, params, &parallel_cfg);
                    assert_eq!(
                        serial.best.as_ref().map(|c| c.size()),
                        parallel.best.as_ref().map(|c| c.size()),
                        "(k={k}, δ={delta}, threads={threads:?})"
                    );
                    if let Some(clique) = &parallel.best {
                        assert!(is_relative_fair_clique(g, &clique.vertices, params));
                    }
                }
            }
        }
    }

    #[test]
    fn serial_runs_are_reproducible_including_stats() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(3, 1).unwrap();
        let config = SearchConfig::default().with_threads(ThreadCount::Serial);
        let first = max_fair_clique(&g, params, &config);
        for _ in 0..2 {
            let again = max_fair_clique(&g, params, &config);
            assert_eq!(first.best, again.best);
            assert_eq!(first.stats.branches, again.stats.branches);
            assert_eq!(first.stats.bound_prunes, again.stats.bound_prunes);
            assert_eq!(first.stats.incumbent_updates, again.stats.incumbent_updates);
        }
    }

    #[test]
    fn different_branch_orders_agree() {
        let g = fixtures::fig1_graph();
        let params = FairCliqueParams::new(2, 1).unwrap();
        let mut sizes = Vec::new();
        for order in [
            BranchOrder::ColorfulCore,
            BranchOrder::Degeneracy,
            BranchOrder::VertexId,
        ] {
            let config = SearchConfig {
                branch_order: order,
                ..SearchConfig::default()
            };
            sizes.push(
                max_fair_clique(&g, params, &config)
                    .best
                    .map(|c| c.size())
                    .unwrap_or(0),
            );
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes: {sizes:?}");
    }
}
