//! Vertex orderings for canonical branching.
//!
//! The paper's framework orders each component's vertices with the colorful-core based
//! ordering `CalColorOD` (Algorithm 2, line 9): the peeling order of the colorful core
//! decomposition. Vertices that are peeled early (structurally weak) come first, so the
//! candidate sets passed down the search tree stay small — the same trick degeneracy
//! ordering plays for plain maximum clique search.

use rfc_graph::colorful::colorful_core_decomposition;
use rfc_graph::coloring::greedy_coloring;
use rfc_graph::cores::core_decomposition;
use rfc_graph::{AttributedGraph, VertexId};

/// The vertex ordering used for canonical branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchOrder {
    /// Colorful-core peeling order (`CalColorOD`) — the paper's choice.
    #[default]
    ColorfulCore,
    /// Classic degeneracy (k-core peeling) order.
    Degeneracy,
    /// Plain vertex-id order (no structural information; ablation baseline).
    VertexId,
}

/// Computes the branching sequence itself: `sequence[i]` is the vertex with rank `i`
/// (branched on `i`-th).
///
/// The bitset-based component search re-labels vertices by rank so that iterating set
/// bits in word order *is* iterating in branching order; it therefore needs the
/// sequence and its inverse ([`ordering_positions`]) side by side.
pub fn ordering_sequence(g: &AttributedGraph, order: BranchOrder) -> Vec<VertexId> {
    match order {
        BranchOrder::ColorfulCore => {
            let coloring = greedy_coloring(g);
            colorful_core_decomposition(g, &coloring).order
        }
        BranchOrder::Degeneracy => core_decomposition(g).order,
        BranchOrder::VertexId => (0..g.num_vertices() as VertexId).collect(),
    }
}

/// Computes the position of every vertex of `g` in the chosen ordering.
///
/// `positions[v]` is the rank of `v`; lower ranks are branched on first. This is the
/// inverse permutation of [`ordering_sequence`].
pub fn ordering_positions(g: &AttributedGraph, order: BranchOrder) -> Vec<usize> {
    positions_of(&ordering_sequence(g, order))
}

/// Inverts a branching sequence into per-vertex positions.
pub(super) fn positions_of(sequence: &[VertexId]) -> Vec<usize> {
    let mut positions = vec![0usize; sequence.len()];
    for (i, &v) in sequence.iter().enumerate() {
        positions[v as usize] = i;
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    #[test]
    fn positions_are_a_permutation() {
        let g = fixtures::fig1_graph();
        for order in [
            BranchOrder::ColorfulCore,
            BranchOrder::Degeneracy,
            BranchOrder::VertexId,
        ] {
            let pos = ordering_positions(&g, order);
            let mut sorted = pos.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..g.num_vertices()).collect::<Vec<_>>(),
                "{order:?}"
            );
        }
    }

    #[test]
    fn sequence_and_positions_are_inverse_permutations() {
        let g = fixtures::fig1_graph();
        for order in [
            BranchOrder::ColorfulCore,
            BranchOrder::Degeneracy,
            BranchOrder::VertexId,
        ] {
            let seq = ordering_sequence(&g, order);
            let pos = ordering_positions(&g, order);
            assert_eq!(seq.len(), g.num_vertices());
            for (rank, &v) in seq.iter().enumerate() {
                assert_eq!(pos[v as usize], rank, "{order:?}");
            }
        }
    }

    #[test]
    fn vertex_id_order_is_identity() {
        let g = fixtures::path_graph(5);
        assert_eq!(
            ordering_positions(&g, BranchOrder::VertexId),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn colorful_core_order_puts_weak_vertices_first() {
        // In the Fig.1 fixture the left-hand vertices unravel before the 8-clique, so
        // every clique vertex must appear after every non-clique vertex that gets peeled
        // at a strictly smaller colorful core value. We check a weaker but stable
        // property: the *last* vertex in the order belongs to the planted clique.
        let g = fixtures::fig1_graph();
        let pos = ordering_positions(&g, BranchOrder::ColorfulCore);
        let last = (0..g.num_vertices()).max_by_key(|&v| pos[v]).unwrap() as u32;
        assert!(
            [6, 7, 9, 10, 11, 12, 13, 14].contains(&last),
            "last = {last}"
        );
    }
}
