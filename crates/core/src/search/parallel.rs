//! Parallel component-level search with a shared incumbent.
//!
//! The `MaxRFC` branch-and-bound runs one exact search per connected component of the
//! reduced graph, and every pruning rule it applies — the trivial size bound, the
//! attribute bound, and the whole colorful bound family — is *incumbent-driven*: the
//! larger the best fair clique known so far, the more of the tree gets cut. The
//! components are otherwise completely independent, which makes component-level
//! parallelism the natural scaling axis:
//!
//! * Workers are plain [`std::thread::scope`] threads (std only — no external runtime).
//! * Components are dispatched **largest first** from a shared atomic cursor, so the
//!   most expensive component starts immediately and stragglers don't serialize the
//!   tail of the run.
//! * The incumbent is shared through [`SharedIncumbent`]: a lock-free `AtomicUsize`
//!   size bound read on the search hot path, plus a mutex-protected best clique updated
//!   only on (rare) improvements. A clique found in one component therefore tightens
//!   the prunes of every other component *immediately*, so the parallel search never
//!   explores more of any component's tree than a serial run that happened to visit the
//!   incumbent-producing component first.
//!
//! ### Determinism
//!
//! With [`ThreadCount::Serial`] the search is exactly the classic sequential algorithm:
//! components are visited in discovery order and repeated runs produce identical
//! cliques *and* identical [`SearchStats`](super::SearchStats). With two or more
//! workers the *size* of the returned clique is still always the exact optimum, but
//! which of several maximum fair cliques is returned — and all pruning counters —
//! depend on the timing of incumbent updates across threads and may differ between
//! runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rfc_graph::subgraph::induced_subgraph;
use rfc_graph::{AttributedGraph, VertexId};

use crate::problem::FairCliqueParams;

use super::branch::ComponentSearch;
use super::control::SearchControl;
use super::{SearchConfig, SearchStats};

/// How many worker threads the component-level search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadCount {
    /// Classic deterministic single-threaded search: components in discovery order,
    /// reproducible cliques and stats.
    Serial,
    /// One worker per available CPU ([`std::thread::available_parallelism`]); falls
    /// back to serial when parallelism cannot be determined.
    #[default]
    Auto,
    /// Exactly this many workers. `Fixed(0)` and `Fixed(1)` behave like `Serial`.
    Fixed(usize),
}

impl ThreadCount {
    /// The number of workers this setting resolves to on the current machine. A result
    /// of `1` selects the deterministic serial path.
    pub fn resolve(self) -> usize {
        match self {
            ThreadCount::Serial => 1,
            ThreadCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ThreadCount::Fixed(n) => n.max(1),
        }
    }
}

/// The best fair cliques found so far, shared across component searches (and worker
/// threads in parallel mode).
///
/// The pool holds up to `capacity` cliques (capacity 1 is the classic single
/// incumbent; larger capacities implement the top-k objective). The *pruning bound* —
/// the size a new clique must strictly beat to be worth recording — lives in an
/// [`AtomicUsize`] so the branch-and-bound can read it with a single relaxed load on
/// every node; the cliques themselves sit behind a [`Mutex`] that is only touched on
/// improvements. While the pool has free slots the bound stays at the initial floor,
/// so nothing that could belong to the top k is pruned; once full it is the size of
/// the pool's smallest clique. The bound is monotonically non-decreasing, so pruning
/// against a possibly-stale read is always sound — staleness can only mean pruning
/// *less*, never cutting a clique that belongs in the pool.
#[derive(Debug)]
pub(crate) struct SharedIncumbent {
    /// Cached pruning bound, readable without the lock.
    bound: AtomicUsize,
    state: Mutex<PoolState>,
}

#[derive(Debug)]
struct PoolState {
    /// Initial size floor: only cliques strictly larger than it are recorded.
    floor: usize,
    /// Maximum number of cliques kept.
    capacity: usize,
    /// Recorded cliques in original (parent-graph) vertex ids, largest first; ties
    /// keep insertion order (first found ranks first).
    cliques: Vec<Vec<VertexId>>,
}

impl PoolState {
    /// The size a new clique must strictly exceed to be recorded.
    fn bound(&self) -> usize {
        if self.cliques.len() < self.capacity {
            self.floor
        } else {
            let smallest = self.cliques.last().map_or(0, Vec::len);
            self.floor.max(smallest)
        }
    }
}

impl SharedIncumbent {
    /// A single-incumbent pool starting from an initial clique (e.g. the heuristic
    /// warm start), or empty.
    #[cfg(test)]
    pub(crate) fn new(initial: Option<Vec<VertexId>>) -> Self {
        Self::with_capacity(1, initial)
    }

    /// A pool keeping the `capacity` largest cliques, optionally seeded with an
    /// initial clique. `capacity` must be at least 1.
    pub(crate) fn with_capacity(capacity: usize, initial: Option<Vec<VertexId>>) -> Self {
        debug_assert!(capacity >= 1, "the pool needs room for at least one clique");
        let state = PoolState {
            floor: 0,
            capacity: capacity.max(1),
            cliques: initial
                .into_iter()
                .map(|mut clique| {
                    clique.sort_unstable();
                    clique
                })
                .collect(),
        };
        Self {
            bound: AtomicUsize::new(state.bound()),
            state: Mutex::new(state),
        }
    }

    /// Starts from a size floor without a witness clique: only strictly larger cliques
    /// will be recorded. Used by per-component searches that must report improvements
    /// over an externally-known incumbent.
    #[cfg(test)]
    pub(crate) fn with_floor(size: usize) -> Self {
        Self {
            bound: AtomicUsize::new(size),
            state: Mutex::new(PoolState {
                floor: size,
                capacity: 1,
                cliques: Vec::new(),
            }),
        }
    }

    /// The current pruning bound: branches that cannot produce a clique strictly
    /// larger than this are useless to this pool. With capacity 1 this is exactly the
    /// incumbent size (a lower bound on the optimum).
    #[inline]
    pub(crate) fn size(&self) -> usize {
        self.bound.load(Ordering::Relaxed)
    }

    /// Installs `clique` if it is strictly larger than the current pruning bound —
    /// i.e. it improves the single incumbent, or the top-k pool has a free slot or a
    /// smaller minimum. Returns whether it was installed. Ties at the bound never
    /// displace a recorded clique, so the first maximum clique to be offered wins.
    ///
    /// Cliques are stored with sorted vertex ids, and a clique already in the pool is
    /// never recorded twice (the branch-and-bound enumerates each clique of the graph
    /// once, but the heuristic warm start may seed the pool with a clique the search
    /// later re-discovers).
    pub(crate) fn offer(&self, mut clique: Vec<VertexId>) -> bool {
        // Fast reject without the lock; the bound is monotone so this cannot discard
        // an actual improvement.
        if clique.len() <= self.size() {
            return false;
        }
        clique.sort_unstable();
        let mut state = self.state.lock().expect("incumbent lock poisoned");
        if clique.len() <= state.bound() || state.cliques.contains(&clique) {
            return false;
        }
        let at = state.cliques.partition_point(|c| c.len() >= clique.len());
        state.cliques.insert(at, clique);
        let capacity = state.capacity;
        state.cliques.truncate(capacity);
        self.bound.store(state.bound(), Ordering::Relaxed);
        true
    }

    /// Consumes the pool, returning the best clique found (in original vertex ids),
    /// if any improved on the initial floor.
    #[cfg(test)]
    pub(crate) fn into_best(self) -> Option<Vec<VertexId>> {
        self.into_cliques().into_iter().next()
    }

    /// Consumes the pool, returning every recorded clique, largest first.
    pub(crate) fn into_cliques(self) -> Vec<Vec<VertexId>> {
        self.state
            .into_inner()
            .expect("incumbent lock poisoned")
            .cliques
    }
}

/// Searches `components` of `reduced` with `workers` scoped threads sharing
/// `incumbent`, and returns the summed per-worker [`SearchStats`] counters.
///
/// `components` should be sorted largest-first by the caller; workers claim the next
/// unclaimed component through a shared atomic cursor, so the ordering is exactly the
/// dispatch priority.
pub(super) fn search_components(
    reduced: &AttributedGraph,
    components: &[Vec<VertexId>],
    params: FairCliqueParams,
    config: &SearchConfig,
    workers: usize,
    incumbent: &SharedIncumbent,
    ctrl: &SearchControl,
) -> SearchStats {
    let cursor = AtomicUsize::new(0);
    let mut merged = SearchStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = SearchStats::default();
                    loop {
                        if ctrl.stopped() {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(component) = components.get(i) else {
                            break;
                        };
                        local.components_searched += 1;
                        let sub = induced_subgraph(reduced, component);
                        ComponentSearch::new(&sub, params, config, &mut local, incumbent, ctrl)
                            .run();
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle.join().expect("search worker panicked");
            merged += &local;
        }
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_resolution() {
        assert_eq!(ThreadCount::Serial.resolve(), 1);
        assert_eq!(ThreadCount::Fixed(0).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(1).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(6).resolve(), 6);
        assert!(ThreadCount::Auto.resolve() >= 1);
        assert_eq!(ThreadCount::default(), ThreadCount::Auto);
    }

    #[test]
    fn incumbent_accepts_only_strict_improvements() {
        let inc = SharedIncumbent::new(Some(vec![1, 2, 3]));
        assert_eq!(inc.size(), 3);
        assert!(!inc.offer(vec![4, 5, 6])); // tie: first winner is kept
        assert!(inc.offer(vec![4, 5, 6, 7]));
        assert_eq!(inc.size(), 4);
        assert!(!inc.offer(vec![8, 9]));
        assert_eq!(inc.into_best(), Some(vec![4, 5, 6, 7]));
    }

    #[test]
    fn incumbent_floor_without_witness() {
        let inc = SharedIncumbent::with_floor(5);
        assert_eq!(inc.size(), 5);
        assert!(!inc.offer(vec![0, 1, 2, 3, 4]));
        let inc2 = SharedIncumbent::with_floor(2);
        assert!(inc2.offer(vec![0, 1, 2]));
        assert_eq!(inc2.into_best(), Some(vec![0, 1, 2]));
    }

    #[test]
    fn top_k_pool_keeps_the_largest_cliques() {
        let pool = SharedIncumbent::with_capacity(3, None);
        // While slots are free the pruning bound stays at the floor…
        assert_eq!(pool.size(), 0);
        assert!(pool.offer(vec![0, 1, 2]));
        assert!(pool.offer(vec![3, 4]));
        assert_eq!(pool.size(), 0);
        assert!(pool.offer(vec![5, 6, 7, 8]));
        // …and once full it is the smallest recorded size.
        assert_eq!(pool.size(), 2);
        // A tie with the minimum is rejected; an improvement evicts it.
        assert!(!pool.offer(vec![9, 10]));
        assert!(pool.offer(vec![11, 12, 13]));
        assert_eq!(pool.size(), 3);
        let cliques = pool.into_cliques();
        assert_eq!(
            cliques.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        // Ties keep insertion order: the first size-3 clique found ranks first.
        assert_eq!(cliques[1], vec![0, 1, 2]);
    }

    #[test]
    fn top_k_pool_seeded_with_warm_start() {
        let pool = SharedIncumbent::with_capacity(2, Some(vec![1, 2, 3]));
        assert_eq!(pool.size(), 0); // one free slot left
        assert!(pool.offer(vec![4]));
        assert_eq!(pool.size(), 1); // full: bound is the smaller clique
        assert!(pool.offer(vec![5, 6]));
        assert_eq!(
            pool.into_cliques(),
            vec![vec![1, 2, 3], vec![5, 6]] // the size-1 clique was evicted
        );
    }

    #[test]
    fn incumbent_is_safe_under_concurrent_offers() {
        let inc = SharedIncumbent::new(None);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let inc = &inc;
                scope.spawn(move || {
                    for len in 1..=64u32 {
                        inc.offer((0..len).collect());
                    }
                });
            }
        });
        // Every thread offered cliques up to 64 vertices; exactly one size-64 offer won.
        assert_eq!(inc.size(), 64);
        assert_eq!(inc.into_best().map(|c| c.len()), Some(64));
    }
}
