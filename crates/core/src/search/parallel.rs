//! Parallel component-level search with a shared incumbent.
//!
//! The `MaxRFC` branch-and-bound runs one exact search per connected component of the
//! reduced graph, and every pruning rule it applies — the trivial size bound, the
//! attribute bound, and the whole colorful bound family — is *incumbent-driven*: the
//! larger the best fair clique known so far, the more of the tree gets cut. The
//! components are otherwise completely independent, which makes component-level
//! parallelism the natural scaling axis:
//!
//! * Workers are plain [`std::thread::scope`] threads (std only — no external runtime).
//! * Components are dispatched **largest first** from a shared atomic cursor, so the
//!   most expensive component starts immediately and stragglers don't serialize the
//!   tail of the run.
//! * The incumbent is shared through [`SharedIncumbent`]: a lock-free `AtomicUsize`
//!   size bound read on the search hot path, plus a mutex-protected best clique updated
//!   only on (rare) improvements. A clique found in one component therefore tightens
//!   the prunes of every other component *immediately*, so the parallel search never
//!   explores more of any component's tree than a serial run that happened to visit the
//!   incumbent-producing component first.
//!
//! ### Determinism
//!
//! With [`ThreadCount::Serial`] the search is exactly the classic sequential algorithm:
//! components are visited in discovery order and repeated runs produce identical
//! cliques *and* identical [`SearchStats`](super::SearchStats). With two or more
//! workers the *size* of the returned clique is still always the exact optimum, but
//! which of several maximum fair cliques is returned — and all pruning counters —
//! depend on the timing of incumbent updates across threads and may differ between
//! runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rfc_graph::subgraph::induced_subgraph;
use rfc_graph::{AttributedGraph, VertexId};

use crate::problem::FairCliqueParams;

use super::branch::ComponentSearch;
use super::{SearchConfig, SearchStats};

/// How many worker threads the component-level search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadCount {
    /// Classic deterministic single-threaded search: components in discovery order,
    /// reproducible cliques and stats.
    Serial,
    /// One worker per available CPU ([`std::thread::available_parallelism`]); falls
    /// back to serial when parallelism cannot be determined.
    #[default]
    Auto,
    /// Exactly this many workers. `Fixed(0)` and `Fixed(1)` behave like `Serial`.
    Fixed(usize),
}

impl ThreadCount {
    /// The number of workers this setting resolves to on the current machine. A result
    /// of `1` selects the deterministic serial path.
    pub fn resolve(self) -> usize {
        match self {
            ThreadCount::Serial => 1,
            ThreadCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ThreadCount::Fixed(n) => n.max(1),
        }
    }
}

/// The best fair clique found so far, shared across component searches (and worker
/// threads in parallel mode).
///
/// The size lives in an [`AtomicUsize`] so the branch-and-bound can read the current
/// bound with a single relaxed load on every node; the clique itself sits behind a
/// [`Mutex`] that is only touched on strict improvements. The size is monotonically
/// non-decreasing and always equals the size of a clique that has actually been found
/// (or the initial floor), so pruning against a possibly-stale read is always sound —
/// staleness can only mean pruning *less*, never cutting the optimum.
#[derive(Debug)]
pub(crate) struct SharedIncumbent {
    /// Cached size bound, readable without the lock.
    size: AtomicUsize,
    /// `(floor, best)`: the authoritative incumbent size and the best clique found so
    /// far, in original (parent-graph) vertex ids. `best` is `None` while no clique
    /// beating the initial floor has been found.
    state: Mutex<(usize, Option<Vec<VertexId>>)>,
}

impl SharedIncumbent {
    /// Starts from an initial clique (e.g. the heuristic warm start), or empty.
    pub(crate) fn new(initial: Option<Vec<VertexId>>) -> Self {
        let size = initial.as_ref().map_or(0, Vec::len);
        Self {
            size: AtomicUsize::new(size),
            state: Mutex::new((size, initial)),
        }
    }

    /// Starts from a size floor without a witness clique: only strictly larger cliques
    /// will be recorded. Used by per-component searches that must report improvements
    /// over an externally-known incumbent.
    #[cfg(test)]
    pub(crate) fn with_floor(size: usize) -> Self {
        Self {
            size: AtomicUsize::new(size),
            state: Mutex::new((size, None)),
        }
    }

    /// The current incumbent size (a lower bound on the optimum).
    #[inline]
    pub(crate) fn size(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// Installs `clique` if it is strictly larger than the current incumbent. Returns
    /// whether it was installed. Ties never replace the incumbent, so the first maximum
    /// clique to be offered wins.
    pub(crate) fn offer(&self, clique: Vec<VertexId>) -> bool {
        // Fast reject without the lock; `size` is monotone so this cannot discard an
        // actual improvement.
        if clique.len() <= self.size() {
            return false;
        }
        let mut state = self.state.lock().expect("incumbent lock poisoned");
        if clique.len() > state.0 {
            state.0 = clique.len();
            self.size.store(clique.len(), Ordering::Relaxed);
            state.1 = Some(clique);
            true
        } else {
            false
        }
    }

    /// Consumes the incumbent, returning the best clique found (in original vertex
    /// ids), if any improved on the initial floor.
    pub(crate) fn into_best(self) -> Option<Vec<VertexId>> {
        self.state.into_inner().expect("incumbent lock poisoned").1
    }
}

/// Searches `components` of `reduced` with `workers` scoped threads sharing
/// `incumbent`, and returns the summed per-worker [`SearchStats`] counters.
///
/// `components` should be sorted largest-first by the caller; workers claim the next
/// unclaimed component through a shared atomic cursor, so the ordering is exactly the
/// dispatch priority.
pub(super) fn search_components(
    reduced: &AttributedGraph,
    components: &[Vec<VertexId>],
    params: FairCliqueParams,
    config: &SearchConfig,
    workers: usize,
    incumbent: &SharedIncumbent,
) -> SearchStats {
    let cursor = AtomicUsize::new(0);
    let mut merged = SearchStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = SearchStats::default();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(component) = components.get(i) else {
                            break;
                        };
                        local.components_searched += 1;
                        let sub = induced_subgraph(reduced, component);
                        ComponentSearch::new(&sub, params, config, &mut local, incumbent).run();
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle.join().expect("search worker panicked");
            merged += &local;
        }
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_resolution() {
        assert_eq!(ThreadCount::Serial.resolve(), 1);
        assert_eq!(ThreadCount::Fixed(0).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(1).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(6).resolve(), 6);
        assert!(ThreadCount::Auto.resolve() >= 1);
        assert_eq!(ThreadCount::default(), ThreadCount::Auto);
    }

    #[test]
    fn incumbent_accepts_only_strict_improvements() {
        let inc = SharedIncumbent::new(Some(vec![1, 2, 3]));
        assert_eq!(inc.size(), 3);
        assert!(!inc.offer(vec![4, 5, 6])); // tie: first winner is kept
        assert!(inc.offer(vec![4, 5, 6, 7]));
        assert_eq!(inc.size(), 4);
        assert!(!inc.offer(vec![8, 9]));
        assert_eq!(inc.into_best(), Some(vec![4, 5, 6, 7]));
    }

    #[test]
    fn incumbent_floor_without_witness() {
        let inc = SharedIncumbent::with_floor(5);
        assert_eq!(inc.size(), 5);
        assert!(!inc.offer(vec![0, 1, 2, 3, 4]));
        let inc2 = SharedIncumbent::with_floor(2);
        assert!(inc2.offer(vec![0, 1, 2]));
        assert_eq!(inc2.into_best(), Some(vec![0, 1, 2]));
    }

    #[test]
    fn incumbent_is_safe_under_concurrent_offers() {
        let inc = SharedIncumbent::new(None);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let inc = &inc;
                scope.spawn(move || {
                    for len in 1..=64u32 {
                        inc.offer((0..len).collect());
                    }
                });
            }
        });
        // Every thread offered cliques up to 64 vertices; exactly one size-64 offer won.
        assert_eq!(inc.size(), 64);
        assert_eq!(inc.into_best().map(|c| c.len()), Some(64));
    }
}
