//! Parallel search with a shared incumbent: components fanned out largest-first,
//! subtrees work-stolen *within* a component.
//!
//! The `MaxRFC` branch-and-bound runs one exact search per connected component of the
//! reduced graph, and every pruning rule it applies — the trivial size bound, the
//! attribute bound, and the whole colorful bound family — is *incumbent-driven*: the
//! larger the best fair clique known so far, the more of the tree gets cut. The
//! parallel search therefore scales along two axes:
//!
//! * **Across components** — component indices are the initial tasks of a
//!   [work-stealing pool](super::steal), seeded **largest first** so the most
//!   expensive component starts immediately and stragglers don't serialize the tail.
//! * **Within a component** — the worker that claims a component splits the top
//!   level(s) of its branch tree into [`SubtreeTask`]s (owned `(clique, candidates)`
//!   snapshots) published onto its own deque in *reverse* branching order. The owner
//!   then works its deque LIFO in the serial branching order, while idle workers
//!   steal from the front — which the reversal made the *last-ordered* subtrees,
//!   where strong orderings like `CalColorOD` concentrate the structurally dense
//!   vertices (and any strong incumbent). A single giant component, the common shape
//!   of real social graphs, therefore no longer pins the whole solve to one worker,
//!   and a thief lands on the incumbent-bearing region almost immediately.
//!
//! The incumbent is shared through [`SharedIncumbent`]: a lock-free `AtomicUsize`
//! size bound read on the search hot path, plus a mutex-protected clique pool updated
//! only on (rare) improvements. A clique found in any subtree immediately tightens
//! the prunes of every other worker, so even on a single hardware thread the
//! diversified subtree order can beat the serial scan (see `rfc-bench`'s
//! `parallel` bench), and on real multicore the subtrees run concurrently.
//!
//! ### Determinism
//!
//! With [`ThreadCount::Serial`] the search is exactly the classic sequential
//! algorithm: components in discovery order, no subtree splitting, and repeated runs
//! produce identical cliques *and* identical [`SearchStats`](super::SearchStats).
//! With two or more workers the *size* of the returned clique is still always the
//! exact optimum and a top-k pool returns exactly the canonical top-k set (ties
//! broken lexicographically — see [`SharedIncumbent::offer`]), but which of several
//! tied *maximum* cliques is reported, and all pruning counters, depend on incumbent
//! timing and may differ between runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use rfc_graph::bitset::BitsetPool;
use rfc_graph::{AttributedGraph, VertexId};

use crate::problem::FairCliqueParams;

use super::branch::{ComponentContext, ComponentSearch, SubtreeTask};
use super::control::SearchControl;
use super::steal;
use super::{SearchConfig, SearchStats};

/// How many worker threads the search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadCount {
    /// Classic deterministic single-threaded search: components in discovery order,
    /// reproducible cliques and stats.
    Serial,
    /// One worker per available CPU ([`std::thread::available_parallelism`]); falls
    /// back to serial when parallelism cannot be determined.
    #[default]
    Auto,
    /// Exactly this many workers. `Fixed(0)` and `Fixed(1)` behave like `Serial`.
    Fixed(usize),
}

impl ThreadCount {
    /// The number of workers this setting resolves to on the current machine. A result
    /// of `1` selects the deterministic serial path.
    pub fn resolve(self) -> usize {
        match self {
            ThreadCount::Serial => 1,
            ThreadCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ThreadCount::Fixed(n) => n.max(1),
        }
    }
}

/// The best fair cliques found so far, shared across component searches (and worker
/// threads in parallel mode).
///
/// The pool holds up to `capacity` cliques (capacity 1 is the classic single
/// incumbent; larger capacities implement the top-k objective). The *pruning bound* —
/// the size of the pool's cut-off clique — lives in an [`AtomicUsize`] so the
/// branch-and-bound can read it with a single relaxed load on every node; the cliques
/// themselves sit behind a [`Mutex`] that is only touched on improvements. While the
/// pool has free slots the bound stays at the initial floor, so nothing that could
/// belong to the top k is pruned; once full it is the size of the pool's smallest
/// clique. Both the bound and the derived [`useful_size`](Self::useful_size) are
/// monotonically non-decreasing, so pruning against a possibly-stale read is always
/// sound — staleness can only mean pruning *less*, never cutting a clique that
/// belongs in the pool.
///
/// ### Canonical membership
///
/// Pool membership is decided by a *total* order — size descending, then
/// lexicographic on the sorted vertex ids — so the final contents of a top-k pool do
/// not depend on the order cliques were offered in. Serial and parallel runs
/// therefore return exactly the same top-k set, even when several cliques tie at the
/// k-th size (the previously timing-dependent case).
#[derive(Debug)]
pub(crate) struct SharedIncumbent {
    /// Cached pruning bound (the k-th best size), readable without the lock.
    bound: AtomicUsize,
    /// Cached smallest *useful* clique size: the size a completed clique must reach
    /// for [`offer`](Self::offer) to possibly accept it.
    useful: AtomicUsize,
    state: Mutex<PoolState>,
}

#[derive(Debug)]
struct PoolState {
    /// Initial size floor: only cliques strictly larger than it are recorded.
    floor: usize,
    /// Maximum number of cliques kept.
    capacity: usize,
    /// Recorded cliques in original (parent-graph) vertex ids with sorted contents,
    /// in canonical order: size descending, ties lexicographically ascending.
    cliques: Vec<Vec<VertexId>>,
}

impl PoolState {
    /// The current cut-off size (the k-th best, or the floor while slots are free).
    fn bound(&self) -> usize {
        if self.cliques.len() < self.capacity {
            self.floor
        } else {
            let smallest = self.cliques.last().map_or(0, Vec::len);
            self.floor.max(smallest)
        }
    }

    /// The smallest clique size that could still enter the pool. A single incumbent
    /// (capacity 1) only takes strict improvements; a full top-k pool also takes ties
    /// with its smallest clique, which the lexicographic tie-break may admit.
    fn useful(&self) -> usize {
        if self.capacity == 1 || self.cliques.len() < self.capacity {
            self.bound() + 1
        } else {
            self.bound()
        }
    }
}

/// `true` if `a` precedes `b` in canonical pool order (size desc, then lex asc on the
/// sorted vertex ids).
fn canonical_before(a: &[VertexId], b: &[VertexId]) -> bool {
    a.len() > b.len() || (a.len() == b.len() && a < b)
}

impl SharedIncumbent {
    /// A single-incumbent pool starting from an initial clique (e.g. the heuristic
    /// warm start), or empty.
    #[cfg(test)]
    pub(crate) fn new(initial: Option<Vec<VertexId>>) -> Self {
        Self::with_capacity(1, initial)
    }

    /// A pool keeping the `capacity` largest cliques, optionally seeded with an
    /// initial clique. `capacity` must be at least 1.
    pub(crate) fn with_capacity(capacity: usize, initial: Option<Vec<VertexId>>) -> Self {
        debug_assert!(capacity >= 1, "the pool needs room for at least one clique");
        let state = PoolState {
            floor: 0,
            capacity: capacity.max(1),
            cliques: initial
                .into_iter()
                .map(|mut clique| {
                    clique.sort_unstable();
                    clique
                })
                .collect(),
        };
        Self {
            bound: AtomicUsize::new(state.bound()),
            useful: AtomicUsize::new(state.useful()),
            state: Mutex::new(state),
        }
    }

    /// Starts from a size floor without a witness clique: only strictly larger cliques
    /// will be recorded. Used by per-component searches that must report improvements
    /// over an externally-known incumbent.
    #[cfg(test)]
    pub(crate) fn with_floor(size: usize) -> Self {
        let state = PoolState {
            floor: size,
            capacity: 1,
            cliques: Vec::new(),
        };
        Self {
            bound: AtomicUsize::new(state.bound()),
            useful: AtomicUsize::new(state.useful()),
            state: Mutex::new(state),
        }
    }

    /// The current pruning bound: the size of the pool's cut-off clique. With
    /// capacity 1 this is exactly the incumbent size (a lower bound on the optimum).
    /// The search itself prunes on [`useful_size`](Self::useful_size); this accessor
    /// only backs test assertions.
    #[cfg(test)]
    #[inline]
    pub(crate) fn size(&self) -> usize {
        self.bound.load(Ordering::Relaxed)
    }

    /// The smallest completed-clique size still worth [offering](Self::offer): one
    /// more than [`size`](Self::size) for a single incumbent or a pool with free
    /// slots, exactly `size` for a full top-k pool (a tie can displace a
    /// lexicographically larger member). Branches that cannot reach this size are
    /// useless to the pool.
    #[inline]
    pub(crate) fn useful_size(&self) -> usize {
        self.useful.load(Ordering::Relaxed)
    }

    /// Installs `clique` if it belongs in the pool under the canonical order — it
    /// improves the single incumbent, or it precedes the cut-off of a full top-k pool
    /// (strictly larger, or tied in size and lexicographically smaller on sorted
    /// vertex ids). Returns whether it was installed.
    ///
    /// Because membership is decided by a total order on cliques, the pool's final
    /// contents are independent of offer order — concurrent workers and the serial
    /// scan converge on the same top-k set. Cliques are stored with sorted vertex
    /// ids, and a clique already in the pool is never recorded twice (the
    /// branch-and-bound enumerates each clique of the graph once, but the heuristic
    /// warm start may seed the pool with a clique the search later re-discovers).
    pub(crate) fn offer(&self, mut clique: Vec<VertexId>) -> bool {
        // Fast reject without the lock; `useful` is monotone so this cannot discard a
        // clique the pool would have taken.
        if clique.len() < self.useful_size() {
            return false;
        }
        clique.sort_unstable();
        let mut state = self.state.lock().expect("incumbent lock poisoned");
        if clique.len() < state.useful() || clique.len() <= state.floor {
            return false;
        }
        let at = state
            .cliques
            .partition_point(|c| canonical_before(c, &clique));
        if at >= state.capacity {
            // Everything already in the pool canonically precedes the offer.
            return false;
        }
        if state.cliques.get(at) == Some(&clique) {
            return false;
        }
        state.cliques.insert(at, clique);
        let capacity = state.capacity;
        state.cliques.truncate(capacity);
        self.bound.store(state.bound(), Ordering::Relaxed);
        self.useful.store(state.useful(), Ordering::Relaxed);
        true
    }

    /// Consumes the pool, returning the best clique found (in original vertex ids),
    /// if any improved on the initial floor.
    #[cfg(test)]
    pub(crate) fn into_best(self) -> Option<Vec<VertexId>> {
        self.into_cliques().into_iter().next()
    }

    /// A copy of the pool's current best clique (sorted vertex ids), if it holds one.
    ///
    /// Used by the [portfolio](crate::portfolio)'s anytime improver to pick up
    /// improvements published by the racing exact members mid-run.
    pub(crate) fn best_snapshot(&self) -> Option<Vec<VertexId>> {
        self.state
            .lock()
            .expect("incumbent lock poisoned")
            .cliques
            .first()
            .cloned()
    }

    /// Consumes the pool, returning every recorded clique in canonical order
    /// (largest first, ties lexicographic).
    pub(crate) fn into_cliques(self) -> Vec<Vec<VertexId>> {
        self.state
            .into_inner()
            .expect("incumbent lock poisoned")
            .cliques
    }
}

/// A unit of work on the shared pool: claim a whole component, or resume one of its
/// split-off subtrees.
enum SearchTask {
    Component(usize),
    Subtree(SubtreeTask),
}

/// How many levels of a component's branch tree to split into stealable tasks.
///
/// Splitting only pays when whole components cannot occupy the pool: with at least as
/// many components as workers, component-level dispatch already keeps every worker
/// busy, and slicing each component into hundreds of subtree snapshots (each
/// re-checking the shallow-depth bounds on entry) is pure overhead. Below that,
/// one level already yields up to `n` tasks — plenty when the component dwarfs the
/// worker count. Components too small to feed every worker from one level split two
/// levels; tiny components aren't worth the snapshot overhead at all.
fn split_depth_for(n: usize, workers: usize, num_components: usize) -> usize {
    if workers <= 1 || n < 16 || num_components >= workers {
        0
    } else if n >= 4 * workers {
        1
    } else {
        2
    }
}

/// One worker's private accumulation: its stats and its reusable scratch bitsets.
struct WorkerState {
    stats: SearchStats,
    scratch: BitsetPool,
}

/// Searches `components` of `reduced` on a work-stealing pool of `workers` threads
/// sharing `incumbent`, and returns the merged per-worker [`SearchStats`].
///
/// `components` should be sorted largest-first by the caller: they seed the pool's
/// FIFO injector in order, so the ordering is exactly the dispatch priority. The
/// worker that claims a component builds its [`ComponentContext`] once (published via
/// [`OnceLock`] for thieves) and splits the top of its tree into [`SubtreeTask`]s;
/// any worker can then run any subtree against the shared context.
pub(super) fn search_components(
    reduced: &AttributedGraph,
    components: &[Vec<VertexId>],
    params: FairCliqueParams,
    config: &SearchConfig,
    workers: usize,
    incumbent: &SharedIncumbent,
    ctrl: &SearchControl,
) -> SearchStats {
    let contexts: Vec<OnceLock<ComponentContext>> =
        (0..components.len()).map(|_| OnceLock::new()).collect();
    let contexts = &contexts;
    let initial: Vec<SearchTask> = (0..components.len()).map(SearchTask::Component).collect();
    let states = (0..workers)
        .map(|_| WorkerState {
            stats: SearchStats::default(),
            scratch: BitsetPool::new(0),
        })
        .collect();

    let states = steal::run_pool(workers, initial, states, |state, spawner, task| {
        if ctrl.stopped() {
            return;
        }
        let busy = Instant::now();
        let WorkerState { stats, scratch } = state;
        let (ctx, comp, subtree) = match task {
            SearchTask::Component(i) => {
                stats.components_searched += 1;
                let ctx = contexts[i].get_or_init(|| {
                    ComponentContext::new(reduced, &components[i], config).with_split_depth(
                        split_depth_for(components[i].len(), workers, components.len()),
                    )
                });
                (ctx, i, None)
            }
            SearchTask::Subtree(task) => {
                let ctx = contexts[task.comp]
                    .get()
                    .expect("a subtree task spawns only after its component context is built");
                (ctx, task.comp, Some(task))
            }
        };
        scratch.reset(ctx.num_vertices());
        let mut search =
            ComponentSearch::new(ctx, comp, params, config, stats, incumbent, ctrl, scratch);
        match subtree {
            None => search.run(),
            Some(task) => search.run_task(task),
        }
        // Scatter the split-off subtrees onto this worker's deque in *reverse*
        // branching order: CalColorOD-style orderings put the densest region (where
        // the strong incumbent hides) in the last subtrees, so reversing places those
        // at the deque *front* where thieves steal first. Some worker reaches the
        // dense tail almost immediately and publishes a strong incumbent through the
        // shared pool while the rest of the tree is still being carved up.
        for task in search.take_spawned().into_iter().rev() {
            spawner.spawn(SearchTask::Subtree(task));
        }
        state.stats.cpu_micros += busy.elapsed().as_micros() as u64;
    });

    let mut merged = SearchStats::default();
    for state in states {
        merged += &state.stats;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_resolution() {
        assert_eq!(ThreadCount::Serial.resolve(), 1);
        assert_eq!(ThreadCount::Fixed(0).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(1).resolve(), 1);
        assert_eq!(ThreadCount::Fixed(6).resolve(), 6);
        assert!(ThreadCount::Auto.resolve() >= 1);
        assert_eq!(ThreadCount::default(), ThreadCount::Auto);
    }

    #[test]
    fn split_depth_scales_with_component_size() {
        assert_eq!(split_depth_for(1000, 1, 1), 0); // serial: never split
        assert_eq!(split_depth_for(8, 4, 1), 0); // tiny: not worth it
        assert_eq!(split_depth_for(1000, 4, 1), 1); // plenty of roots per worker
        assert_eq!(split_depth_for(20, 8, 1), 2); // few roots: split deeper
                                                  // Enough whole components to occupy every worker: no intra-component split.
        assert_eq!(split_depth_for(1000, 4, 4), 0);
        assert_eq!(split_depth_for(1000, 4, 3), 1); // pool underfed: split again
    }

    #[test]
    fn incumbent_accepts_only_strict_improvements() {
        let inc = SharedIncumbent::new(Some(vec![1, 2, 3]));
        assert_eq!(inc.size(), 3);
        assert_eq!(inc.useful_size(), 4);
        assert!(!inc.offer(vec![4, 5, 6])); // tie: a single incumbent keeps the first
        assert!(inc.offer(vec![4, 5, 6, 7]));
        assert_eq!(inc.size(), 4);
        assert!(!inc.offer(vec![8, 9]));
        assert_eq!(inc.into_best(), Some(vec![4, 5, 6, 7]));
    }

    #[test]
    fn incumbent_floor_without_witness() {
        let inc = SharedIncumbent::with_floor(5);
        assert_eq!(inc.size(), 5);
        assert!(!inc.offer(vec![0, 1, 2, 3, 4]));
        let inc2 = SharedIncumbent::with_floor(2);
        assert!(inc2.offer(vec![0, 1, 2]));
        assert_eq!(inc2.into_best(), Some(vec![0, 1, 2]));
    }

    #[test]
    fn top_k_pool_keeps_the_largest_cliques() {
        let pool = SharedIncumbent::with_capacity(3, None);
        // While slots are free the pruning bound stays at the floor…
        assert_eq!(pool.size(), 0);
        assert!(pool.offer(vec![0, 1, 2]));
        assert!(pool.offer(vec![3, 4]));
        assert_eq!(pool.size(), 0);
        assert!(pool.offer(vec![5, 6, 7, 8]));
        // …and once full it is the smallest recorded size.
        assert_eq!(pool.size(), 2);
        // A tie with the minimum enters only if lexicographically smaller; an
        // improvement always evicts it.
        assert!(!pool.offer(vec![9, 10]));
        assert!(pool.offer(vec![11, 12, 13]));
        assert_eq!(pool.size(), 3);
        let cliques = pool.into_cliques();
        assert_eq!(
            cliques.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        // Size ties sit in lexicographic order.
        assert_eq!(cliques[1], vec![0, 1, 2]);
        assert_eq!(cliques[2], vec![11, 12, 13]);
    }

    #[test]
    fn top_k_membership_is_canonical_not_first_come() {
        // Unlike a single incumbent, a full top-k pool replaces a lexicographically
        // larger member with a tied-but-smaller one, so the final set is independent
        // of offer order.
        let forward = SharedIncumbent::with_capacity(2, None);
        assert!(forward.offer(vec![7, 8, 9]));
        assert!(forward.offer(vec![4, 5, 6]));
        // Pool full at size 3; useful stays 3 so ties are still considered.
        assert_eq!((forward.size(), forward.useful_size()), (3, 3));
        assert!(forward.offer(vec![1, 2, 3])); // displaces [7, 8, 9]
        assert!(!forward.offer(vec![7, 8, 9])); // and it cannot come back

        let backward = SharedIncumbent::with_capacity(2, None);
        assert!(backward.offer(vec![1, 2, 3]));
        assert!(backward.offer(vec![4, 5, 6]));
        assert!(!backward.offer(vec![7, 8, 9]));

        assert_eq!(forward.into_cliques(), backward.into_cliques());
    }

    #[test]
    fn top_k_pool_rejects_exact_duplicates() {
        let pool = SharedIncumbent::with_capacity(3, None);
        assert!(pool.offer(vec![3, 1, 2]));
        // The same clique in a different discovery order is still a duplicate.
        assert!(!pool.offer(vec![1, 2, 3]));
        assert!(!pool.offer(vec![2, 3, 1]));
        assert_eq!(pool.into_cliques(), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn top_k_pool_seeded_with_warm_start() {
        let pool = SharedIncumbent::with_capacity(2, Some(vec![1, 2, 3]));
        assert_eq!(pool.size(), 0); // one free slot left
        assert!(pool.offer(vec![4]));
        assert_eq!(pool.size(), 1); // full: bound is the smaller clique
        assert!(pool.offer(vec![5, 6]));
        assert_eq!(
            pool.into_cliques(),
            vec![vec![1, 2, 3], vec![5, 6]] // the size-1 clique was evicted
        );
    }

    #[test]
    fn incumbent_is_safe_under_concurrent_offers() {
        let inc = SharedIncumbent::new(None);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let inc = &inc;
                scope.spawn(move || {
                    for len in 1..=64u32 {
                        inc.offer((0..len).collect());
                    }
                });
            }
        });
        // Every thread offered cliques up to 64 vertices; exactly one size-64 offer won.
        assert_eq!(inc.size(), 64);
        assert_eq!(inc.into_best().map(|c| c.len()), Some(64));
    }
}
