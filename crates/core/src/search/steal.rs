//! A std-only work-stealing task pool for the branch-and-bound.
//!
//! The container has no crates registry, so this is a deliberately simple deque
//! scheduler built on `Mutex`/`Condvar`/atomics rather than a lock-free Chase-Lev
//! deque:
//!
//! * every worker owns a deque; it pushes spawned tasks to the **back** and pops its
//!   own work from the **back** (LIFO — depth-first, cache-warm, and on this search it
//!   means the most recently discovered — deepest, late-ordered — subtree runs first);
//! * idle workers steal from the **front** of a victim's deque (FIFO — the oldest,
//!   shallowest entries, which for subtree tasks are the *largest* pieces of work, so a
//!   thief walks away with something worth the synchronization cost) and take half the
//!   deque (`steal-half`) to amortize future steals;
//! * initial tasks sit in a shared FIFO injector that doubles as the steal target of
//!   last resort.
//!
//! Termination uses a single atomic `pending` counter (tasks spawned but not yet
//! finished). Workers that find no work park on a condvar with a short timeout — the
//! timeout bounds the cost of any missed wakeup without requiring a carefully fenced
//! notification protocol. Locks are held only for deque edits, never while running a
//! task, and a panicking task still decrements `pending` via a drop guard so the pool
//! cannot hang inside [`std::thread::scope`].
//!
//! The pool is generic over the task type and a per-worker state; `rfc_core` uses it
//! for both solve (subtree tasks) and enumerate (component tasks).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Condvar, Mutex};
use std::time::Duration;

/// How long an idle worker parks before re-checking for work on its own. Bounds the
/// latency of a missed wakeup (spawns skip the notify when nobody is parked, and a
/// worker headed for its park can race such a spawn). Shorter parks find straggler
/// work sooner but make parked workers re-scan — and, oversubscribed, preempt the
/// workers that *have* work — more often; 1ms is still far below any solve worth
/// parallelizing.
const IDLE_PARK: Duration = Duration::from_micros(1000);

/// Scheduler activity counters, accumulated per pool run and flushed into the
/// global `rfc-obs` metrics registry (`rfc_pool_*`) when the pool drains. Kept
/// local to the run so the hot paths touch pool-owned cache lines, not global
/// registry cells shared with unrelated pools.
#[derive(Default)]
struct PoolCounters {
    /// Successful steal batches (one per victim raid, not per task moved).
    steals: AtomicU64,
    /// Times an idle worker parked on the condvar.
    parks: AtomicU64,
    /// Tasks that entered the pool (initial seeds + spawns).
    spawned: AtomicU64,
    /// Deepest any single worker deque got during the run.
    max_queue: AtomicU64,
}

impl PoolCounters {
    /// Publishes this run's activity into the process-wide metrics registry.
    fn flush(&self, workers: usize) {
        let m = rfc_obs::metrics::global();
        m.counter("rfc_pool_runs_total").inc();
        m.counter("rfc_pool_workers_total").add(workers as u64);
        m.counter("rfc_pool_steals_total")
            .add(self.steals.load(Ordering::Relaxed));
        m.counter("rfc_pool_parks_total")
            .add(self.parks.load(Ordering::Relaxed));
        m.counter("rfc_pool_tasks_total")
            .add(self.spawned.load(Ordering::Relaxed));
        m.gauge("rfc_pool_max_queue_depth")
            .fetch_max(self.max_queue.load(Ordering::Relaxed) as i64);
    }
}

/// Shared scheduler state: injector, per-worker deques and the termination counter.
struct Shared<T> {
    /// FIFO queue seeded with the initial tasks; also the first steal target.
    injector: Mutex<VecDeque<T>>,
    /// One deque per worker. Only the owner pushes/pops the back; thieves take from
    /// the front.
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Tasks spawned but not yet finished; 0 means the pool is done.
    pending: AtomicUsize,
    /// Parking lot for idle workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Number of workers currently parked (or about to park). Spawns skip the
    /// notify syscall entirely while everyone is busy — on a machine with fewer
    /// cores than workers an unconditional notify per spawn triggers a context
    /// switch storm during task-publish bursts.
    idlers: AtomicUsize,
    /// Activity counters for observability (flushed when the pool drains).
    counters: PoolCounters,
}

impl<T> Shared<T> {
    fn notify_one(&self) {
        if self.idlers.load(Ordering::SeqCst) == 0 {
            // Nobody is parked. A worker racing toward its park re-checks `pending`
            // under the idle lock and parks with a timeout, so the worst a stale
            // read costs is one `IDLE_PARK` of latency — never a lost task.
            return;
        }
        // Acquire the idle lock so the notification cannot slip between a parker's
        // "no work" check and its wait.
        drop(self.idle_lock.lock().unwrap());
        self.idle_cv.notify_one();
    }

    fn notify_all(&self) {
        drop(self.idle_lock.lock().unwrap());
        self.idle_cv.notify_all();
    }
}

/// Handle passed to the task body for spawning follow-up tasks onto the pool.
pub(crate) struct Spawner<'a, T> {
    shared: &'a Shared<T>,
    worker: usize,
}

impl<T> Spawner<'_, T> {
    /// Schedules `task` onto this worker's deque (back = next to run locally, first
    /// candidate to keep, while older entries drift frontward toward thieves).
    pub(crate) fn spawn(&self, task: T) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let depth = {
            let mut deque = self.shared.deques[self.worker].lock().unwrap();
            deque.push_back(task);
            deque.len() as u64
        };
        self.shared.counters.spawned.fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .max_queue
            .fetch_max(depth, Ordering::Relaxed);
        self.shared.notify_one();
    }
}

/// Decrements `pending` when a task finishes — including by panic, so a poisoned
/// worker cannot leave the other workers parked forever.
struct PendingGuard<'a, T> {
    shared: &'a Shared<T>,
}

impl<T> Drop for PendingGuard<'_, T> {
    fn drop(&mut self) {
        if self.shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.notify_all();
        }
    }
}

/// Runs `initial` tasks to completion on `workers` threads, threading a mutable
/// per-worker state through every task a worker runs. Returns the states for the
/// caller to merge.
///
/// `run_task(state, spawner, task)` may call [`Spawner::spawn`] to schedule more
/// tasks; the pool exits when every spawned task has finished. All workers rendezvous
/// on a barrier before taking work, so no worker can drain the injector before the
/// others exist — which is also what gives the stress tests their adversarial steal
/// pressure.
pub(crate) fn run_pool<T, S, F>(
    workers: usize,
    initial: Vec<T>,
    states: Vec<S>,
    run_task: F,
) -> Vec<S>
where
    T: Send,
    S: Send,
    F: Fn(&mut S, &Spawner<'_, T>, T) + Sync,
{
    assert_eq!(states.len(), workers, "one state per worker");
    let shared = Shared {
        injector: Mutex::new(VecDeque::from_iter(initial)),
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(0),
        idle_lock: Mutex::new(()),
        idle_cv: Condvar::new(),
        idlers: AtomicUsize::new(0),
        counters: PoolCounters::default(),
    };
    let seeded = shared.injector.lock().unwrap().len();
    shared.pending.store(seeded, Ordering::SeqCst);
    shared
        .counters
        .spawned
        .store(seeded as u64, Ordering::Relaxed);
    let start = Barrier::new(workers);
    let run_task = &run_task;
    let shared = &shared;
    let start = &start;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (worker, mut state) in states.into_iter().enumerate() {
            handles.push(scope.spawn(move || {
                start.wait();
                let spawner = Spawner { shared, worker };
                loop {
                    if let Some(task) = next_task(shared, worker) {
                        let guard = PendingGuard { shared };
                        run_task(&mut state, &spawner, task);
                        drop(guard);
                        continue;
                    }
                    if shared.pending.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    // No work visible but tasks are still in flight: park until a
                    // spawn (or the final completion) notifies, with a timeout as a
                    // missed-wakeup backstop. The `idlers` count makes this parked
                    // worker visible to spawners, which otherwise skip the notify.
                    let idle = shared.idle_lock.lock().unwrap();
                    shared.counters.parks.fetch_add(1, Ordering::Relaxed);
                    shared.idlers.fetch_add(1, Ordering::SeqCst);
                    if shared.pending.load(Ordering::SeqCst) == 0 {
                        shared.idlers.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                    let _ = shared.idle_cv.wait_timeout(idle, IDLE_PARK).unwrap();
                    shared.idlers.fetch_sub(1, Ordering::SeqCst);
                }
                state
            }));
        }
        let states: Vec<S> = handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect();
        shared.counters.flush(workers);
        states
    })
}

/// Finds the next task for `worker`: own deque (LIFO), then the injector, then
/// steal-half from another worker's deque (FIFO).
fn next_task<T>(shared: &Shared<T>, worker: usize) -> Option<T> {
    if let Some(task) = shared.deques[worker].lock().unwrap().pop_back() {
        return Some(task);
    }
    if let Some(task) = shared.injector.lock().unwrap().pop_front() {
        return Some(task);
    }
    steal(shared, worker)
}

/// Steals from the first victim (round-robin from `worker + 1`) with a non-empty
/// deque: takes the front half, runs the oldest entry and keeps the rest at the
/// *front* of the thief's own deque, preserving oldest-first order for onward thieves.
fn steal<T>(shared: &Shared<T>, worker: usize) -> Option<T> {
    let n = shared.deques.len();
    for offset in 1..n {
        let victim = (worker + offset) % n;
        // Collect the batch under the victim's lock, then release it before touching
        // our own deque — the pool never holds two deque locks at once.
        let batch: Vec<T> = {
            let mut deque = shared.deques[victim].lock().unwrap();
            let take = deque.len().div_ceil(2);
            deque.drain(..take).collect()
        };
        let mut batch = batch.into_iter();
        let first = match batch.next() {
            Some(task) => task,
            None => continue,
        };
        shared.counters.steals.fetch_add(1, Ordering::Relaxed);
        let rest: Vec<T> = batch.collect();
        if !rest.is_empty() {
            let mut own = shared.deques[worker].lock().unwrap();
            for task in rest.into_iter().rev() {
                own.push_front(task);
            }
            drop(own);
            // The thief now has surplus work other idle workers may take.
            if shared.idlers.load(Ordering::SeqCst) > 0 {
                shared.notify_all();
            }
        }
        return Some(first);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Every spawned task must run exactly once, under adversarial steal pressure:
    /// many tiny tasks, each root fanning out two more generations, with all workers
    /// released simultaneously by the pool's start barrier.
    #[test]
    fn every_task_runs_exactly_once_under_steal_pressure() {
        const ROOTS: usize = 64;
        const WORKERS: usize = 4;
        // id-space: roots 0..64, children 64..192 (2 per root), grandchildren
        // 192..448 (2 per child).
        const TOTAL: usize = ROOTS + 2 * ROOTS + 4 * ROOTS;

        for trial in 0..8 {
            let runs: Vec<AtomicU64> = (0..TOTAL).map(|_| AtomicU64::new(0)).collect();
            let runs = &runs;
            let states = run_pool(
                WORKERS,
                (0..ROOTS).collect::<Vec<usize>>(),
                vec![0u64; WORKERS],
                |count, spawner, id| {
                    runs[id].fetch_add(1, Ordering::SeqCst);
                    *count += 1;
                    if id < ROOTS {
                        spawner.spawn(ROOTS + 2 * id);
                        spawner.spawn(ROOTS + 2 * id + 1);
                    } else if id < 3 * ROOTS {
                        let child = id - ROOTS;
                        spawner.spawn(3 * ROOTS + 2 * child);
                        spawner.spawn(3 * ROOTS + 2 * child + 1);
                    }
                },
            );
            for (id, r) in runs.iter().enumerate() {
                assert_eq!(
                    r.load(Ordering::SeqCst),
                    1,
                    "task {id} ran a wrong number of times (trial {trial})"
                );
            }
            // Per-worker counts are the pool's "stats merge": nothing may be lost.
            assert_eq!(states.iter().sum::<u64>(), TOTAL as u64, "trial {trial}");
        }
    }

    /// A single worker degenerates to plain LIFO execution and still terminates.
    #[test]
    fn single_worker_runs_everything() {
        let states = run_pool(
            1,
            vec![10usize, 20, 30],
            vec![Vec::<usize>::new()],
            |seen, spawner, task| {
                seen.push(task);
                if task == 20 {
                    spawner.spawn(21);
                }
            },
        );
        let mut seen = states.into_iter().next().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 20, 21, 30]);
    }

    /// An empty initial set exits immediately without deadlock.
    #[test]
    fn empty_pool_terminates() {
        let states = run_pool(3, Vec::<usize>::new(), vec![(); 3], |_, _, _| {});
        assert_eq!(states.len(), 3);
    }

    /// Pool activity must land in the process-wide metrics registry when the pool
    /// drains. Other tests run pools concurrently in this binary, so only monotonic
    /// lower bounds are asserted.
    #[test]
    fn pool_activity_flushes_into_global_metrics() {
        let metrics = rfc_obs::metrics::global();
        let runs_before = metrics.counter("rfc_pool_runs_total").get();
        let tasks_before = metrics.counter("rfc_pool_tasks_total").get();
        run_pool(2, vec![1usize, 2, 3], vec![(); 2], |_, spawner, task| {
            if task == 1 {
                spawner.spawn(4);
            }
        });
        assert!(metrics.counter("rfc_pool_runs_total").get() > runs_before);
        assert!(metrics.counter("rfc_pool_tasks_total").get() >= tasks_before + 4);
    }

    /// Deep chains (each task spawns exactly one successor) exercise the
    /// park/notify path: only one task is runnable at any time, so three of the
    /// four workers are parked for the whole run.
    #[test]
    fn serial_chain_keeps_parked_workers_live() {
        const DEPTH: usize = 500;
        let states = run_pool(4, vec![0usize], vec![0u64; 4], |count, spawner, task| {
            *count += 1;
            if task + 1 < DEPTH {
                spawner.spawn(task + 1);
            }
        });
        assert_eq!(states.iter().sum::<u64>(), DEPTH as u64);
    }
}
