//! The reusable, budgeted, multi-query solver — the crate's primary API.
//!
//! [`RfcSolver`] separates the query-*independent* work of maximum fair clique search
//! from the query-*dependent* work so one graph can serve many queries:
//!
//! * **Build once** — [`RfcSolver::new`] takes ownership of the graph and computes the
//!   state every query shares: a greedy coloring whose color count upper-bounds every
//!   clique, giving an O(1) infeasibility gate. Reduced graphs are computed lazily and
//!   cached per `(k, ReductionConfig)`: no reduction stage looks at `δ`, so queries
//!   that differ only in fairness model or `δ` reuse one reduction pass.
//! * **Query many** — [`RfcSolver::solve`] answers a [`Query`]: a first-class
//!   [`FairnessModel`] (relative / weak / strong — the δ-remapping lives in
//!   [`FairnessModel::resolve`], not in callers), an [`Objective`] (the maximum clique
//!   or the top-k largest), a [`Budget`] (wall-clock and/or node limits), an optional
//!   [`CancelToken`], and the usual [`SearchConfig`] knobs.
//! * **Structured outcomes** — every solve returns a [`Solution`] whose
//!   [`Termination`] says what the result means: `Optimal` and `Infeasible` are exact
//!   answers, `BudgetExhausted` and `Cancelled` carry the verified best-so-far.
//! * **Batching** — [`RfcSolver::solve_batch`] fans independent queries across worker
//!   threads (the same [`ThreadCount`] infrastructure the component search uses) while
//!   all of them share the solver's cached preprocessing.
//!
//! The classic free functions ([`max_fair_clique`](crate::search::max_fair_clique) and
//! friends) remain as thin compatibility wrappers over a throwaway solver.
//!
//! ```
//! use rfc_core::prelude::*;
//! use rfc_graph::fixtures;
//!
//! let solver = RfcSolver::new(fixtures::fig1_graph());
//! let relative = solver
//!     .solve(&Query::new(FairnessModel::Relative { k: 3, delta: 1 }))
//!     .unwrap();
//! let weak = solver.solve(&Query::new(FairnessModel::Weak { k: 3 })).unwrap();
//! assert_eq!(relative.best().unwrap().size(), 7);
//! assert_eq!(weak.best().unwrap().size(), 8);
//! assert!(weak.reduction_cache_hit); // same k: one preprocessing pass served both
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rfc_graph::coloring::greedy_coloring;
use rfc_graph::cores::degeneracy;
use rfc_graph::AttributedGraph;

use crate::enumerate::{
    run_enumeration, CliqueSink, EnumOutcome, EnumProblem, EnumQuery, EnumStats, EnumTermination,
};
use crate::heuristic::{heur_rfc, HeuristicOutcome};
use crate::problem::{FairClique, FairCliqueParams, FairnessModel, ParamError};
use crate::reduction::{apply_reductions_controlled, ReductionConfig, ReductionStats};
use crate::search::control::{SearchControl, StopReason};
use crate::search::parallel::SharedIncumbent;
use crate::search::{branch_and_bound, SearchConfig, SearchStats, ThreadCount};

/// What a [`Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// A single maximum fair clique (the paper's problem; the [`Default`]).
    #[default]
    Maximum,
    /// The `n` largest fair cliques, best first.
    ///
    /// "Fair clique" here is condition (i) of Definition 1 alone, so the result may
    /// contain cliques nested inside larger ones (every fair subset of a bigger fair
    /// clique is itself a fair clique). The sizes are exact: no fair clique strictly
    /// larger than the returned minimum is missed. Ties at the cut-off size are
    /// broken canonically — larger first, then lexicographically smallest sorted
    /// vertex set — so the returned set is identical for every
    /// [`ThreadCount`], not merely the same sizes.
    TopK(usize),
}

/// Resource limits for one query.
///
/// The wall-clock limit covers the **whole query**: the deadline is anchored the
/// moment the query enters the solver, and the reduction pipeline (between stages),
/// the heuristic warm start (before and after), the out-of-core peel (between
/// rounds) and every branch node all check it. A query whose reduction alone
/// outlives a tiny `time_limit` therefore returns
/// [`Termination::BudgetExhausted`] promptly instead of silently extending the
/// budget by the preprocessing time.
///
/// The node limit counts **branch-and-bound nodes only**, so a node-limited query
/// still gets its full reduction and heuristic warm start — which is what makes a
/// node-starved solve return a *verified* best-so-far clique rather than nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock limit for the search phase. `None` is unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum number of branch-and-bound nodes visited (summed across components and
    /// worker threads). `None` is unlimited.
    pub node_limit: Option<u64>,
}

impl Budget {
    /// No limits (the [`Default`]).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Returns this budget with a wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns this budget with a branch-node limit.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Whether neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.node_limit.is_none()
    }
}

/// A shareable, thread-safe cancellation handle.
///
/// Clone the token, hand one copy to the query (via [`Query::with_cancel`]) and keep
/// the other; calling [`cancel`](CancelToken::cancel) from any thread makes the search
/// stop at the next branch node and return [`Termination::Cancelled`] with the verified
/// best-so-far. Cancellation is sticky and affects every query sharing the token.
///
/// Tokens can be **linked** into a family with [`child`](CancelToken::child):
/// cancelling a parent is observed by all of its children, while cancelling a child
/// leaves the parent (and its siblings) untouched. The racing
/// [`portfolio`](crate::portfolio) uses one child per member so the first member to
/// prove optimality can cancel the rest without touching the caller's query token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent. Children observe it; parents do not.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested on this token or any of its ancestors.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }

    /// A linked child token: it fires when either it or this token is cancelled, but
    /// cancelling the child never propagates back to this token.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }
}

/// One question to ask an [`RfcSolver`].
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Which fairness model to solve.
    pub fairness: FairnessModel,
    /// What to return: the maximum clique or the top-k largest.
    pub objective: Objective,
    /// Time/node limits on the search phase.
    pub budget: Budget,
    /// Reductions, bounds, heuristic, branching order, and thread count.
    pub config: SearchConfig,
    /// Optional cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
}

impl Query {
    /// A maximum-objective, unlimited, default-config query for the given model.
    pub fn new(fairness: FairnessModel) -> Self {
        Self {
            fairness,
            ..Self::default()
        }
    }

    /// Returns this query with a different objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Returns this query with a budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Returns this query with a search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns this query carrying (a clone of) the given cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// How a [`Solution`] came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The search ran to completion: the result is exact (the maximum fair clique, or
    /// the exact top-k sizes).
    Optimal,
    /// The search ran to completion and proved no fair clique exists.
    Infeasible,
    /// A time or node budget was exhausted: the result is the verified best-so-far and
    /// may be suboptimal (or empty, if nothing was found before the budget ran out).
    BudgetExhausted,
    /// The query's [`CancelToken`] fired: the result is the verified best-so-far.
    Cancelled,
}

impl Termination {
    /// Whether the search ran to completion (`Optimal` or `Infeasible`), i.e. the
    /// solution is exact rather than best-so-far.
    pub fn is_complete(&self) -> bool {
        matches!(self, Termination::Optimal | Termination::Infeasible)
    }
}

/// The structured result of [`RfcSolver::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The fair cliques found, largest first: at most one for
    /// [`Objective::Maximum`], at most `n` for [`Objective::TopK`]. Every entry is a
    /// verified fair clique of the input graph even when the search stopped early.
    pub cliques: Vec<FairClique>,
    /// What the result means (exact, infeasible, or best-so-far).
    pub termination: Termination,
    /// Counters for the run (reduction pipeline, heuristic, search).
    pub stats: SearchStats,
    /// Whether this query reused a reduced graph cached by an earlier query (same `k`
    /// and reduction config). On a hit `stats.reduction` reports the cached pipeline's
    /// numbers, including its original stage timings.
    pub reduction_cache_hit: bool,
    /// The best **proven** upper bound on the maximum fair clique size for this query.
    ///
    /// * Complete terminations carry the exact answer: the optimum size for
    ///   [`Termination::Optimal`], `0` for [`Termination::Infeasible`].
    /// * On [`Termination::BudgetExhausted`] / [`Termination::Cancelled`] this is the
    ///   best colorful upper bound across the reduced graph's components (per
    ///   component: distinct colors per attribute capped through
    ///   [`FairCliqueParams::best_fair_total`]), or `None` if the query stopped
    ///   before the reduction finished (nothing sound was computed yet).
    ///
    /// Whenever the bound matches the incumbent size on a [`Objective::Maximum`]
    /// query, the solver upgrades the termination to `Optimal` — so a reported
    /// [`optimality_gap`](Solution::optimality_gap) of zero always means the answer
    /// is exact.
    pub upper_bound: Option<usize>,
}

impl Solution {
    /// The largest fair clique found, if any.
    pub fn best(&self) -> Option<&FairClique> {
        self.cliques.first()
    }

    /// Size of the largest fair clique found (`0` when none was found).
    pub fn best_size(&self) -> usize {
        self.best().map(FairClique::size).unwrap_or(0)
    }

    /// The proven optimality gap: `upper_bound − best_size`.
    ///
    /// `Some(0)` exactly when the answer is proven exact (complete terminations, or a
    /// best-so-far that meets the colorful upper bound — which the solver upgrades to
    /// [`Termination::Optimal`]); `None` when the search stopped before any sound
    /// bound was available.
    pub fn optimality_gap(&self) -> Option<usize> {
        match self.termination {
            Termination::Optimal | Termination::Infeasible => Some(0),
            Termination::BudgetExhausted | Termination::Cancelled => self
                .upper_bound
                .map(|ub| ub.saturating_sub(self.best_size())),
        }
    }

    /// Consumes the solution, returning the largest fair clique found.
    pub fn into_best(self) -> Option<FairClique> {
        self.cliques.into_iter().next()
    }

    /// Splits the solution into its cliques and stats (used by the one-shot
    /// compatibility wrappers).
    pub fn into_parts(self) -> (Vec<FairClique>, SearchStats) {
        (self.cliques, self.stats)
    }

    /// Renders a human-readable per-stage time breakdown of this solve — the same
    /// phases the `--trace` span log records, without needing a trace file.
    ///
    /// Times are the stats' own microsecond counters: per-stage reduction wall time,
    /// the search phase's summed worker busy time, and the call's total elapsed time.
    /// The search line also carries the branch/prune/incumbent counters and the prune
    /// breakdown uses the same reason names as the
    /// `rfc_search_prunes_total{reason=...}` metric series.
    pub fn trace_summary(&self) -> String {
        use std::fmt::Write as _;
        fn us(micros: u64) -> String {
            if micros >= 1_000_000 {
                format!("{:.2} s", micros as f64 / 1e6)
            } else if micros >= 1_000 {
                format!("{:.2} ms", micros as f64 / 1e3)
            } else {
                format!("{micros} µs")
            }
        }
        let s = &self.stats;
        let mut out = String::new();
        let _ = writeln!(out, "solve breakdown ({:?})", self.termination);
        let reduction_total: u64 = s.reduction.stages.iter().map(|st| st.micros).sum();
        let _ = writeln!(
            out,
            "  reduction        {:>10}   |V| {} -> {}, |E| {} -> {}{}",
            us(reduction_total),
            s.reduction.original_vertices,
            s.reduction.final_vertices(),
            s.reduction.original_edges,
            s.reduction.final_edges(),
            if self.reduction_cache_hit {
                " (cached)"
            } else {
                ""
            },
        );
        for stage in &s.reduction.stages {
            let _ = writeln!(
                out,
                "    {:<14} {:>10}   |V|={} |E|={}",
                stage.stage,
                us(stage.micros),
                stage.vertices,
                stage.edges
            );
        }
        if let Some(size) = s.heuristic_size {
            let _ = writeln!(
                out,
                "  heuristic                     warm start size {size}"
            );
        }
        let _ = writeln!(
            out,
            "  search (cpu)     {:>10}   branches={} components={} incumbent_updates={}",
            us(s.cpu_micros),
            s.branches,
            s.components_searched,
            s.incumbent_updates
        );
        let _ = writeln!(
            out,
            "    prunes                       bound={} feasibility={}",
            s.bound_prunes, s.feasibility_prunes
        );
        for (reason, count) in s.prune_counts.reasons() {
            if count > 0 {
                let _ = writeln!(out, "      {reason:<26} {count}");
            }
        }
        let _ = writeln!(out, "  total elapsed    {:>10}", us(s.elapsed_micros));
        out
    }
}

/// Why a [`Query`] could not be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The fairness model's parameters are invalid (`k = 0`).
    InvalidParams(ParamError),
    /// [`Objective::TopK`] with `n = 0` asks for nothing.
    EmptyTopK,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::InvalidParams(e) => write!(f, "invalid query parameters: {e}"),
            SolveError::EmptyTopK => write!(f, "top-k objective needs k >= 1"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::InvalidParams(e) => Some(e),
            SolveError::EmptyTopK => None,
        }
    }
}

/// A reduced graph plus the pipeline stats that produced it, shared across queries
/// (and reused by [`DynamicRfcSolver`](crate::dynamic::DynamicRfcSolver), which keeps
/// or splices these entries across graph updates).
#[derive(Debug)]
pub(crate) struct ReducedEntry {
    pub(crate) graph: AttributedGraph,
    pub(crate) stats: ReductionStats,
}

/// A build-once / query-many maximum fair clique solver (see the [module
/// docs](self) for the full tour).
///
/// The solver is `Sync`: concurrent [`solve`](RfcSolver::solve) calls from multiple
/// threads are safe and share the reduction cache. Two racing queries may both compute
/// the same missing reduction; the first result is kept, so the cache stays consistent.
#[derive(Debug)]
pub struct RfcSolver {
    graph: AttributedGraph,
    /// Colors used by a greedy coloring of the graph — an upper bound on the size of
    /// *any* clique, computed once and used as an O(1) infeasibility gate.
    num_colors: usize,
    /// Degeneracy of the graph, computed lazily on first request (no solve path needs
    /// it, so throwaway solvers built by the one-shot wrappers never pay for it).
    degeneracy: OnceLock<u32>,
    /// Reduced graphs keyed by `(k, reduction config)` — everything the reduction
    /// pipeline depends on. Computed lazily on first use.
    reductions: Mutex<HashMap<(usize, ReductionConfig), Arc<ReducedEntry>>>,
    /// Number of reduction pipeline executions (cache misses) so far.
    preprocessing_runs: AtomicUsize,
}

impl RfcSolver {
    /// Builds a solver, computing the query-independent preprocessing state.
    pub fn new(graph: AttributedGraph) -> Self {
        let num_colors = greedy_coloring(&graph).num_colors;
        Self {
            graph,
            num_colors,
            degeneracy: OnceLock::new(),
            reductions: Mutex::new(HashMap::new()),
            preprocessing_runs: AtomicUsize::new(0),
        }
    }

    /// The graph this solver answers queries about.
    pub fn graph(&self) -> &AttributedGraph {
        &self.graph
    }

    /// Colors of the cached greedy coloring: an upper bound on any clique size, hence
    /// on any fair clique size.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Degeneracy of the graph (computed and cached on first call).
    pub fn degeneracy(&self) -> u32 {
        *self.degeneracy.get_or_init(|| degeneracy(&self.graph))
    }

    /// How many distinct reduction pipelines this solver has executed so far (cache
    /// misses; queries sharing `(k, reductions)` don't add to this).
    pub fn preprocessing_runs(&self) -> usize {
        self.preprocessing_runs.load(Ordering::Relaxed)
    }

    /// Answers one query. See [`Solution::termination`] for how to read the result.
    ///
    /// Errors only on malformed queries (`k = 0`, or an empty top-k objective);
    /// budget exhaustion and cancellation are expressed through [`Termination`], not
    /// through `Err`.
    pub fn solve(&self, query: &Query) -> Result<Solution, SolveError> {
        self.solve_with_threads(query, query.config.threads)
    }

    /// Runs the linear-time `HeurRFC` heuristic for a query's fairness model on the
    /// original (unreduced) graph: a large fair clique plus a coloring-based upper
    /// bound, without the exact search.
    pub fn heuristic(&self, query: &Query) -> Result<HeuristicOutcome, SolveError> {
        let params = self.resolve(query.fairness)?;
        Ok(heur_rfc(&self.graph, params, &query.config.heuristic))
    }

    /// Enumerates every **maximal fair clique** under the query's fairness model,
    /// streaming each one into `sink` — the set-valued counterpart of
    /// [`solve`](RfcSolver::solve). See [`enumerate`](crate::enumerate) for the
    /// algorithm, the sink family, and the determinism contract.
    ///
    /// Shares this solver's cached reduced graph with `solve` queries of the same
    /// `(k, reductions)`. Budget exhaustion, cancellation and sink-driven stops are
    /// reported through [`EnumOutcome::termination`]; every clique emitted before a
    /// stop is still a verified maximal fair clique. Errors only on malformed
    /// queries (`k = 0`).
    ///
    /// ```
    /// use rfc_core::prelude::*;
    /// use rfc_graph::fixtures;
    ///
    /// let solver = RfcSolver::new(fixtures::fig1_graph());
    /// let mut sink = CollectSink::new();
    /// let outcome = solver
    ///     .enumerate(
    ///         &EnumQuery::new(FairnessModel::Relative { k: 3, delta: 1 })
    ///             .with_threads(ThreadCount::Serial),
    ///         &mut sink,
    ///     )
    ///     .unwrap();
    /// assert_eq!(outcome.termination, EnumTermination::Complete);
    /// assert_eq!(outcome.emitted, 5); // the five fair 7-subsets of the 8-clique
    /// assert!(sink.cliques().iter().all(|c| c.size() == 7));
    /// ```
    pub fn enumerate(
        &self,
        query: &EnumQuery,
        sink: &mut dyn CliqueSink,
    ) -> Result<EnumOutcome, SolveError> {
        let start = Instant::now();
        let mut enum_span = rfc_obs::trace::span("enumerate");
        let params = self.resolve(query.fairness)?;
        let min_size = params.min_size().max(query.min_size);
        let mut stats = EnumStats::default();

        // O(1) infeasibility gate: no clique — fair or not — exceeds the color count,
        // so nothing of size ≥ min_size can exist beyond it.
        if min_size > self.num_colors {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            return Ok(EnumOutcome {
                emitted: 0,
                termination: EnumTermination::Complete,
                stats,
                reduction_cache_hit: false,
            });
        }

        // Anchor the budget clock before the reduction so it covers the whole call.
        let ctrl = SearchControl::new(&query.budget, query.cancel.clone());
        let stopped_outcome = |ctrl: &SearchControl, mut stats: EnumStats| {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            EnumOutcome {
                emitted: 0,
                termination: match stopped_termination(ctrl) {
                    Termination::Cancelled => EnumTermination::Cancelled,
                    _ => EnumTermination::BudgetExhausted,
                },
                stats,
                reduction_cache_hit: false,
            }
        };
        if ctrl.check_now() {
            return Ok(stopped_outcome(&ctrl, stats));
        }
        let (reduced, reduction_cache_hit) =
            match self.reduced_controlled(params.k, &query.reductions, Some(&ctrl)) {
                Ok(pair) => pair,
                Err(partial) => {
                    stats.reduction = partial;
                    return Ok(stopped_outcome(&ctrl, stats));
                }
            };
        stats.reduction = reduced.stats.clone();

        let problem = EnumProblem {
            model: query.fairness,
            params,
            min_size,
        };
        let (run_stats, emitted, sink_stopped) = run_enumeration(
            &self.graph,
            &reduced.graph,
            problem,
            query.threads,
            &ctrl,
            sink,
        );
        stats += &run_stats;

        let termination = match ctrl.stop_reason() {
            Some(StopReason::Budget) => EnumTermination::BudgetExhausted,
            Some(StopReason::Cancelled) => EnumTermination::Cancelled,
            None if sink_stopped => EnumTermination::SinkStopped,
            None => EnumTermination::Complete,
        };
        stats.elapsed_micros = start.elapsed().as_micros() as u64;
        enum_span.counter("emitted", emitted);
        drop(enum_span);
        let m = rfc_obs::metrics::global();
        m.counter("rfc_enumerate_runs_total").inc();
        m.counter("rfc_enumerate_emitted_total").add(emitted);
        m.histogram("rfc_enumerate_elapsed_us")
            .observe(stats.elapsed_micros);
        Ok(EnumOutcome {
            emitted,
            termination,
            stats,
            reduction_cache_hit,
        })
    }

    /// Answers many independent queries, fanning them across worker threads while all
    /// of them share this solver's cached preprocessing.
    ///
    /// `threads` controls the *batch-level* fan-out; each query's own search is forced
    /// to [`ThreadCount::Serial`] when the batch runs multi-threaded, so the machine
    /// is never oversubscribed and every individual result is as deterministic as a
    /// serial solve. With `threads` resolving to 1 the queries run sequentially with
    /// their own `config.threads` untouched.
    ///
    /// Results come back in query order, one per query.
    pub fn solve_batch(
        &self,
        queries: &[Query],
        threads: ThreadCount,
    ) -> Vec<Result<Solution, SolveError>> {
        let workers = threads.resolve().min(queries.len());
        if workers <= 1 {
            return queries.iter().map(|q| self.solve(q)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<Solution, SolveError>>> = vec![None; queries.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(query) = queries.get(i) else {
                                break;
                            };
                            local.push((i, self.solve_with_threads(query, ThreadCount::Serial)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("batch worker panicked") {
                    results[i] = Some(result);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every query is dispatched exactly once"))
            .collect()
    }

    /// Validates and resolves a fairness model against this solver's graph.
    fn resolve(&self, fairness: FairnessModel) -> Result<FairCliqueParams, SolveError> {
        fairness
            .resolve(self.graph.num_vertices())
            .map_err(SolveError::InvalidParams)
    }

    /// The solve pipeline, with the search-phase thread count pinned by the caller
    /// (batch workers force serial inner searches).
    fn solve_with_threads(
        &self,
        query: &Query,
        threads: ThreadCount,
    ) -> Result<Solution, SolveError> {
        let start = Instant::now();
        let mut solve_span = rfc_obs::trace::span("solve");
        let params = self.resolve(query.fairness)?;
        let capacity = match query.objective {
            Objective::Maximum => 1,
            Objective::TopK(0) => return Err(SolveError::EmptyTopK),
            Objective::TopK(n) => n,
        };

        let mut stats = SearchStats::default();

        // O(1) infeasibility gate from the build-time coloring: every clique uses
        // pairwise-distinct colors, so no clique — fair or not — can exceed the color
        // count, and a fair clique needs at least 2k vertices.
        if params.min_size() > self.num_colors {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            return Ok(Solution {
                cliques: Vec::new(),
                termination: Termination::Infeasible,
                stats,
                reduction_cache_hit: false,
                upper_bound: Some(0),
            });
        }

        // The budget clock is anchored *here*, before reduction and the heuristic, so
        // `Budget.time_limit` covers the whole query (see the `Budget` docs).
        let ctrl = SearchControl::new(&query.budget, query.cancel.clone());
        if ctrl.check_now() {
            stats.elapsed_micros = start.elapsed().as_micros() as u64;
            return Ok(Solution {
                cliques: Vec::new(),
                termination: stopped_termination(&ctrl),
                stats,
                reduction_cache_hit: false,
                upper_bound: None,
            });
        }

        // Phase 1: reduced graph, shared across queries with the same (k, reductions).
        // A budget/cancel trip mid-pipeline aborts without caching the partial result.
        let (reduced, reduction_cache_hit) = {
            let mut span = rfc_obs::trace::span("reduce");
            match self.reduced_controlled(params.k, &query.config.reductions, Some(&ctrl)) {
                Ok((reduced, hit)) => {
                    span.counter("cache_hit", hit as u64);
                    span.counter("vertices", reduced.stats.final_vertices() as u64);
                    span.counter("edges", reduced.stats.final_edges() as u64);
                    (reduced, hit)
                }
                Err(partial) => {
                    stats.reduction = partial;
                    stats.elapsed_micros = start.elapsed().as_micros() as u64;
                    return Ok(Solution {
                        cliques: Vec::new(),
                        termination: stopped_termination(&ctrl),
                        stats,
                        reduction_cache_hit: false,
                        upper_bound: None,
                    });
                }
            }
        };
        stats.reduction = reduced.stats.clone();

        // Phase 2: heuristic warm start on the reduced graph; its clique seeds the
        // shared pool so every component search starts with the warm bound. Skipped
        // when the deadline already passed during reduction.
        let mut warm_start = None;
        if query.config.use_heuristic && !ctrl.check_now() {
            let mut span = rfc_obs::trace::span("heuristic");
            let outcome = heur_rfc(&reduced.graph, params, &query.config.heuristic);
            stats.heuristic_size = outcome.best.as_ref().map(|c| c.size());
            span.counter("size", stats.heuristic_size.unwrap_or(0) as u64);
            warm_start = outcome.best.map(|c| c.vertices);
        }

        // Phase 3: budgeted, cancellable branch-and-bound.
        let pool = SharedIncumbent::with_capacity(capacity, warm_start);
        let mut config = query.config.clone();
        config.threads = threads;
        {
            let mut span = rfc_obs::trace::span("search");
            stats += &branch_and_bound(&reduced.graph, params, &config, &pool, &ctrl);
            span.counter("branches", stats.branches);
            span.counter("components", stats.components_searched as u64);
            span.counter("bound_prunes", stats.bound_prunes);
            span.counter("feasibility_prunes", stats.feasibility_prunes);
            span.counter("incumbent_updates", stats.incumbent_updates);
        }

        let cliques: Vec<FairClique> = pool
            .into_cliques()
            .into_iter()
            .map(|vertices| FairClique::from_vertices(&self.graph, vertices))
            .collect();
        let mut termination = match ctrl.stop_reason() {
            Some(StopReason::Budget) => Termination::BudgetExhausted,
            Some(StopReason::Cancelled) => Termination::Cancelled,
            None if cliques.is_empty() => Termination::Infeasible,
            None => Termination::Optimal,
        };
        let best_size = cliques.first().map(FairClique::size).unwrap_or(0);
        let upper_bound = if termination.is_complete() {
            Some(best_size)
        } else {
            // The colorful bound never undercuts a verified clique; max() guards the
            // invariant anyway so a reported gap can never go negative.
            let ub = colorful_upper_bound(&reduced.graph, params).max(best_size);
            // A best-so-far that meets the proven bound *is* the exact answer: certify
            // it instead of reporting a hollow "budget exhausted" (single-maximum
            // queries only — top-k completeness needs more than a size bound).
            if query.objective == Objective::Maximum && ub == best_size {
                termination = if best_size > 0 {
                    Termination::Optimal
                } else {
                    Termination::Infeasible
                };
            }
            Some(ub)
        };
        stats.elapsed_micros = start.elapsed().as_micros() as u64;
        solve_span.counter("branches", stats.branches);
        solve_span.counter("cliques", cliques.len() as u64);
        drop(solve_span);
        flush_search_metrics(&stats);
        Ok(Solution {
            cliques,
            termination,
            stats,
            reduction_cache_hit,
            upper_bound,
        })
    }

    /// Fetches (or computes and caches) the reduced graph for `(k, config)`, honoring
    /// the query's budget/cancel control between pipeline stages.
    ///
    /// Cache hits are free and always served, even on a tripped control. On a miss,
    /// a trip mid-pipeline returns `Err` with the partial stage stats and caches
    /// **nothing** — a later query recomputes the reduction from scratch, so the
    /// cache only ever holds complete pipelines.
    pub(crate) fn reduced_controlled(
        &self,
        k: usize,
        config: &ReductionConfig,
        ctrl: Option<&SearchControl>,
    ) -> Result<(Arc<ReducedEntry>, bool), ReductionStats> {
        let key = (k, *config);
        if let Some(entry) = self
            .reductions
            .lock()
            .expect("reduction cache poisoned")
            .get(&key)
        {
            return Ok((Arc::clone(entry), true));
        }
        // Compute outside the lock so concurrent queries for *different* keys don't
        // serialize; racing queries for the same key keep the first finished result.
        let params = FairCliqueParams::new(k, 0).expect("k >= 1 was validated by the caller");
        let (graph, stats) = apply_reductions_controlled(&self.graph, params, config, ctrl);
        let Some(graph) = graph else {
            return Err(stats);
        };
        let entry = Arc::new(ReducedEntry { graph, stats });
        self.preprocessing_runs.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.reductions.lock().expect("reduction cache poisoned");
        let entry = Arc::clone(cache.entry(key).or_insert(entry));
        Ok((entry, false))
    }
}

/// Maps a tripped control's reason to the query-level [`Termination`]. Callers only
/// invoke this after a check reported a stop, so an untripped control (possible only
/// through a race that resolved the other way) counts as a budget trip.
pub(crate) fn stopped_termination(ctrl: &SearchControl) -> Termination {
    match ctrl.stop_reason() {
        Some(StopReason::Cancelled) => Termination::Cancelled,
        _ => Termination::BudgetExhausted,
    }
}

/// A sound upper bound on the size of any fair clique of `g` under `params`, from a
/// fresh greedy coloring of each candidate component.
///
/// Clique vertices carry pairwise-distinct colors, so within one connected component
/// a fair clique holds at most "distinct colors among `a`-vertices" vertices of
/// attribute `a` (likewise `b`); [`FairCliqueParams::best_fair_total`] converts those
/// caps into a size cap. The result is the maximum over components that could host a
/// fair clique at all — `0` proves infeasibility. This is the bound behind
/// [`Solution::upper_bound`] and the portfolio's reported optimality gap.
pub(crate) fn colorful_upper_bound(g: &AttributedGraph, params: FairCliqueParams) -> usize {
    use rfc_graph::coloring::greedy_coloring_of_subset;
    use rfc_graph::components::components_of_subset;

    let min_size = params.min_size();
    let active: Vec<rfc_graph::VertexId> = (0..g.num_vertices() as u32)
        .filter(|&v| g.degree(v) + 1 >= min_size)
        .collect();
    let mut best = 0usize;
    for component in components_of_subset(g, &active) {
        if component.len() < min_size || component.len() <= best {
            continue;
        }
        let coloring = greedy_coloring_of_subset(g, &component);
        // Distinct colors seen per attribute within this component.
        let mut seen = vec![[false; 2]; coloring.num_colors];
        let mut caps = [0usize; 2];
        for &v in &component {
            let color = coloring.colors[v as usize] as usize;
            let attr = g.attribute(v).index();
            if !seen[color][attr] {
                seen[color][attr] = true;
                caps[attr] += 1;
            }
        }
        if let Some(total) = params.best_fair_total(caps[0], caps[1]) {
            best = best.max(total.min(component.len()));
        }
    }
    best
}

/// Publishes one solve's search counters into the global metrics registry. Prune
/// reasons become one `rfc_search_prunes_total{reason=...}` series each, using the
/// [`PruneCounts::reasons`](crate::search::PruneCounts::reasons) vocabulary.
pub(crate) fn flush_search_metrics(stats: &SearchStats) {
    let m = rfc_obs::metrics::global();
    m.counter("rfc_search_solves_total").inc();
    m.counter("rfc_search_branches_total").add(stats.branches);
    m.counter("rfc_search_incumbent_updates_total")
        .add(stats.incumbent_updates);
    m.counter("rfc_search_components_total")
        .add(stats.components_searched as u64);
    for (reason, count) in stats.prune_counts.reasons() {
        if count > 0 {
            m.counter(&format!("rfc_search_prunes_total{{reason=\"{reason}\"}}"))
                .add(count);
        }
    }
    m.histogram("rfc_solve_elapsed_us")
        .observe(stats.elapsed_micros);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use rfc_graph::fixtures;

    #[test]
    fn one_preprocessing_pass_serves_many_models() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let relative = solver
            .solve(&Query::new(FairnessModel::Relative { k: 3, delta: 1 }))
            .unwrap();
        let strong = solver
            .solve(&Query::new(FairnessModel::Strong { k: 3 }))
            .unwrap();
        let weak = solver
            .solve(&Query::new(FairnessModel::Weak { k: 3 }))
            .unwrap();
        assert_eq!(relative.best().unwrap().size(), 7);
        assert_eq!(strong.best().unwrap().size(), 6);
        assert_eq!(weak.best().unwrap().size(), 8);
        // All three share k = 3, so the reduction pipeline ran exactly once.
        assert!(!relative.reduction_cache_hit);
        assert!(strong.reduction_cache_hit && weak.reduction_cache_hit);
        assert_eq!(solver.preprocessing_runs(), 1);
        // A different k needs its own pipeline.
        let other = solver
            .solve(&Query::new(FairnessModel::Relative { k: 2, delta: 1 }))
            .unwrap();
        assert!(!other.reduction_cache_hit);
        assert_eq!(solver.preprocessing_runs(), 2);
        for solution in [&relative, &strong, &weak, &other] {
            assert_eq!(solution.termination, Termination::Optimal);
            assert!(solution.termination.is_complete());
        }
    }

    #[test]
    fn solutions_verify_under_their_model() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        for fairness in [
            FairnessModel::Relative { k: 3, delta: 1 },
            FairnessModel::Weak { k: 3 },
            FairnessModel::Strong { k: 3 },
        ] {
            let solution = solver.solve(&Query::new(fairness)).unwrap();
            let best = solution.best().unwrap();
            assert!(
                verify::is_fair_clique_under(solver.graph(), &best.vertices, fairness),
                "{fairness}"
            );
        }
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let err = solver
            .solve(&Query::new(FairnessModel::Weak { k: 0 }))
            .unwrap_err();
        assert_eq!(err, SolveError::InvalidParams(ParamError::KMustBePositive));
        assert!(err.to_string().contains("invalid query parameters"));
        let err = solver
            .solve(&Query::default().with_objective(Objective::TopK(0)))
            .unwrap_err();
        assert_eq!(err, SolveError::EmptyTopK);
        assert!(std::error::Error::source(&SolveError::EmptyTopK).is_none());
    }

    #[test]
    fn coloring_gate_short_circuits_hopeless_queries() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        // The greedy coloring bounds every clique; k beyond it can't be served.
        let k = solver.num_colors(); // min_size = 2k > num_colors for any k >= 1
        let solution = solver
            .solve(&Query::new(FairnessModel::Weak { k }))
            .unwrap();
        assert_eq!(solution.termination, Termination::Infeasible);
        assert!(solution.cliques.is_empty());
        // The gate answers without touching the reduction pipeline.
        assert_eq!(solver.preprocessing_runs(), 0);
        assert!(solver.degeneracy() >= 1);
    }

    #[test]
    fn infeasible_is_reported_after_a_full_search_too() {
        let solver = RfcSolver::new(fixtures::path_graph(10));
        let solution = solver
            .solve(&Query::new(FairnessModel::Relative { k: 1, delta: 0 }))
            .unwrap();
        // A path has fair edges for k = 1 — feasible; now ask for something the path
        // cannot host at all.
        assert_eq!(solution.termination, Termination::Optimal);
        let hard = solver
            .solve(&Query::new(FairnessModel::Relative { k: 2, delta: 0 }))
            .unwrap();
        assert_eq!(hard.termination, Termination::Infeasible);
        assert!(hard.best().is_none());
    }

    #[test]
    fn budget_and_cancellation_report_their_termination() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        // Pre-cancelled token: the search stops on its first node.
        let token = CancelToken::new();
        token.cancel();
        let cancelled = solver
            .solve(
                &Query::new(FairnessModel::Relative { k: 3, delta: 1 }).with_cancel(token.clone()),
            )
            .unwrap();
        assert_eq!(cancelled.termination, Termination::Cancelled);
        assert!(token.is_cancelled());
        // Exhausted node budget: best-so-far comes from the heuristic warm start and
        // is still a verified fair clique. On Fig.1 the warm start meets the colorful
        // upper bound, so the solver certifies it as the exact optimum (gap 0).
        let budgeted = solver
            .solve(
                &Query::new(FairnessModel::Relative { k: 3, delta: 1 })
                    .with_budget(Budget::unlimited().with_node_limit(0)),
            )
            .unwrap();
        assert_eq!(budgeted.termination, Termination::Optimal);
        assert_eq!(budgeted.optimality_gap(), Some(0));
        assert_eq!(budgeted.upper_bound, Some(7));
        let best = budgeted.best().expect("warm start seeds the pool");
        assert!(verify::is_fair_and_clique(
            solver.graph(),
            &best.vertices,
            FairCliqueParams::new(3, 1).unwrap()
        ));
        // Without the warm start nothing reaches the bound, so the same node-starved
        // query stays honestly budget-exhausted, with the bound as its finite gap.
        let config = SearchConfig {
            use_heuristic: false,
            ..SearchConfig::default()
        };
        let starved = solver
            .solve(
                &Query::new(FairnessModel::Relative { k: 3, delta: 1 })
                    .with_config(config)
                    .with_budget(Budget::unlimited().with_node_limit(0)),
            )
            .unwrap();
        assert_eq!(starved.termination, Termination::BudgetExhausted);
        assert!(!starved.termination.is_complete());
        assert!(starved.best().is_none());
        assert_eq!(starved.upper_bound, Some(7));
        assert_eq!(starved.optimality_gap(), Some(7));
        assert!(!Budget::unlimited().with_node_limit(0).is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
    }

    #[test]
    fn top_k_returns_the_largest_fair_cliques() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let query = Query::new(FairnessModel::Relative { k: 3, delta: 1 })
            .with_objective(Objective::TopK(3))
            .with_config(SearchConfig::default().with_threads(ThreadCount::Serial));
        let solution = solver.solve(&query).unwrap();
        assert_eq!(solution.termination, Termination::Optimal);
        // The planted 8-clique has five a's and three b's: every 7-subset dropping one
        // `a` is fair for (3, 1), so all top-3 cliques have size 7.
        let sizes: Vec<usize> = solution.cliques.iter().map(|c| c.size()).collect();
        assert_eq!(sizes, vec![7, 7, 7]);
        let mut sets: Vec<_> = solution
            .cliques
            .iter()
            .map(|c| c.vertices.clone())
            .collect();
        sets.dedup();
        assert_eq!(sets.len(), 3, "top-k cliques must be distinct");
        for clique in &solution.cliques {
            assert!(verify::is_fair_and_clique(
                solver.graph(),
                &clique.vertices,
                FairCliqueParams::new(3, 1).unwrap()
            ));
        }
    }

    #[test]
    fn batch_matches_individual_solves() {
        let solver = RfcSolver::new(fixtures::fig1_graph());
        let queries: Vec<Query> = vec![
            Query::new(FairnessModel::Relative { k: 3, delta: 1 }),
            Query::new(FairnessModel::Weak { k: 3 }),
            Query::new(FairnessModel::Strong { k: 3 }),
            Query::new(FairnessModel::Relative { k: 2, delta: 0 }),
            Query::new(FairnessModel::Weak { k: 0 }), // invalid on purpose
        ];
        let individual: Vec<_> = queries
            .iter()
            .map(|q| solver.solve(q).map(|s| s.best().map(|c| c.size())))
            .collect();
        for threads in [ThreadCount::Serial, ThreadCount::Fixed(3)] {
            let batch = solver.solve_batch(&queries, threads);
            assert_eq!(batch.len(), queries.len());
            let batch_sizes: Vec<_> = batch
                .into_iter()
                .map(|r| r.map(|s| s.best().map(|c| c.size())))
                .collect();
            assert_eq!(batch_sizes, individual, "threads {threads:?}");
        }
    }

    #[test]
    fn query_builder_round_trip() {
        let token = CancelToken::new();
        let query = Query::new(FairnessModel::Strong { k: 2 })
            .with_objective(Objective::TopK(5))
            .with_budget(Budget::unlimited().with_time_limit(Duration::from_secs(1)))
            .with_config(SearchConfig::basic())
            .with_cancel(token);
        assert_eq!(query.fairness, FairnessModel::Strong { k: 2 });
        assert_eq!(query.objective, Objective::TopK(5));
        assert_eq!(query.budget.time_limit, Some(Duration::from_secs(1)));
        assert_eq!(query.config, SearchConfig::basic());
        assert!(query.cancel.is_some());
        assert_eq!(
            Query::default().fairness,
            FairnessModel::Relative { k: 2, delta: 1 }
        );
        assert_eq!(Query::default().objective, Objective::Maximum);
    }
}
