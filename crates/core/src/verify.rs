//! Solution verification.
//!
//! These checks are deliberately simple and independent of the search code so they can
//! serve as trustworthy oracles in tests, benchmarks and downstream applications.

use crate::problem::{FairClique, FairCliqueParams, FairnessModel};
use rfc_graph::{AttributeCounts, AttributedGraph, VertexId};

/// Whether `vertices` is a duplicate-free clique in `g` whose attribute counts satisfy
/// the given fairness predicate.
fn is_clique_satisfying(
    g: &AttributedGraph,
    vertices: &[VertexId],
    is_fair: impl Fn(AttributeCounts) -> bool,
) -> bool {
    if !g.is_clique(vertices) {
        return false;
    }
    let mut unique = vertices.to_vec();
    unique.sort_unstable();
    unique.dedup();
    if unique.len() != vertices.len() {
        return false;
    }
    is_fair(g.attribute_counts_of(vertices))
}

/// Whether `vertices` is a clique in `g` whose attribute counts satisfy the fairness
/// constraint of `params` (condition (i) of Definition 1).
pub fn is_fair_and_clique(
    g: &AttributedGraph,
    vertices: &[VertexId],
    params: FairCliqueParams,
) -> bool {
    is_clique_satisfying(g, vertices, |counts| params.is_fair(counts))
}

/// Whether `vertices` is a clique in `g` that is fair under the given
/// [`FairnessModel`], checked against the model's *native* constraint
/// ([`FairnessModel::is_fair`]) — not against any resolved `(k, δ)` parameters — so
/// this can serve as an independent oracle for [`FairnessModel::resolve`].
pub fn is_fair_clique_under(
    g: &AttributedGraph,
    vertices: &[VertexId],
    model: FairnessModel,
) -> bool {
    is_clique_satisfying(g, vertices, |counts| model.is_fair(counts))
}

/// Whether `vertices` is a *relative fair clique* exactly as in Definition 1: it is a
/// fair clique (condition (i)) **and** no proper superset is also a fair clique
/// (condition (ii), maximality).
///
/// Maximality genuinely requires looking beyond single-vertex extensions: with `δ = 0`
/// adding any one vertex to a balanced clique breaks balance, yet adding a balanced
/// *pair* of common neighbors can restore it. The check therefore searches all cliques
/// within the common-neighbor set of `vertices` for a fair extension — exponential in
/// that (typically tiny) candidate set, which is fine for an oracle.
pub fn is_relative_fair_clique(
    g: &AttributedGraph,
    vertices: &[VertexId],
    params: FairCliqueParams,
) -> bool {
    is_fair_and_clique(g, vertices, params)
        && is_maximal_among_extensions(g, vertices, |counts| params.is_fair(counts))
}

/// Whether `vertices` is a *maximal* fair clique under the given [`FairnessModel`]:
/// fair per the model's native constraint, and no proper superset is also a fair
/// clique. The model-generic counterpart of [`is_relative_fair_clique`].
pub fn is_maximal_fair_clique_under(
    g: &AttributedGraph,
    vertices: &[VertexId],
    model: FairnessModel,
) -> bool {
    is_fair_clique_under(g, vertices, model)
        && is_maximal_among_extensions(g, vertices, |counts| model.is_fair(counts))
}

/// Whether no non-empty clique drawn from the common neighbors of `vertices` extends
/// it to a set satisfying `is_fair` (condition (ii) of Definition 1, generalized over
/// the fairness predicate).
fn is_maximal_among_extensions(
    g: &AttributedGraph,
    vertices: &[VertexId],
    is_fair: impl Fn(AttributeCounts) -> bool,
) -> bool {
    let member = {
        let mut m = vec![false; g.num_vertices()];
        for &v in vertices {
            m[v as usize] = true;
        }
        m
    };
    // Any fair superset is `vertices ∪ S` where S is a non-empty clique drawn from the
    // vertices adjacent to every member.
    let candidates: Vec<VertexId> = g
        .vertices()
        .filter(|&u| !member[u as usize] && vertices.iter().all(|&v| g.has_edge(u, v)))
        .collect();
    let counts = g.attribute_counts_of(vertices);
    !has_fair_extension(g, &is_fair, counts, &candidates)
}

/// Whether some non-empty clique within `candidates` (all assumed adjacent to the
/// current set) extends counts `counts` to a fair total.
fn has_fair_extension(
    g: &AttributedGraph,
    is_fair: &impl Fn(AttributeCounts) -> bool,
    counts: AttributeCounts,
    candidates: &[VertexId],
) -> bool {
    for (i, &u) in candidates.iter().enumerate() {
        let mut extended = counts;
        extended.add(g.attribute(u));
        if is_fair(extended) {
            return true; // a strictly larger fair clique exists
        }
        let rest: Vec<VertexId> = candidates[i + 1..]
            .iter()
            .copied()
            .filter(|&w| g.has_edge(u, w))
            .collect();
        if has_fair_extension(g, is_fair, extended, &rest) {
            return true;
        }
    }
    false
}

/// Whether `cliques` is a valid *set of maximal fair cliques* of `g` under the given
/// [`FairnessModel`]: duplicate-free (as vertex sets), with every member passing
/// [`is_maximal_fair_clique_under`] and carrying the attribute counts of its own
/// vertex set.
///
/// This is the oracle the enumeration test suites run over a
/// [`CliqueSink`](crate::enumerate::CliqueSink)'s output — deliberately independent of
/// the enumeration engine (it only builds on the per-clique verifiers above), and
/// valid for *partial* outputs too: a budget-stopped enumeration must still only have
/// emitted maximal fair cliques.
pub fn is_maximal_fair_clique_set(
    g: &AttributedGraph,
    cliques: &[FairClique],
    model: FairnessModel,
) -> bool {
    let mut seen: Vec<Vec<VertexId>> = cliques
        .iter()
        .map(|c| {
            let mut v = c.vertices.clone();
            v.sort_unstable();
            v
        })
        .collect();
    seen.sort();
    let before = seen.len();
    seen.dedup();
    if seen.len() != before {
        return false;
    }
    cliques.iter().all(|clique| {
        clique.counts == g.attribute_counts_of(&clique.vertices)
            && is_maximal_fair_clique_under(g, &clique.vertices, model)
    })
}

/// Whether a claimed *maximum* fair clique is plausible: it must be a fair clique and be
/// at least as large as another candidate solution. (The exhaustive optimality check is
/// done against the baselines in the test suite.)
pub fn is_at_least_as_large(
    g: &AttributedGraph,
    claimed: &[VertexId],
    other: &[VertexId],
    params: FairCliqueParams,
) -> bool {
    is_fair_and_clique(g, claimed, params) && claimed.len() >= other.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    fn params(k: usize, delta: usize) -> FairCliqueParams {
        FairCliqueParams::new(k, delta).unwrap()
    }

    #[test]
    fn fair_and_clique_checks() {
        let g = fixtures::fig1_graph();
        // 7 of the 8 clique vertices (drop one `a`): 4 a's + 3 b's, fair for (3, 1).
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13];
        assert!(is_fair_and_clique(&g, &fair7, params(3, 1)));
        // The full 8-clique has 5 a's and 3 b's: imbalance 2 > δ=1.
        let all8 = vec![6, 7, 9, 10, 11, 12, 13, 14];
        assert!(!is_fair_and_clique(&g, &all8, params(3, 1)));
        // Fair under δ=2 though.
        assert!(is_fair_and_clique(&g, &all8, params(3, 2)));
        // Not a clique.
        assert!(!is_fair_and_clique(&g, &[0, 1, 14], params(1, 5)));
        // Duplicates rejected.
        assert!(!is_fair_and_clique(&g, &[6, 6, 7, 9], params(1, 5)));
    }

    #[test]
    fn maximality_check() {
        let g = fixtures::fig1_graph();
        // The fair 7-subset is maximal for (3,1): the only possible extension is the
        // remaining `a` vertex, which would push the imbalance to 2.
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13];
        assert!(is_relative_fair_clique(&g, &fair7, params(3, 1)));
        // A fair 6-subset (3 a's + 3 b's) is *not* maximal: another `a` can be added.
        let fair6 = vec![6, 7, 9, 10, 11, 12];
        assert!(is_fair_and_clique(&g, &fair6, params(3, 1)));
        assert!(!is_relative_fair_clique(&g, &fair6, params(3, 1)));
        // Under δ=2 the full 8-clique is maximal (nothing else is adjacent to all).
        let all8 = vec![6, 7, 9, 10, 11, 12, 13, 14];
        assert!(is_relative_fair_clique(&g, &all8, params(3, 2)));
    }

    #[test]
    fn maximality_sees_multi_vertex_extensions() {
        // Balanced K4 (a, b, a, b): under δ = 0 no *single* vertex extends the
        // balanced pair {0, 1}, but the pair {2, 3} does — so {0, 1} must not
        // count as maximal.
        let g = fixtures::balanced_clique(4);
        assert!(is_fair_and_clique(&g, &[0, 1], params(1, 0)));
        assert!(!is_relative_fair_clique(&g, &[0, 1], params(1, 0)));
        assert!(is_relative_fair_clique(&g, &[0, 1, 2, 3], params(2, 0)));
    }

    #[test]
    fn model_aware_fairness_checks() {
        let g = fixtures::fig1_graph();
        let all8 = vec![6, 7, 9, 10, 11, 12, 13, 14]; // 5 a's + 3 b's
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13]; // 4 a's + 3 b's
        let fair6 = vec![6, 7, 9, 10, 11, 12]; // 3 a's + 3 b's
                                               // Weak: counts >= k only.
        assert!(is_fair_clique_under(
            &g,
            &all8,
            FairnessModel::Weak { k: 3 }
        ));
        assert!(!is_fair_clique_under(
            &g,
            &all8,
            FairnessModel::Weak { k: 4 }
        ));
        // Strong: exactly balanced.
        assert!(is_fair_clique_under(
            &g,
            &fair6,
            FairnessModel::Strong { k: 3 }
        ));
        assert!(!is_fair_clique_under(
            &g,
            &fair7,
            FairnessModel::Strong { k: 3 }
        ));
        // Relative matches the params-based oracle.
        assert_eq!(
            is_fair_clique_under(&g, &fair7, FairnessModel::Relative { k: 3, delta: 1 }),
            is_fair_and_clique(&g, &fair7, params(3, 1))
        );
        // Non-cliques and duplicates are rejected regardless of model.
        assert!(!is_fair_clique_under(
            &g,
            &[0, 1, 14],
            FairnessModel::Weak { k: 1 }
        ));
        assert!(!is_fair_clique_under(
            &g,
            &[6, 6, 7],
            FairnessModel::Weak { k: 1 }
        ));
    }

    #[test]
    fn model_aware_maximality_checks() {
        let g = fixtures::fig1_graph();
        let all8 = vec![6, 7, 9, 10, 11, 12, 13, 14];
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13];
        let fair6 = vec![6, 7, 9, 10, 11, 12];
        // Weak: the full 8-clique is maximal, the 7-subset is not (the dropped `a`
        // still extends it fairly).
        assert!(is_maximal_fair_clique_under(
            &g,
            &all8,
            FairnessModel::Weak { k: 3 }
        ));
        assert!(!is_maximal_fair_clique_under(
            &g,
            &fair7,
            FairnessModel::Weak { k: 3 }
        ));
        // Strong: the balanced 6-subset is maximal (any single extension unbalances,
        // and no balanced pair of common neighbors exists: only a's remain).
        assert!(is_maximal_fair_clique_under(
            &g,
            &fair6,
            FairnessModel::Strong { k: 3 }
        ));
        // Relative agrees with the specialized oracle.
        assert_eq!(
            is_maximal_fair_clique_under(&g, &fair7, FairnessModel::Relative { k: 3, delta: 1 }),
            is_relative_fair_clique(&g, &fair7, params(3, 1))
        );
        // Strong-model maximality sees multi-vertex (pair) extensions.
        let k4 = fixtures::balanced_clique(4);
        assert!(!is_maximal_fair_clique_under(
            &k4,
            &[0, 1],
            FairnessModel::Strong { k: 1 }
        ));
    }

    #[test]
    fn maximal_fair_clique_set_checker() {
        let g = fixtures::fig1_graph();
        let model = FairnessModel::Relative { k: 3, delta: 1 };
        let fair7 = FairClique::from_vertices(&g, vec![6, 7, 9, 10, 11, 12, 13]);
        let other7 = FairClique::from_vertices(&g, vec![6, 7, 9, 10, 11, 12, 14]);
        let fair6 = FairClique::from_vertices(&g, vec![6, 7, 9, 10, 11, 12]);
        // A valid (partial) family; the empty family is trivially valid.
        assert!(is_maximal_fair_clique_set(&g, &[], model));
        assert!(is_maximal_fair_clique_set(
            &g,
            &[fair7.clone(), other7.clone()],
            model
        ));
        // Duplicates are rejected even when each member is individually maximal.
        assert!(!is_maximal_fair_clique_set(
            &g,
            &[fair7.clone(), fair7.clone()],
            model
        ));
        // A non-maximal member invalidates the family.
        assert!(!is_maximal_fair_clique_set(
            &g,
            &[fair7.clone(), fair6],
            model
        ));
        // Tampered attribute counts are caught.
        let mut forged = other7;
        forged.counts = rfc_graph::AttributeCounts::from_counts(3, 4);
        assert!(!is_maximal_fair_clique_set(&g, &[forged], model));
    }

    #[test]
    fn comparison_helper() {
        let g = fixtures::fig1_graph();
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13];
        let fair6 = vec![6, 7, 9, 10, 11, 12];
        assert!(is_at_least_as_large(&g, &fair7, &fair6, params(3, 1)));
        assert!(!is_at_least_as_large(&g, &fair6, &fair7, params(3, 1)));
    }
}
