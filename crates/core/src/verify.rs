//! Solution verification.
//!
//! These checks are deliberately simple and independent of the search code so they can
//! serve as trustworthy oracles in tests, benchmarks and downstream applications.

use crate::problem::FairCliqueParams;
use rfc_graph::{AttributedGraph, VertexId};

/// Whether `vertices` is a clique in `g` whose attribute counts satisfy the fairness
/// constraint of `params` (condition (i) of Definition 1).
pub fn is_fair_and_clique(
    g: &AttributedGraph,
    vertices: &[VertexId],
    params: FairCliqueParams,
) -> bool {
    if !g.is_clique(vertices) {
        return false;
    }
    let mut unique = vertices.to_vec();
    unique.sort_unstable();
    unique.dedup();
    if unique.len() != vertices.len() {
        return false;
    }
    params.is_fair(g.attribute_counts_of(vertices))
}

/// Whether `vertices` is a *relative fair clique* exactly as in Definition 1: it is a
/// fair clique (condition (i)) **and** no proper superset is also a fair clique
/// (condition (ii), maximality).
pub fn is_relative_fair_clique(
    g: &AttributedGraph,
    vertices: &[VertexId],
    params: FairCliqueParams,
) -> bool {
    if !is_fair_and_clique(g, vertices, params) {
        return false;
    }
    // Maximality: no vertex outside the set that is adjacent to every member may be
    // addable while keeping fairness.
    let member = {
        let mut m = vec![false; g.num_vertices()];
        for &v in vertices {
            m[v as usize] = true;
        }
        m
    };
    let counts = g.attribute_counts_of(vertices);
    for u in g.vertices() {
        if member[u as usize] {
            continue;
        }
        if vertices.iter().all(|&v| g.has_edge(u, v)) {
            let mut extended = counts;
            extended.add(g.attribute(u));
            if params.is_fair(extended) {
                return false; // a strictly larger fair clique exists
            }
        }
    }
    true
}

/// Whether a claimed *maximum* fair clique is plausible: it must be a fair clique and be
/// at least as large as another candidate solution. (The exhaustive optimality check is
/// done against the baselines in the test suite.)
pub fn is_at_least_as_large(
    g: &AttributedGraph,
    claimed: &[VertexId],
    other: &[VertexId],
    params: FairCliqueParams,
) -> bool {
    is_fair_and_clique(g, claimed, params) && claimed.len() >= other.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::fixtures;

    fn params(k: usize, delta: usize) -> FairCliqueParams {
        FairCliqueParams::new(k, delta).unwrap()
    }

    #[test]
    fn fair_and_clique_checks() {
        let g = fixtures::fig1_graph();
        // 7 of the 8 clique vertices (drop one `a`): 4 a's + 3 b's, fair for (3, 1).
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13];
        assert!(is_fair_and_clique(&g, &fair7, params(3, 1)));
        // The full 8-clique has 5 a's and 3 b's: imbalance 2 > δ=1.
        let all8 = vec![6, 7, 9, 10, 11, 12, 13, 14];
        assert!(!is_fair_and_clique(&g, &all8, params(3, 1)));
        // Fair under δ=2 though.
        assert!(is_fair_and_clique(&g, &all8, params(3, 2)));
        // Not a clique.
        assert!(!is_fair_and_clique(&g, &[0, 1, 14], params(1, 5)));
        // Duplicates rejected.
        assert!(!is_fair_and_clique(&g, &[6, 6, 7, 9], params(1, 5)));
    }

    #[test]
    fn maximality_check() {
        let g = fixtures::fig1_graph();
        // The fair 7-subset is maximal for (3,1): the only possible extension is the
        // remaining `a` vertex, which would push the imbalance to 2.
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13];
        assert!(is_relative_fair_clique(&g, &fair7, params(3, 1)));
        // A fair 6-subset (3 a's + 3 b's) is *not* maximal: another `a` can be added.
        let fair6 = vec![6, 7, 9, 10, 11, 12];
        assert!(is_fair_and_clique(&g, &fair6, params(3, 1)));
        assert!(!is_relative_fair_clique(&g, &fair6, params(3, 1)));
        // Under δ=2 the full 8-clique is maximal (nothing else is adjacent to all).
        let all8 = vec![6, 7, 9, 10, 11, 12, 13, 14];
        assert!(is_relative_fair_clique(&g, &all8, params(3, 2)));
    }

    #[test]
    fn comparison_helper() {
        let g = fixtures::fig1_graph();
        let fair7 = vec![6, 7, 9, 10, 11, 12, 13];
        let fair6 = vec![6, 7, 9, 10, 11, 12];
        assert!(is_at_least_as_large(&g, &fair7, &fair6, params(3, 1)));
        assert!(!is_at_least_as_large(&g, &fair6, &fair7, params(3, 1)));
    }
}
