//! Edge cases of the verification oracles in `rfc_core::verify`.
//!
//! The oracles are the trust anchor of the whole test pyramid (property tests
//! and baselines are judged against them), so their behaviour on degenerate
//! inputs — empty sets, singletons, δ = 0 "strong" fairness, effectively
//! unconstrained "weak" fairness, and outright non-cliques — is pinned here.

use rfc_core::problem::FairCliqueParams;
use rfc_core::verify::{is_at_least_as_large, is_fair_and_clique, is_relative_fair_clique};
use rfc_graph::{fixtures, Attribute, GraphBuilder};

fn params(k: usize, delta: usize) -> FairCliqueParams {
    FairCliqueParams::new(k, delta).unwrap()
}

#[test]
fn empty_set_is_never_fair() {
    let g = fixtures::fig1_graph();
    // `k ≥ 1` forces at least one vertex of each attribute, so the empty set
    // (vacuously a clique) is never a fair clique.
    assert!(!is_fair_and_clique(&g, &[], params(1, 0)));
    assert!(!is_fair_and_clique(&g, &[], params(1, usize::MAX)));
    assert!(!is_relative_fair_clique(&g, &[], params(1, 1)));
}

#[test]
fn single_vertex_is_never_fair() {
    let g = fixtures::fig1_graph();
    for v in g.vertices() {
        // One vertex gives counts (1, 0) or (0, 1); the rarer attribute count
        // is 0 < k for every legal k.
        assert!(!is_fair_and_clique(&g, &[v], params(1, 5)));
        assert!(!is_relative_fair_clique(&g, &[v], params(1, 5)));
    }
}

#[test]
fn strong_fairness_delta_zero_requires_exact_balance() {
    // K4 with attributes a, b, a, b.
    let g = fixtures::balanced_clique(4);
    // (2, 2) split: fair under δ = 0.
    assert!(is_fair_and_clique(&g, &[0, 1, 2, 3], params(2, 0)));
    // Dropping one vertex unbalances to (2, 1): rejected under δ = 0 but
    // accepted under δ = 1.
    assert!(!is_fair_and_clique(&g, &[0, 1, 2], params(1, 0)));
    assert!(is_fair_and_clique(&g, &[0, 1, 2], params(1, 1)));
    // The balanced 4-clique is maximal (it is the whole graph).
    assert!(is_relative_fair_clique(&g, &[0, 1, 2, 3], params(2, 0)));
    // A balanced 2-subset is fair for (1, 0) but not maximal: the other
    // balanced pair extends it.
    assert!(is_fair_and_clique(&g, &[0, 1], params(1, 0)));
    assert!(!is_relative_fair_clique(&g, &[0, 1], params(1, 0)));
}

#[test]
fn weak_fairness_large_delta_only_enforces_k() {
    // The CLI's --weak mode maps to δ = n, dropping the imbalance constraint.
    let g = fixtures::fig1_graph();
    let weak = params(3, g.num_vertices());
    // The full 8-clique (5 a's, 3 b's, imbalance 2) is fair and maximal.
    let all8 = [6, 7, 9, 10, 11, 12, 13, 14];
    assert!(is_fair_and_clique(&g, &all8, weak));
    assert!(is_relative_fair_clique(&g, &all8, weak));
    // Its fair 7-subset is no longer maximal once δ stops binding.
    let fair7 = [6, 7, 9, 10, 11, 12, 13];
    assert!(is_fair_and_clique(&g, &fair7, weak));
    assert!(!is_relative_fair_clique(&g, &fair7, weak));
    // k still binds: only 3 b's exist in the clique, so k = 4 is infeasible.
    assert!(!is_fair_and_clique(&g, &all8, params(4, g.num_vertices())));
}

#[test]
fn non_cliques_are_rejected_regardless_of_fairness() {
    let g = fixtures::fig1_graph();
    // {v1, v2, v9} (ids 0, 1, 8): 0-1 and 1-8 are edges but 0-8 is not; the
    // attribute mix (a, b, b) would be fair for (1, 1).
    assert!(!is_fair_and_clique(&g, &[0, 1, 8], params(1, 1)));
    assert!(!is_relative_fair_clique(&g, &[0, 1, 8], params(1, 1)));
    // A path graph contains no triangle at all.
    let p = fixtures::path_graph(5);
    assert!(!is_fair_and_clique(&p, &[0, 1, 2], params(1, 3)));
}

#[test]
fn duplicate_vertices_are_rejected() {
    let g = fixtures::balanced_clique(4);
    // {0, 1} is fair for (1, 0); padding it with a duplicate must not pass.
    assert!(!is_fair_and_clique(&g, &[0, 1, 0], params(1, 0)));
    assert!(!is_fair_and_clique(&g, &[0, 0], params(1, 0)));
}

#[test]
fn single_attribute_graph_has_no_fair_clique() {
    // All-a triangle: cnt(b) = 0 < k for any k ≥ 1, under any δ.
    let mut b = GraphBuilder::new(3);
    for v in 0..3 {
        b.set_attribute(v, Attribute::A);
    }
    b.add_edges([(0, 1), (1, 2), (0, 2)]);
    let g = b.build().unwrap();
    assert!(!is_fair_and_clique(&g, &[0, 1, 2], params(1, 10)));
}

#[test]
fn comparison_helper_edge_cases() {
    let g = fixtures::balanced_clique(4);
    let fair = [0, 1];
    // A fair clique always dominates the empty candidate.
    assert!(is_at_least_as_large(&g, &fair, &[], params(1, 0)));
    // An unfair claimed set never qualifies, even against an empty candidate.
    assert!(!is_at_least_as_large(&g, &[0], &[], params(1, 0)));
    assert!(!is_at_least_as_large(&g, &[], &[], params(1, 0)));
}
