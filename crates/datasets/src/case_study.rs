//! Case-study graphs mirroring Section VI-C.
//!
//! The paper runs its algorithms on four small real-world attributed graphs (an Aminer
//! collaboration network, a DB+AI co-authorship graph, the NBA player network, and an
//! IMDB collaboration graph) and inspects the returned team. The original data is not
//! redistributable, so each case study here is generated as: a power-law background, a
//! planted "team" (the intended maximum fair clique) with the same size and attribute
//! split as the team reported in Fig. 10, and a couple of smaller planted groups as
//! decoys. Vertex labels are synthesized (`"researcher-17"`, `"player-3"`, …) so the
//! examples can print human-readable teams.

use rfc_graph::{AttributedGraph, VertexId};

use crate::synthetic::{plant_cliques, power_law, PlantedClique, PowerLawConfig};

/// Identifier of a case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseStudy {
    /// Aminer collaboration network: gender-balanced research team (Fig. 10(a):
    /// 13 males + 16 females under `k = 5`, `δ = 3`).
    Aminer,
    /// DBLP DB+AI co-authorship network (Fig. 10(b): 9 DB + 11 AI scholars).
    Dbai,
    /// NBA player relationship network (Fig. 10(c): 7 U.S. + 5 overseas players).
    Nba,
    /// IMDB collaboration network (Fig. 10(d): 6 senior + 4 junior artists).
    Imdb,
}

/// A generated case-study instance.
#[derive(Debug, Clone)]
pub struct CaseStudyGraph {
    /// Which case study this is.
    pub case: CaseStudy,
    /// The attributed graph.
    pub graph: AttributedGraph,
    /// A human-readable label per vertex.
    pub labels: Vec<String>,
    /// Human-readable names of the two attribute values `(a, b)`.
    pub attribute_names: (&'static str, &'static str),
    /// The planted team — the intended maximum fair clique under
    /// [`Self::default_k`] / [`Self::default_delta`].
    pub planted_team: Vec<VertexId>,
    /// The `k` used in the paper's case study.
    pub default_k: usize,
    /// The `δ` used in the paper's case study.
    pub default_delta: usize,
}

impl CaseStudy {
    /// All four case studies in the order of Fig. 10.
    pub const ALL: [CaseStudy; 4] = [
        CaseStudy::Aminer,
        CaseStudy::Dbai,
        CaseStudy::Nba,
        CaseStudy::Imdb,
    ];

    /// The display name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            CaseStudy::Aminer => "Aminer",
            CaseStudy::Dbai => "DBAI",
            CaseStudy::Nba => "NBA",
            CaseStudy::Imdb => "IMDB",
        }
    }

    /// Generates the case-study instance.
    pub fn generate(self) -> CaseStudyGraph {
        let (n, epv, tri, team, decoys, attr_names, label_prefixes, k, delta, seed) = match self {
            CaseStudy::Aminer => (
                800,
                4,
                0.35,
                PlantedClique {
                    count_a: 13,
                    count_b: 16,
                },
                vec![
                    PlantedClique {
                        count_a: 7,
                        count_b: 6,
                    },
                    PlantedClique {
                        count_a: 5,
                        count_b: 4,
                    },
                ],
                ("male", "female"),
                ("scholar", "scholar"),
                5,
                3,
                0xCA5E_0001u64,
            ),
            CaseStudy::Dbai => (
                1_000,
                4,
                0.35,
                PlantedClique {
                    count_a: 9,
                    count_b: 11,
                },
                vec![
                    PlantedClique {
                        count_a: 6,
                        count_b: 5,
                    },
                    PlantedClique {
                        count_a: 5,
                        count_b: 5,
                    },
                ],
                ("DB", "AI"),
                ("db-researcher", "ai-researcher"),
                5,
                3,
                0xCA5E_0002,
            ),
            CaseStudy::Nba => (
                403,
                5,
                0.4,
                PlantedClique {
                    count_a: 7,
                    count_b: 5,
                },
                vec![PlantedClique {
                    count_a: 5,
                    count_b: 4,
                }],
                ("U.S.", "overseas"),
                ("player", "player"),
                5,
                3,
                0xCA5E_0003,
            ),
            // Note: the paper reports the IMDB team as 6 senior + 4 junior artists under
            // k = 5, which does not satisfy its own fairness constraint; we keep the
            // reported team composition and use k = 4 so the planted team is the valid
            // maximum fair clique.
            CaseStudy::Imdb => (
                1_200,
                4,
                0.35,
                PlantedClique {
                    count_a: 6,
                    count_b: 4,
                },
                vec![PlantedClique {
                    count_a: 4,
                    count_b: 4,
                }],
                ("senior", "junior"),
                ("artist", "artist"),
                4,
                3,
                0xCA5E_0004,
            ),
        };
        let config = PowerLawConfig {
            n,
            edges_per_vertex: epv,
            triangle_prob: tri,
            prob_a: 0.5,
        };
        let background = power_law(&config, seed);
        let mut cliques = vec![team];
        cliques.extend(decoys);
        let (graph, planted) = plant_cliques(&background, &cliques, seed.wrapping_add(1));
        let labels = (0..n)
            .map(|v| {
                let prefix = if graph.attribute(v as VertexId) == rfc_graph::Attribute::A {
                    label_prefixes.0
                } else {
                    label_prefixes.1
                };
                format!("{prefix}-{v}")
            })
            .collect();
        CaseStudyGraph {
            case: self,
            graph,
            labels,
            attribute_names: attr_names,
            planted_team: planted[0].clone(),
            default_k: k,
            default_delta: delta,
        }
    }
}

impl CaseStudyGraph {
    /// The label of a vertex.
    pub fn label(&self, v: VertexId) -> &str {
        &self.labels[v as usize]
    }

    /// The human-readable attribute name of a vertex.
    pub fn attribute_name(&self, v: VertexId) -> &'static str {
        if self.graph.attribute(v) == rfc_graph::Attribute::A {
            self.attribute_names.0
        } else {
            self.attribute_names.1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_case_studies_have_valid_planted_teams() {
        for case in CaseStudy::ALL {
            let cs = case.generate();
            assert!(cs.graph.is_clique(&cs.planted_team), "{}", case.name());
            let counts = cs.graph.attribute_counts_of(&cs.planted_team);
            assert!(counts.min() >= cs.default_k);
            assert!(counts.imbalance() <= cs.default_delta);
            assert_eq!(cs.labels.len(), cs.graph.num_vertices());
        }
    }

    #[test]
    fn team_sizes_match_the_paper() {
        assert_eq!(CaseStudy::Aminer.generate().planted_team.len(), 29);
        assert_eq!(CaseStudy::Dbai.generate().planted_team.len(), 20);
        assert_eq!(CaseStudy::Nba.generate().planted_team.len(), 12);
        assert_eq!(CaseStudy::Imdb.generate().planted_team.len(), 10);
    }

    #[test]
    fn labels_reflect_attributes() {
        let cs = CaseStudy::Dbai.generate();
        for v in cs.graph.vertices().take(50) {
            let label = cs.label(v);
            match cs.graph.attribute(v) {
                rfc_graph::Attribute::A => assert!(label.starts_with("db-researcher")),
                rfc_graph::Attribute::B => assert!(label.starts_with("ai-researcher")),
            }
        }
        assert_eq!(
            cs.attribute_name(cs.planted_team[0]),
            cs.attribute_name(cs.planted_team[0])
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CaseStudy::Nba.generate();
        let b = CaseStudy::Nba.generate();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.planted_team, b.planted_team);
    }
}
