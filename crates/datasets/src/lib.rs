//! # rfc-datasets — workloads for the maximum fair clique experiments
//!
//! The paper evaluates on six real-world graphs (Table I) with up to 44.6 million edges
//! plus four case-study graphs assembled from external sources. Those raw datasets are
//! not redistributable here and full-size runs exceed a laptop budget, so this crate
//! provides **seeded synthetic analogs** that preserve the behaviours the experiments
//! measure:
//!
//! * [`synthetic`] — building blocks: Erdős–Rényi and preferential-attachment
//!   (power-law) generators with triadic closure, random attribute assignment, and
//!   planted attributed cliques.
//! * [`paper`] — one scaled-down analog per Table-I dataset (Themarker, Google, DBLP,
//!   Flixster, Pokec, Aminer), each a power-law background with planted fair cliques and
//!   the same parameter ranges (`k`, `δ`) as the paper's experiments.
//! * [`case_study`] — small named graphs mirroring the four case studies of Section VI-C
//!   (collaboration, DB+AI co-authorship, NBA, IMDB) with a planted "team" that the
//!   maximum fair clique search should recover.
//! * [`scaling`] — the 20%–100% vertex/edge subsampling used by the scalability test
//!   (Fig. 9).
//! * [`updates`] — deterministic update streams (grow-only, churn, adversarial
//!   delete-the-incumbent) for the dynamic-graph subsystem and the `maxfairclique
//!   update` subcommand.
//!
//! Every generator takes an explicit seed, so workloads are fully reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod paper;
pub mod scale;
pub mod scaling;
pub mod synthetic;
pub mod updates;

pub use paper::{DatasetSpec, PaperDataset};
