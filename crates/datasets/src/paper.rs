//! Scaled-down analogs of the six datasets of Table I.
//!
//! | dataset | paper size (n, m) | analog size | attribute source |
//! |---|---|---|---|
//! | Themarker | 69 K, 3.29 M | 3 K, ~45 K | random 50/50 |
//! | Google | 876 K, 8.64 M | 6 K, ~40 K | random 50/50 |
//! | DBLP | 1.84 M, 16.7 M | 8 K, ~52 K | random 50/50 |
//! | Flixster | 2.52 M, 15.8 M | 8 K, ~42 K | random 50/50 |
//! | Pokec | 1.63 M, 44.6 M | 7 K, ~78 K | random 50/50 |
//! | Aminer | 423 K, 2.46 M | 4 K, ~27 K | 55/45 gender-like skew |
//!
//! Each analog is a seeded power-law background (preferential attachment with triadic
//! closure) with several planted attributed cliques, the largest of which plays the role
//! of the dataset's maximum fair clique. The parameter ranges (`k`, `δ`) mirror the
//! paper's experimental setup for the corresponding dataset. Absolute sizes and runtimes
//! are therefore *not* comparable to the paper's testbed, but the qualitative behaviour
//! (reduction ratios vs `k`, relative algorithm rankings, runtime trends) is — see
//! EXPERIMENTS.md.

use rfc_graph::{AttributedGraph, VertexId};

use crate::synthetic::{
    add_dense_community, plant_cliques_in_pool, power_law, DenseCommunity, PlantedClique,
    PowerLawConfig,
};

/// Identifier of one of the six Table-I dataset analogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Themarker social network analog.
    Themarker,
    /// Google web graph analog.
    Google,
    /// DBLP collaboration network analog.
    Dblp,
    /// Flixster social network analog.
    Flixster,
    /// Pokec social network analog.
    Pokec,
    /// Aminer collaboration network analog (gender-skewed attributes).
    Aminer,
}

/// The full description of a dataset analog.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables and figures.
    pub name: &'static str,
    /// One-line description (matches Table I's "Description" column).
    pub description: &'static str,
    /// Vertex count of the *original* dataset (Table I).
    pub paper_vertices: usize,
    /// Edge count of the *original* dataset (Table I).
    pub paper_edges: usize,
    /// Vertex count of the analog.
    pub n: usize,
    /// Preferential-attachment edges per vertex of the analog background.
    pub edges_per_vertex: usize,
    /// Triadic-closure probability of the analog background.
    pub triangle_prob: f64,
    /// Probability of attribute `a`.
    pub prob_a: f64,
    /// Dense community embedded in the background. The largest planted clique lives
    /// inside it, surrounded by many overlapping near-maximum cliques — this is what
    /// gives the branch-and-bound search realistic work after the reductions.
    pub community: DenseCommunity,
    /// Cliques planted into the graph (largest first). The first clique is planted
    /// inside the dense community; the rest go into the remaining background.
    pub planted: Vec<PlantedClique>,
    /// Range of `k` swept in the experiments (inclusive), matching the paper.
    pub k_range: (usize, usize),
    /// Default `k` when `δ` is varied.
    pub default_k: usize,
    /// Range of `δ` swept in the experiments (inclusive).
    pub delta_range: (usize, usize),
    /// Default `δ` when `k` is varied.
    pub default_delta: usize,
    /// Generation seed (background and planting derive distinct sub-seeds from it).
    pub seed: u64,
}

impl DatasetSpec {
    /// The `k` values swept for this dataset (as in Fig. 4–7 and Table II).
    pub fn k_values(&self) -> Vec<usize> {
        (self.k_range.0..=self.k_range.1).collect()
    }

    /// The `δ` values swept for this dataset.
    pub fn delta_values(&self) -> Vec<usize> {
        (self.delta_range.0..=self.delta_range.1).collect()
    }

    /// Generates the analog graph.
    pub fn generate(&self) -> AttributedGraph {
        self.generate_with_ground_truth().0
    }

    /// Generates the analog graph together with the planted clique vertex sets
    /// (largest planted clique first).
    pub fn generate_with_ground_truth(&self) -> (AttributedGraph, Vec<Vec<VertexId>>) {
        let config = PowerLawConfig {
            n: self.n,
            edges_per_vertex: self.edges_per_vertex,
            triangle_prob: self.triangle_prob,
            prob_a: self.prob_a,
        };
        let background = power_law(&config, self.seed);
        // Embed the dense community.
        let (with_community, members) =
            add_dense_community(&background, &self.community, self.seed.wrapping_add(0x5eed));
        // Plant the largest clique inside the community, on its best-connected members:
        // in real networks the largest cohesive team sits on the most central vertices
        // of its community, which is also what makes it discoverable by the
        // degree-driven heuristics. The remaining (decoy) cliques go outside the
        // community.
        let mut top_members = members.clone();
        top_members.sort_unstable_by(|&a, &b| {
            background
                .degree(b)
                .cmp(&background.degree(a))
                .then(a.cmp(&b))
        });
        top_members.truncate(self.planted[0].size() + 5);
        let mut planted_sets = Vec::with_capacity(self.planted.len());
        let (graph, inside) = plant_cliques_in_pool(
            &with_community,
            &self.planted[..1],
            &top_members,
            self.seed.wrapping_add(0x9e37_79b9),
        );
        planted_sets.extend(inside);
        let member_set: std::collections::HashSet<VertexId> = members.iter().copied().collect();
        let outside_pool: Vec<VertexId> = graph
            .vertices()
            .filter(|v| !member_set.contains(v))
            .collect();
        let (graph, outside) = plant_cliques_in_pool(
            &graph,
            &self.planted[1..],
            &outside_pool,
            self.seed.wrapping_add(0x0bad_cafe),
        );
        planted_sets.extend(outside);
        (graph, planted_sets)
    }
}

impl PaperDataset {
    /// All six datasets, in the order the paper lists them.
    pub const ALL: [PaperDataset; 6] = [
        PaperDataset::Themarker,
        PaperDataset::Google,
        PaperDataset::Dblp,
        PaperDataset::Flixster,
        PaperDataset::Pokec,
        PaperDataset::Aminer,
    ];

    /// The dataset's display name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// The analog specification for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            PaperDataset::Themarker => DatasetSpec {
                name: "Themarker",
                description: "Social network",
                paper_vertices: 69_414,
                paper_edges: 3_289_686,
                n: 3_000,
                edges_per_vertex: 10,
                triangle_prob: 0.4,
                prob_a: 0.5,
                community: DenseCommunity {
                    size: 170,
                    edge_prob: 0.5,
                },
                planted: vec![
                    PlantedClique {
                        count_a: 14,
                        count_b: 13,
                    },
                    PlantedClique {
                        count_a: 9,
                        count_b: 8,
                    },
                    PlantedClique {
                        count_a: 7,
                        count_b: 5,
                    },
                    PlantedClique {
                        count_a: 4,
                        count_b: 4,
                    },
                ],
                k_range: (2, 6),
                default_k: 6,
                delta_range: (1, 5),
                default_delta: 3,
                seed: 0x7161_0001,
            },
            PaperDataset::Google => DatasetSpec {
                name: "Google",
                description: "Web network",
                paper_vertices: 875_713,
                paper_edges: 8_644_102,
                n: 6_000,
                edges_per_vertex: 5,
                triangle_prob: 0.3,
                prob_a: 0.5,
                community: DenseCommunity {
                    size: 160,
                    edge_prob: 0.5,
                },
                planted: vec![
                    PlantedClique {
                        count_a: 16,
                        count_b: 15,
                    },
                    PlantedClique {
                        count_a: 10,
                        count_b: 9,
                    },
                    PlantedClique {
                        count_a: 6,
                        count_b: 6,
                    },
                ],
                k_range: (5, 9),
                default_k: 7,
                delta_range: (1, 5),
                default_delta: 4,
                seed: 0x7161_0002,
            },
            PaperDataset::Dblp => DatasetSpec {
                name: "DBLP",
                description: "Collaboration network",
                paper_vertices: 1_843_615,
                paper_edges: 16_700_518,
                n: 8_000,
                edges_per_vertex: 5,
                triangle_prob: 0.3,
                prob_a: 0.5,
                community: DenseCommunity {
                    size: 130,
                    edge_prob: 0.5,
                },
                planted: vec![
                    PlantedClique {
                        count_a: 10,
                        count_b: 9,
                    },
                    PlantedClique {
                        count_a: 8,
                        count_b: 7,
                    },
                    PlantedClique {
                        count_a: 5,
                        count_b: 5,
                    },
                ],
                k_range: (5, 9),
                default_k: 7,
                delta_range: (1, 5),
                default_delta: 4,
                seed: 0x7161_0003,
            },
            PaperDataset::Flixster => DatasetSpec {
                name: "Flixster",
                description: "Social network",
                paper_vertices: 2_523_387,
                paper_edges: 15_837_602,
                n: 8_000,
                edges_per_vertex: 4,
                triangle_prob: 0.3,
                prob_a: 0.5,
                community: DenseCommunity {
                    size: 140,
                    edge_prob: 0.5,
                },
                planted: vec![
                    PlantedClique {
                        count_a: 13,
                        count_b: 11,
                    },
                    PlantedClique {
                        count_a: 8,
                        count_b: 8,
                    },
                    PlantedClique {
                        count_a: 5,
                        count_b: 4,
                    },
                ],
                k_range: (2, 6),
                default_k: 3,
                delta_range: (1, 5),
                default_delta: 3,
                seed: 0x7161_0004,
            },
            PaperDataset::Pokec => DatasetSpec {
                name: "Pokec",
                description: "Social network",
                paper_vertices: 1_632_803,
                paper_edges: 44_603_928,
                n: 7_000,
                edges_per_vertex: 8,
                triangle_prob: 0.4,
                prob_a: 0.5,
                community: DenseCommunity {
                    size: 170,
                    edge_prob: 0.5,
                },
                planted: vec![
                    PlantedClique {
                        count_a: 15,
                        count_b: 13,
                    },
                    PlantedClique {
                        count_a: 10,
                        count_b: 10,
                    },
                    PlantedClique {
                        count_a: 7,
                        count_b: 6,
                    },
                ],
                k_range: (3, 7),
                default_k: 4,
                delta_range: (1, 5),
                default_delta: 4,
                seed: 0x7161_0005,
            },
            PaperDataset::Aminer => DatasetSpec {
                name: "Aminer",
                description: "Collaboration network",
                paper_vertices: 423_469,
                paper_edges: 2_462_224,
                n: 4_000,
                edges_per_vertex: 5,
                triangle_prob: 0.35,
                prob_a: 0.55,
                community: DenseCommunity {
                    size: 130,
                    edge_prob: 0.5,
                },
                planted: vec![
                    PlantedClique {
                        count_a: 16,
                        count_b: 14,
                    },
                    PlantedClique {
                        count_a: 9,
                        count_b: 9,
                    },
                    PlantedClique {
                        count_a: 6,
                        count_b: 5,
                    },
                ],
                k_range: (4, 8),
                default_k: 6,
                delta_range: (1, 5),
                default_delta: 4,
                seed: 0x7161_0006,
            },
        }
    }

    /// Generates the analog graph for this dataset.
    pub fn generate(self) -> AttributedGraph {
        self.spec().generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_consistent() {
        for ds in PaperDataset::ALL {
            let spec = ds.spec();
            assert!(spec.n >= 1_000, "{}: analog too small", spec.name);
            assert!(spec.k_range.0 <= spec.default_k && spec.default_k <= spec.k_range.1);
            assert!(
                spec.delta_range.0 <= spec.default_delta
                    && spec.default_delta <= spec.delta_range.1
            );
            // The largest planted clique must be able to host a fair clique at the
            // largest swept k.
            let largest = &spec.planted[0];
            let k_max = spec.k_range.1;
            assert!(
                largest.count_a.min(largest.count_b) >= k_max,
                "{}: planted clique too small for k = {k_max}",
                spec.name
            );
            assert_eq!(
                spec.k_values().len(),
                5,
                "{}: paper sweeps 5 k values",
                spec.name
            );
            assert_eq!(spec.delta_values(), vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PaperDataset::Themarker.spec();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn planted_ground_truth_is_valid() {
        // Use the two smallest analogs to keep the test fast.
        for ds in [PaperDataset::Themarker, PaperDataset::Aminer] {
            let spec = ds.spec();
            let (g, planted) = spec.generate_with_ground_truth();
            assert_eq!(planted.len(), spec.planted.len());
            for (set, expected) in planted.iter().zip(spec.planted.iter()) {
                assert_eq!(set.len(), expected.size());
                assert!(
                    g.is_clique(set),
                    "{}: planted set is not a clique",
                    spec.name
                );
                let counts = g.attribute_counts_of(set);
                assert_eq!(counts.a(), expected.count_a);
                assert_eq!(counts.b(), expected.count_b);
            }
        }
    }

    #[test]
    fn analog_sizes_are_in_expected_ballpark() {
        let spec = PaperDataset::Themarker.spec();
        let g = spec.generate();
        assert_eq!(g.num_vertices(), spec.n);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 10.0, "Themarker analog too sparse: avg degree {avg}");
        // Aminer keeps its attribute skew.
        let am = PaperDataset::Aminer.spec().generate();
        let counts = am.attribute_counts();
        assert!(counts.a() > counts.b(), "Aminer analog should be a-skewed");
    }
}
