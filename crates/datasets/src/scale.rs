//! Streaming generators for the million-vertex scale tier.
//!
//! [`generate_scale_rfcg`] writes a power-law (preferential-attachment) background
//! with a planted balanced fair clique **straight to a `.rfcg` file** through
//! [`EdgeSpool`], so the full graph is never resident: generation holds one `u32`
//! degree counter per vertex, the attribute vector, and a bounded endpoint
//! *reservoir* that replaces the classic Barabási–Albert `targets` multiset (the
//! multiset grows as `O(2m)`; reservoir sampling over the same endpoint stream
//! keeps an approximately degree-proportional sample at fixed size).
//!
//! The planted clique occupies the **highest `2 × planted_half` vertex ids**, with
//! exactly `planted_half` members per attribute. Background attachment never
//! targets planted vertices, so clique edges cannot collide with background edges
//! and the spool stays duplicate-free; planted vertices still attach *to* the
//! background, keeping the graph connected.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfc_graph::disk::{CsrSummary, EdgeSpool, RfcgError};
use rfc_graph::{Attribute, VertexId};

use std::path::Path;

/// Parameters for [`generate_scale_rfcg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Total number of vertices (background + planted block).
    pub num_vertices: usize,
    /// Background edges each non-seed vertex attaches with (Barabási–Albert `m`).
    pub edges_per_vertex: usize,
    /// Probability a background vertex gets attribute `a`.
    pub prob_a: f64,
    /// Half-size of the planted clique: the clique has this many vertices of each
    /// attribute (`0` plants nothing).
    pub planted_half: usize,
    /// Size of the endpoint reservoir approximating preferential attachment.
    pub reservoir: usize,
    /// Neighbor-entry budget per assembly chunk (bounds assembly memory at
    /// ~`4 × chunk_entries` bytes).
    pub chunk_entries: usize,
}

impl ScaleConfig {
    /// A balanced power-law instance with sensible scale-tier defaults: average
    /// degree `2 × edges_per_vertex = 12`, a planted 20-vertex fair clique, a
    /// 64Ki endpoint reservoir and ~64MB assembly chunks.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges_per_vertex: 6,
            prob_a: 0.5,
            planted_half: 10,
            reservoir: 1 << 16,
            chunk_entries: 16 << 20,
        }
    }

    /// Returns this config with a different planted half-size.
    pub fn with_planted_half(mut self, planted_half: usize) -> Self {
        self.planted_half = planted_half;
        self
    }

    /// Returns this config with a different attribute-`a` probability.
    pub fn with_prob_a(mut self, prob_a: f64) -> Self {
        self.prob_a = prob_a;
        self
    }
}

/// What [`generate_scale_rfcg`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleGraphSummary {
    /// Counts of the written `.rfcg` file.
    pub csr: CsrSummary,
    /// Ids of the planted clique (the highest `2 × planted_half` ids, ascending;
    /// empty when nothing was planted). The clique is balanced: `planted_half`
    /// vertices of each attribute.
    pub planted: Vec<VertexId>,
}

/// Generates a power-law background with a planted balanced fair clique and writes
/// it to `out` as a `.rfcg` file, never materializing the graph in memory.
///
/// Deterministic in `(config, seed)`. Errors surface as [`RfcgError`] (I/O or a
/// config that cannot be satisfied, e.g. a planted block larger than the graph).
pub fn generate_scale_rfcg<P: AsRef<Path>>(
    config: &ScaleConfig,
    seed: u64,
    out: P,
) -> Result<ScaleGraphSummary, RfcgError> {
    let n = config.num_vertices;
    let planted_size = 2 * config.planted_half;
    if planted_size > n {
        return Err(RfcgError::Format(format!(
            "planted clique of {planted_size} vertices does not fit in {n} vertices"
        )));
    }
    let background = n - planted_size;
    if planted_size > 0 && background == 0 && planted_size < 2 {
        return Err(RfcgError::Format("degenerate planted block".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Attributes: random for the background, exactly balanced (alternating) for
    // the planted block.
    let mut attrs: Vec<Attribute> = Vec::with_capacity(n);
    let prob_a = config.prob_a.clamp(0.0, 1.0);
    for _ in 0..background {
        attrs.push(if rng.gen_bool(prob_a) {
            Attribute::A
        } else {
            Attribute::B
        });
    }
    for i in 0..planted_size {
        attrs.push(if i % 2 == 0 {
            Attribute::A
        } else {
            Attribute::B
        });
    }

    let mut spool = EdgeSpool::temp(n)?;

    // Endpoint reservoir: a bounded, approximately degree-proportional sample of
    // background endpoints. `endpoints_seen` counts the stream the reservoir
    // subsamples.
    let cap = config.reservoir.max(1);
    let mut reservoir: Vec<VertexId> = Vec::with_capacity(cap);
    let mut endpoints_seen: u64 = 0;
    let mut observe = |reservoir: &mut Vec<VertexId>, rng: &mut StdRng, v: VertexId| {
        endpoints_seen += 1;
        if reservoir.len() < cap {
            reservoir.push(v);
        } else if rng.gen_range(0..endpoints_seen) < cap as u64 {
            let slot = rng.gen_range(0..cap);
            reservoir[slot] = v;
        }
    };

    // Background: vertex u attaches to `edges_per_vertex` distinct earlier
    // background vertices sampled from the reservoir (seed vertices attach to all
    // predecessors). Planted vertices attach too — to background targets only —
    // so the planted block stays connected to the rest.
    let mut targets: Vec<VertexId> = Vec::new();
    for u in 1..n as VertexId {
        let pool = background.min(u as usize);
        if pool == 0 {
            continue; // first vertex of an all-planted graph
        }
        let want = config.edges_per_vertex.min(pool);
        targets.clear();
        if pool <= config.edges_per_vertex {
            targets.extend(0..pool as VertexId);
        } else {
            // Rejection-sample distinct targets; the reservoir is much larger
            // than `want`, so a bounded number of draws suffices.
            let mut attempts = 0usize;
            while targets.len() < want && attempts < 64 * want {
                attempts += 1;
                let t = reservoir[rng.gen_range(0..reservoir.len())];
                if t < u && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            // Fall back to uniform ids for any slots rejection sampling missed
            // (possible early on, when the reservoir is still tiny).
            while targets.len() < want {
                let t = rng.gen_range(0..pool) as VertexId;
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        for &t in &targets {
            spool.push_edge(u, t)?;
            observe(&mut reservoir, &mut rng, t);
            if (u as usize) < background {
                observe(&mut reservoir, &mut rng, u);
            }
        }
    }

    // Planted clique on the highest ids: all pairs, no background collisions
    // possible because background targets are always < `background`.
    let planted: Vec<VertexId> = (background..n).map(|v| v as VertexId).collect();
    for (i, &u) in planted.iter().enumerate() {
        for &v in &planted[i + 1..] {
            spool.push_edge(u, v)?;
        }
    }

    let csr = spool.assemble(&attrs, out, config.chunk_entries)?;
    Ok(ScaleGraphSummary { csr, planted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::disk::DiskCsr;
    use rfc_graph::store::GraphStore;

    fn temp_out(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rfc_scale_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    #[test]
    fn generator_is_deterministic_and_plants_the_clique() {
        let config = ScaleConfig {
            num_vertices: 2_000,
            edges_per_vertex: 4,
            prob_a: 0.5,
            planted_half: 4,
            reservoir: 512,
            chunk_entries: 1 << 12,
        };
        let p1 = temp_out("det1.rfcg");
        let p2 = temp_out("det2.rfcg");
        let s1 = generate_scale_rfcg(&config, 7, &p1).unwrap();
        let s2 = generate_scale_rfcg(&config, 7, &p2).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        assert_eq!(s1.planted.len(), 8);

        let store = DiskCsr::open(&p1).unwrap();
        assert_eq!(store.num_vertices(), 2_000);
        assert_eq!(store.num_edges(), s1.csr.num_edges);
        // The planted block is a balanced clique.
        let g = store.to_graph().unwrap();
        let mut a = 0;
        for (i, &u) in s1.planted.iter().enumerate() {
            if g.attribute(u) == Attribute::A {
                a += 1;
            }
            for &v in &s1.planted[i + 1..] {
                assert!(g.has_edge(u, v), "missing planted edge ({u}, {v})");
            }
        }
        assert_eq!(a, 4);
        // Planted vertices are wired into the background too.
        assert!(s1
            .planted
            .iter()
            .any(|&u| g.neighbors(u).iter().any(|&v| (v as usize) < 2_000 - 8)));
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn different_seeds_differ_and_skew_shifts_attributes() {
        let config = ScaleConfig {
            num_vertices: 500,
            edges_per_vertex: 3,
            prob_a: 0.9,
            planted_half: 0,
            reservoir: 128,
            chunk_entries: 1 << 12,
        };
        let p1 = temp_out("seed1.rfcg");
        let p2 = temp_out("seed2.rfcg");
        generate_scale_rfcg(&config, 1, &p1).unwrap();
        generate_scale_rfcg(&config, 2, &p2).unwrap();
        assert_ne!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        let store = DiskCsr::open(&p1).unwrap();
        let counts = store.attribute_counts();
        assert!(counts.a() > counts.b(), "prob_a=0.9 should skew toward a");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn oversized_planted_block_is_rejected() {
        let config = ScaleConfig {
            num_vertices: 10,
            edges_per_vertex: 2,
            prob_a: 0.5,
            planted_half: 6,
            reservoir: 16,
            chunk_entries: 1 << 10,
        };
        assert!(matches!(
            generate_scale_rfcg(&config, 0, temp_out("reject.rfcg")),
            Err(RfcgError::Format(_))
        ));
    }
}
