//! Subsampled workloads for the scalability test (Fig. 9).
//!
//! The paper evaluates scalability by running the search algorithms on subgraphs
//! containing 20%–100% of a dataset's vertices (resp. edges). These helpers produce
//! those subgraphs deterministically.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rfc_graph::subgraph::{edge_filtered_subgraph, induced_subgraph};
use rfc_graph::{AttributedGraph, EdgeId, VertexId};

/// The sampling fractions used by Fig. 9.
pub const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Keeps a random `fraction` of the vertices (and the edges among them). Vertex ids are
/// re-compacted; the returned graph is independent of the original id space.
pub fn sample_vertices(g: &AttributedGraph, fraction: f64, seed: u64) -> AttributedGraph {
    let fraction = fraction.clamp(0.0, 1.0);
    let n = g.num_vertices();
    let keep = ((n as f64) * fraction).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vertices: Vec<VertexId> = g.vertices().collect();
    vertices.shuffle(&mut rng);
    vertices.truncate(keep);
    induced_subgraph(g, &vertices).graph
}

/// Keeps a random `fraction` of the edges (all vertices are retained, so the vertex-id
/// space is unchanged).
pub fn sample_edges(g: &AttributedGraph, fraction: f64, seed: u64) -> AttributedGraph {
    let fraction = fraction.clamp(0.0, 1.0);
    let m = g.num_edges();
    let keep = ((m as f64) * fraction).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edge_ids: Vec<EdgeId> = (0..m as EdgeId).collect();
    edge_ids.shuffle(&mut rng);
    edge_ids.truncate(keep);
    let mut alive = vec![false; m];
    for e in edge_ids {
        alive[e as usize] = true;
    }
    edge_filtered_subgraph(g, &alive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::erdos_renyi;

    #[test]
    fn vertex_sampling_sizes() {
        let g = erdos_renyi(500, 0.05, 0.5, 1);
        for &f in &FRACTIONS {
            let s = sample_vertices(&g, f, 7);
            assert_eq!(s.num_vertices(), (500.0 * f).round() as usize);
        }
        // 100% keeps everything (possibly relabeled, but same size).
        let full = sample_vertices(&g, 1.0, 7);
        assert_eq!(full.num_edges(), g.num_edges());
    }

    #[test]
    fn edge_sampling_sizes() {
        let g = erdos_renyi(300, 0.05, 0.5, 2);
        for &f in &FRACTIONS {
            let s = sample_edges(&g, f, 9);
            assert_eq!(s.num_edges(), ((g.num_edges() as f64) * f).round() as usize);
            assert_eq!(s.num_vertices(), g.num_vertices());
        }
    }

    #[test]
    fn sampling_is_deterministic_and_monotone_in_fraction() {
        let g = erdos_renyi(400, 0.03, 0.5, 3);
        assert_eq!(sample_vertices(&g, 0.5, 11), sample_vertices(&g, 0.5, 11));
        assert_eq!(sample_edges(&g, 0.5, 11), sample_edges(&g, 0.5, 11));
        let e20 = sample_edges(&g, 0.2, 11).num_edges();
        let e80 = sample_edges(&g, 0.8, 11).num_edges();
        assert!(e20 < e80);
    }

    #[test]
    fn extreme_fractions() {
        let g = erdos_renyi(100, 0.1, 0.5, 4);
        assert_eq!(sample_vertices(&g, 0.0, 5).num_vertices(), 0);
        assert_eq!(sample_edges(&g, 0.0, 5).num_edges(), 0);
        // Out-of-range fractions are clamped.
        assert_eq!(sample_edges(&g, 1.7, 5).num_edges(), g.num_edges());
    }
}
