//! Random-graph building blocks: Erdős–Rényi, power-law backgrounds, attribute
//! assignment and planted attributed cliques.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rfc_graph::{Attribute, AttributedGraph, GraphBuilder, VertexId};

/// Assigns each vertex attribute `a` with probability `prob_a` (and `b` otherwise),
/// mirroring the paper's "randomly assigning attributes to vertices with approximately
/// equal probability" for the non-attributed datasets.
pub fn random_attributes(n: usize, prob_a: f64, rng: &mut StdRng) -> Vec<Attribute> {
    (0..n)
        .map(|_| {
            if rng.gen_bool(prob_a.clamp(0.0, 1.0)) {
                Attribute::A
            } else {
                Attribute::B
            }
        })
        .collect()
}

/// Erdős–Rényi `G(n, p)` graph with random attributes (`prob_a` chance of `a`).
pub fn erdos_renyi(n: usize, p: f64, prob_a: f64, seed: u64) -> AttributedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let attrs = random_attributes(n, prob_a, &mut rng);
    let mut builder = GraphBuilder::with_attributes(attrs);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p) {
                builder.add_edge(u, v);
            }
        }
    }
    builder.build().expect("generated edges are in range")
}

/// Parameters of the power-law (preferential-attachment) background generator.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub n: usize,
    /// Edges attached from each new vertex to existing vertices (Barabási–Albert `m`).
    pub edges_per_vertex: usize,
    /// Probability that, for each attached edge, an additional triangle-closing edge is
    /// added between the new vertex and a neighbor of the chosen endpoint. Triadic
    /// closure gives the background realistic clustering so the colorful-support
    /// reductions have triangles to reason about.
    pub triangle_prob: f64,
    /// Probability that a vertex gets attribute `a`.
    pub prob_a: f64,
}

/// Generates a power-law graph by preferential attachment with triadic closure.
///
/// The degree distribution is heavy-tailed like the paper's social/web/collaboration
/// networks; `triangle_prob` controls clustering.
pub fn power_law(config: &PowerLawConfig, seed: u64) -> AttributedGraph {
    let PowerLawConfig {
        n,
        edges_per_vertex,
        triangle_prob,
        prob_a,
    } = *config;
    let mut rng = StdRng::seed_from_u64(seed);
    let attrs = random_attributes(n, prob_a, &mut rng);
    let mut builder = GraphBuilder::with_attributes(attrs);

    // `targets` holds one entry per edge endpoint, so sampling uniformly from it is
    // degree-proportional sampling (the standard BA trick).
    let m0 = edges_per_vertex.max(1);
    let mut targets: Vec<VertexId> = Vec::new();
    let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let seed_size = (m0 + 1).min(n);
    // Seed clique connecting the first few vertices.
    for u in 0..seed_size as VertexId {
        for v in (u + 1)..seed_size as VertexId {
            builder.add_edge(u, v);
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
            targets.push(u);
            targets.push(v);
        }
    }
    for v in seed_size as VertexId..n as VertexId {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m0);
        let mut guard = 0;
        while chosen.len() < m0 && guard < 20 * m0 {
            guard += 1;
            let candidate = if targets.is_empty() {
                rng.gen_range(0..v)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if candidate != v && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &u in &chosen {
            builder.add_edge(v, u);
            targets.push(v);
            targets.push(u);
            adjacency[v as usize].push(u);
            adjacency[u as usize].push(v);
            // Triadic closure: also connect to a random neighbor of u.
            if rng.gen_bool(triangle_prob) && !adjacency[u as usize].is_empty() {
                let w = adjacency[u as usize][rng.gen_range(0..adjacency[u as usize].len())];
                if w != v {
                    builder.add_edge(v, w);
                    targets.push(v);
                    targets.push(w);
                    adjacency[v as usize].push(w);
                    adjacency[w as usize].push(v);
                }
            }
        }
    }
    builder.build().expect("generated edges are in range")
}

/// Description of a dense Erdős–Rényi community to embed into a background graph.
///
/// Real social and collaboration networks contain dense, overlapping communities in
/// which the maximum (fair) clique hides among many near-maximum cliques; this is what
/// makes the branch-and-bound search non-trivial. The paper's dataset analogs embed one
/// such community and plant their largest fair clique inside it.
#[derive(Debug, Clone, Copy)]
pub struct DenseCommunity {
    /// Number of vertices participating in the community.
    pub size: usize,
    /// Probability of an edge between any two community members.
    pub edge_prob: f64,
}

/// Adds a dense community to `background`: the `community.size` *highest-degree*
/// vertices are selected (real networks grow their dense cores around their hubs) and
/// every pair among them is connected with probability `community.edge_prob`
/// (attributes are left untouched). Returns the new graph and the community members
/// (sorted).
pub fn add_dense_community(
    background: &AttributedGraph,
    community: &DenseCommunity,
    seed: u64,
) -> (AttributedGraph, Vec<VertexId>) {
    let n = background.num_vertices();
    assert!(
        community.size <= n,
        "community of {} vertices does not fit a graph with {n} vertices",
        community.size
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.sort_unstable_by(|&a, &b| {
        background
            .degree(b)
            .cmp(&background.degree(a))
            .then(a.cmp(&b))
    });
    let mut pool: Vec<VertexId> = by_degree.into_iter().take(community.size).collect();
    pool.sort_unstable();

    let mut edges: Vec<(VertexId, VertexId)> = background.edge_list().to_vec();
    for (i, &u) in pool.iter().enumerate() {
        for &v in &pool[i + 1..] {
            if rng.gen_bool(community.edge_prob.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    let mut builder = GraphBuilder::with_attributes(background.attributes().to_vec());
    builder.add_edges(edges);
    (builder.build().expect("community edges are in range"), pool)
}

/// Description of a clique to plant into a background graph.
#[derive(Debug, Clone, Copy)]
pub struct PlantedClique {
    /// Number of vertices with attribute `a` in the planted clique.
    pub count_a: usize,
    /// Number of vertices with attribute `b`.
    pub count_b: usize,
}

impl PlantedClique {
    /// Total planted clique size.
    pub fn size(&self) -> usize {
        self.count_a + self.count_b
    }
}

/// Plants the given cliques into `background`: for each clique, a random set of distinct
/// vertices is selected (disjoint across cliques), their attributes are overwritten to
/// match the requested counts, and all pairwise edges are added.
///
/// Returns the resulting graph and, for each planted clique, its vertex set.
pub fn plant_cliques(
    background: &AttributedGraph,
    cliques: &[PlantedClique],
    seed: u64,
) -> (AttributedGraph, Vec<Vec<VertexId>>) {
    let pool: Vec<VertexId> = (0..background.num_vertices() as VertexId).collect();
    plant_cliques_in_pool(background, cliques, &pool, seed)
}

/// Like [`plant_cliques`], but clique members are drawn only from the given `pool` of
/// vertices (used to hide the largest planted clique inside a dense community).
pub fn plant_cliques_in_pool(
    background: &AttributedGraph,
    cliques: &[PlantedClique],
    pool: &[VertexId],
    seed: u64,
) -> (AttributedGraph, Vec<Vec<VertexId>>) {
    let n = pool.len();
    let total: usize = cliques.iter().map(|c| c.size()).sum();
    assert!(
        total <= n,
        "cannot plant {total} clique vertices into a pool with {n} vertices"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<VertexId> = pool.to_vec();
    pool.shuffle(&mut rng);

    let mut attrs = background.attributes().to_vec();
    let mut builder_edges: Vec<(VertexId, VertexId)> = background.edge_list().to_vec();
    let mut planted_sets = Vec::with_capacity(cliques.len());
    let mut cursor = 0usize;
    for clique in cliques {
        let members: Vec<VertexId> = pool[cursor..cursor + clique.size()].to_vec();
        cursor += clique.size();
        for (i, &v) in members.iter().enumerate() {
            attrs[v as usize] = if i < clique.count_a {
                Attribute::A
            } else {
                Attribute::B
            };
        }
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                builder_edges.push((u, v));
            }
        }
        let mut sorted = members;
        sorted.sort_unstable();
        planted_sets.push(sorted);
    }
    let mut builder = GraphBuilder::with_attributes(attrs);
    builder.add_edges(builder_edges);
    (
        builder.build().expect("planted edges are in range"),
        planted_sets,
    )
}

/// Parameters of the [`one_big_component`] generator.
#[derive(Debug, Clone, Copy)]
pub struct BigComponentConfig {
    /// Total number of vertices.
    pub n: usize,
    /// Erdős–Rényi probability of each background edge.
    pub edge_prob: f64,
    /// Size of the dense community occupying the *highest* vertex ids.
    pub community: usize,
    /// Probability of an edge between any two community members.
    pub community_prob: f64,
    /// The planted fair clique has `planted_half` vertices of each attribute (so
    /// `2 * planted_half` in total), on the very highest vertex ids.
    pub planted_half: usize,
    /// Probability that a background vertex gets attribute `a`.
    pub prob_a: f64,
}

/// Generates a *single connected component* with a planted maximum fair clique: an ER
/// background, a path through all vertices (guaranteeing connectivity), a dense
/// community on the highest `community` vertex ids and a planted fair clique
/// (`planted_half` of each attribute) on the very highest ids. Returns the graph and
/// the planted clique's (sorted) vertex set.
///
/// This is the adversarial shape for *component-level* parallelism — there is exactly
/// one component, so all scaling must come from splitting the search inside it — and
/// the deterministic tail placement makes it a fair benchmark: the dense region sits
/// at the high end of every branching order ([`BranchOrder::ColorfulCore`] peels the
/// loosely connected background first), so serial and parallel searches both face the
/// same "optimum hides behind the whole background" workload.
///
/// [`BranchOrder::ColorfulCore`]: ../../rfc_core/search/enum.BranchOrder.html
pub fn one_big_component(
    config: &BigComponentConfig,
    seed: u64,
) -> (AttributedGraph, Vec<VertexId>) {
    let BigComponentConfig {
        n,
        edge_prob,
        community,
        community_prob,
        planted_half,
        prob_a,
    } = *config;
    let planted_size = 2 * planted_half;
    assert!(
        planted_size <= community && community <= n,
        "need planted clique ({planted_size}) ≤ community ({community}) ≤ n ({n})"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attrs = random_attributes(n, prob_a, &mut rng);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(edge_prob.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    // A path through all vertices keeps everything in one component no matter how
    // sparse the background came out.
    for u in 1..n as VertexId {
        edges.push((u - 1, u));
    }
    // Dense community on the highest ids.
    let first_member = (n - community) as VertexId;
    for u in first_member..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(community_prob.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    // Planted fair clique on the very highest ids: all pairwise edges, attributes
    // rewritten to an exact `planted_half` / `planted_half` split.
    let first_planted = n - planted_size;
    let planted: Vec<VertexId> = (first_planted as VertexId..n as VertexId).collect();
    for (i, &u) in planted.iter().enumerate() {
        attrs[u as usize] = if i < planted_half {
            Attribute::A
        } else {
            Attribute::B
        };
        for &v in &planted[i + 1..] {
            edges.push((u, v));
        }
    }
    let mut builder = GraphBuilder::with_attributes(attrs);
    builder.add_edges(edges);
    (
        builder.build().expect("generated edges are in range"),
        planted,
    )
}

/// The disjoint union of `parts`: attributes and edges are concatenated with each
/// part's vertex ids shifted past the previous parts, so every part becomes its own
/// set of connected components. Used to assemble multi-component workloads for the
/// component-parallel search.
pub fn disjoint_union(parts: &[AttributedGraph]) -> AttributedGraph {
    let mut attributes = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut offset: VertexId = 0;
    for part in parts {
        attributes.extend_from_slice(part.attributes());
        edges.extend(
            part.edge_list()
                .iter()
                .map(|&(u, v)| (u + offset, v + offset)),
        );
        offset += part.num_vertices() as VertexId;
    }
    let mut builder = GraphBuilder::with_attributes(attributes);
    builder.add_edges(edges);
    builder.build().expect("shifted edges stay in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_basic_properties() {
        let g = erdos_renyi(200, 0.05, 0.5, 7);
        assert_eq!(g.num_vertices(), 200);
        // Expected edges ~ C(200,2) * 0.05 ≈ 995; allow wide tolerance.
        assert!(
            g.num_edges() > 600 && g.num_edges() < 1400,
            "m = {}",
            g.num_edges()
        );
        let counts = g.attribute_counts();
        assert!(counts.a() > 60 && counts.b() > 60);
    }

    #[test]
    fn disjoint_union_shifts_ids_and_keeps_parts_apart() {
        let a = erdos_renyi(30, 0.2, 0.5, 1);
        let b = erdos_renyi(50, 0.1, 0.5, 2);
        let u = disjoint_union(&[a.clone(), b.clone()]);
        assert_eq!(u.num_vertices(), 80);
        assert_eq!(u.num_edges(), a.num_edges() + b.num_edges());
        // Attributes line up part by part.
        assert_eq!(u.attribute(0), a.attribute(0));
        assert_eq!(u.attribute(30), b.attribute(0));
        // No edge crosses the parts.
        assert!(u.edge_list().iter().all(|&(x, y)| (x < 30) == (y < 30),));
        assert_eq!(disjoint_union(&[]).num_vertices(), 0);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let g1 = erdos_renyi(100, 0.1, 0.5, 42);
        let g2 = erdos_renyi(100, 0.1, 0.5, 42);
        let g3 = erdos_renyi(100, 0.1, 0.5, 43);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn power_law_has_heavy_tail_and_triangles() {
        let config = PowerLawConfig {
            n: 2000,
            edges_per_vertex: 4,
            triangle_prob: 0.5,
            prob_a: 0.5,
        };
        let g = power_law(&config, 11);
        assert_eq!(g.num_vertices(), 2000);
        // Average degree should be roughly 2 * (m0 + closure) = 8-12.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 6.0 && avg < 16.0, "avg degree = {avg}");
        // Heavy tail: the maximum degree far exceeds the average.
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "dmax = {}",
            g.max_degree()
        );
        // Clustering: at least some triangles exist.
        let mut triangles = 0usize;
        'outer: for e in 0..g.num_edges() as u32 {
            let (u, v) = g.edge_endpoints(e);
            if !g.common_neighbors(u, v).is_empty() {
                triangles += 1;
                if triangles > 50 {
                    break 'outer;
                }
            }
        }
        assert!(triangles > 50);
    }

    #[test]
    fn power_law_is_deterministic_per_seed() {
        let config = PowerLawConfig {
            n: 500,
            edges_per_vertex: 3,
            triangle_prob: 0.3,
            prob_a: 0.5,
        };
        assert_eq!(power_law(&config, 5), power_law(&config, 5));
        assert_ne!(power_law(&config, 5), power_law(&config, 6));
    }

    #[test]
    fn planted_cliques_are_cliques_with_requested_counts() {
        let background = erdos_renyi(300, 0.02, 0.5, 3);
        let cliques = [
            PlantedClique {
                count_a: 8,
                count_b: 6,
            },
            PlantedClique {
                count_a: 5,
                count_b: 5,
            },
        ];
        let (g, sets) = plant_cliques(&background, &cliques, 9);
        assert_eq!(sets.len(), 2);
        for (set, spec) in sets.iter().zip(cliques.iter()) {
            assert_eq!(set.len(), spec.size());
            assert!(g.is_clique(set));
            let counts = g.attribute_counts_of(set);
            assert_eq!(counts.a(), spec.count_a);
            assert_eq!(counts.b(), spec.count_b);
        }
        // Planted sets are disjoint.
        let mut all: Vec<u32> = sets.iter().flatten().copied().collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn planting_too_many_vertices_panics() {
        let background = erdos_renyi(10, 0.1, 0.5, 1);
        let cliques = [PlantedClique {
            count_a: 8,
            count_b: 8,
        }];
        let _ = plant_cliques(&background, &cliques, 2);
    }

    #[test]
    fn dense_community_adds_edges_only_among_members() {
        let background = erdos_renyi(200, 0.01, 0.5, 12);
        let community = DenseCommunity {
            size: 40,
            edge_prob: 0.5,
        };
        let (g, members) = add_dense_community(&background, &community, 77);
        assert_eq!(members.len(), 40);
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members are sorted"
        );
        assert!(g.num_edges() > background.num_edges());
        // Every added edge joins two community members.
        let old: std::collections::HashSet<_> = background.edge_list().iter().copied().collect();
        for &(u, v) in g.edge_list() {
            if !old.contains(&(u, v)) {
                assert!(members.contains(&u) && members.contains(&v));
            }
        }
        // Attributes unchanged.
        assert_eq!(g.attributes(), background.attributes());
        // The community is dense: average internal degree well above the background's.
        let internal: usize = g
            .edge_list()
            .iter()
            .filter(|&&(u, v)| members.contains(&u) && members.contains(&v))
            .count();
        assert!(internal as f64 > 0.3 * (40.0 * 39.0 / 2.0));
    }

    #[test]
    fn plant_in_pool_respects_the_pool() {
        let background = erdos_renyi(100, 0.02, 0.5, 5);
        let pool: Vec<u32> = (0..30).collect();
        let cliques = [PlantedClique {
            count_a: 5,
            count_b: 5,
        }];
        let (g, sets) = plant_cliques_in_pool(&background, &cliques, &pool, 6);
        assert!(sets[0].iter().all(|&v| v < 30));
        assert!(g.is_clique(&sets[0]));
    }

    #[test]
    fn one_big_component_is_connected_with_a_planted_fair_clique() {
        let config = BigComponentConfig {
            n: 300,
            edge_prob: 0.02,
            community: 40,
            community_prob: 0.4,
            planted_half: 7,
            prob_a: 0.5,
        };
        let (g, planted) = one_big_component(&config, 21);
        assert_eq!(g.num_vertices(), 300);
        // Deterministic per seed.
        assert_eq!(one_big_component(&config, 21).0, g);
        assert_ne!(one_big_component(&config, 22).0, g);
        // The planted set occupies the highest ids and is a balanced fair clique.
        assert_eq!(planted, (286u32..300).collect::<Vec<_>>());
        assert!(g.is_clique(&planted));
        let counts = g.attribute_counts_of(&planted);
        assert_eq!((counts.a(), counts.b()), (7, 7));
        // Exactly one connected component: BFS from 0 reaches everything.
        let mut seen = vec![false; g.num_vertices()];
        let mut queue = vec![0u32];
        seen[0] = true;
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "the path edges connect everything");
    }

    #[test]
    fn random_attributes_respect_probability() {
        let mut rng = StdRng::seed_from_u64(123);
        let attrs = random_attributes(10_000, 0.7, &mut rng);
        let a = attrs.iter().filter(|&&x| x == Attribute::A).count();
        assert!(a > 6_600 && a < 7_400, "a = {a}");
    }
}
