//! Deterministic update-stream generators for the dynamic-graph subsystem.
//!
//! An *update stream* is a sequence of [`UpdateOp`]s with [`UpdateOp::Commit`]
//! markers as batch boundaries, replayable against a base graph by
//! `rfc_core::dynamic::DynamicRfcSolver` (or any [`rfc_graph::delta::GraphDelta`]
//! loop) and
//! serializable line-by-line with [`UpdateOp::to_jsonl`] for the `maxfairclique
//! update` subcommand. Three workload shapes cover the incremental solver's design
//! space:
//!
//! * [`grow_only_stream`] — vertices and edges only arrive (the append-heavy
//!   ingestion pattern); nothing is ever removed.
//! * [`churn_stream`] — a seeded mix of edge insertions/removals plus occasional
//!   vertex removals and restores, confined to a caller-chosen vertex pool so churn
//!   can be aimed at (or away from) specific components.
//! * [`delete_incumbent_stream`] — the adversarial pattern for incremental solvers:
//!   delete the vertices of a known best clique one batch at a time (each commit
//!   invalidates the current incumbent), then restore them and stitch the clique
//!   back together.
//!
//! Every generator is a pure function of its inputs and seed: identical calls
//! produce identical streams, and every op in a stream is valid when the stream is
//! replayed in order against the base graph.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfc_graph::delta::UpdateOp;
use rfc_graph::{Attribute, AttributedGraph, VertexId};

/// Pushes a commit marker every `batch_size` graph ops (and once more at the end if
/// ops are pending).
struct BatchWriter {
    ops: Vec<UpdateOp>,
    batch_size: usize,
    in_batch: usize,
}

impl BatchWriter {
    fn new(batch_size: usize) -> Self {
        Self {
            ops: Vec::new(),
            batch_size: batch_size.max(1),
            in_batch: 0,
        }
    }

    fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
        self.in_batch += 1;
        if self.in_batch == self.batch_size {
            self.ops.push(UpdateOp::Commit);
            self.in_batch = 0;
        }
    }

    fn finish(mut self) -> Vec<UpdateOp> {
        if self.in_batch > 0 {
            self.ops.push(UpdateOp::Commit);
        }
        self.ops
    }
}

fn random_attr(rng: &mut StdRng) -> Attribute {
    if rng.gen_bool(0.5) {
        Attribute::A
    } else {
        Attribute::B
    }
}

/// A grow-only stream: `ops` insertions (≈ 15% new vertices, the rest new edges
/// between random existing vertices), a [`UpdateOp::Commit`] every `batch_size` ops.
/// Every inserted edge is absent at insertion time, so the stream replays cleanly.
pub fn grow_only_stream(
    base: &AttributedGraph,
    ops: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut writer = BatchWriter::new(batch_size);
    let mut num_vertices = base.num_vertices();
    // Shadow edge set: base edges plus everything inserted so far.
    let mut edges: std::collections::BTreeSet<(VertexId, VertexId)> =
        base.edge_list().iter().copied().collect();
    for _ in 0..ops {
        let grow_vertex = num_vertices < 2 || rng.gen_bool(0.15);
        if grow_vertex {
            writer.push(UpdateOp::InsertVertex {
                attr: random_attr(&mut rng),
            });
            num_vertices += 1;
            continue;
        }
        // Rejection-sample an absent pair; dense corners fall back to a new vertex.
        let mut inserted = false;
        for _ in 0..64 {
            let u = rng.gen_range(0..num_vertices as VertexId);
            let v = rng.gen_range(0..num_vertices as VertexId);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if edges.insert(key) {
                writer.push(UpdateOp::InsertEdge { u: key.0, v: key.1 });
                inserted = true;
                break;
            }
        }
        if !inserted {
            writer.push(UpdateOp::InsertVertex {
                attr: random_attr(&mut rng),
            });
            num_vertices += 1;
        }
    }
    writer.finish()
}

/// Pool-internal live edges of the churn shadow, supporting O(1) sampling and
/// removal.
struct EdgePool {
    list: Vec<(VertexId, VertexId)>,
    index: HashMap<(VertexId, VertexId), usize>,
}

impl EdgePool {
    fn new() -> Self {
        Self {
            list: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn contains(&self, key: (VertexId, VertexId)) -> bool {
        self.index.contains_key(&key)
    }

    fn insert(&mut self, key: (VertexId, VertexId)) {
        if self.index.insert(key, self.list.len()).is_none() {
            self.list.push(key);
        }
    }

    fn remove(&mut self, key: (VertexId, VertexId)) {
        if let Some(at) = self.index.remove(&key) {
            self.list.swap_remove(at);
            if let Some(&moved) = self.list.get(at) {
                self.index.insert(moved, at);
            }
        }
    }

    fn remove_incident(&mut self, v: VertexId) {
        let incident: Vec<(VertexId, VertexId)> = self
            .list
            .iter()
            .copied()
            .filter(|&(a, b)| a == v || b == v)
            .collect();
        for key in incident {
            self.remove(key);
        }
    }

    fn sample(&self, rng: &mut StdRng) -> Option<(VertexId, VertexId)> {
        if self.list.is_empty() {
            None
        } else {
            Some(self.list[rng.gen_range(0..self.list.len())])
        }
    }
}

/// A churn stream confined to `pool`: ≈ 40% edge insertions, 40% edge removals,
/// 10% vertex removals and 10% restores of previously removed vertices, with a
/// [`UpdateOp::Commit`] every `batch_size` ops. Aiming the pool at one component of
/// a multi-component graph produces the "low-churn" workload where an incremental
/// solver shines; a pool spanning the whole graph produces uniform churn.
///
/// `pool` must name distinct, existing vertices (duplicates are ignored).
pub fn churn_stream(
    base: &AttributedGraph,
    pool: &[VertexId],
    ops: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<UpdateOp> {
    let mut pool: Vec<VertexId> = pool
        .iter()
        .copied()
        .filter(|&v| (v as usize) < base.num_vertices())
        .collect();
    pool.sort_unstable();
    pool.dedup();
    assert!(
        pool.len() >= 2,
        "churn needs a pool of at least two vertices"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut writer = BatchWriter::new(batch_size);
    let in_pool: std::collections::BTreeSet<VertexId> = pool.iter().copied().collect();
    let mut alive: HashMap<VertexId, bool> = pool.iter().map(|&v| (v, true)).collect();
    let mut removed: Vec<VertexId> = Vec::new();
    let mut edges = EdgePool::new();
    for &(u, v) in base.edge_list() {
        if in_pool.contains(&u) && in_pool.contains(&v) {
            edges.insert((u, v));
        }
    }

    for _ in 0..ops {
        let roll = rng.gen_range(0..100u32);
        if roll < 40 {
            // Insert an absent pool-internal edge between live vertices.
            let mut done = false;
            for _ in 0..64 {
                let u = pool[rng.gen_range(0..pool.len())];
                let v = pool[rng.gen_range(0..pool.len())];
                if u == v || !alive[&u] || !alive[&v] {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if !edges.contains(key) {
                    edges.insert(key);
                    writer.push(UpdateOp::InsertEdge { u: key.0, v: key.1 });
                    done = true;
                    break;
                }
            }
            if done {
                continue;
            }
        }
        if roll < 80 {
            // Remove a present pool-internal edge.
            if let Some(key) = edges.sample(&mut rng) {
                edges.remove(key);
                writer.push(UpdateOp::RemoveEdge { u: key.0, v: key.1 });
                continue;
            }
        }
        if roll < 90 {
            // Remove a live pool vertex (keep at least two alive).
            let live: Vec<VertexId> = pool.iter().copied().filter(|v| alive[v]).collect();
            if live.len() > 2 {
                let v = live[rng.gen_range(0..live.len())];
                alive.insert(v, false);
                removed.push(v);
                edges.remove_incident(v);
                writer.push(UpdateOp::RemoveVertex { v });
                continue;
            }
        }
        // Restore a removed vertex (it comes back isolated).
        if let Some(at) = (!removed.is_empty()).then(|| rng.gen_range(0..removed.len())) {
            let v = removed.swap_remove(at);
            alive.insert(v, true);
            writer.push(UpdateOp::RestoreVertex {
                v,
                attr: random_attr(&mut rng),
            });
        } else if let Some(key) = edges.sample(&mut rng) {
            edges.remove(key);
            writer.push(UpdateOp::RemoveEdge { u: key.0, v: key.1 });
        }
    }
    writer.finish()
}

/// The adversarial delete-the-incumbent stream: removes the vertices of `incumbent`
/// (a known clique — typically the planted maximum fair clique) one
/// [`UpdateOp::RemoveVertex`] at a time, then restores each id with its original
/// attribute and re-inserts every clique edge, committing every `batch_size` ops.
/// Every prefix of commits leaves a valid graph, and after the final commit the
/// clique is fully stitched back together (edges from the clique to the rest of the
/// graph stay removed).
pub fn delete_incumbent_stream(
    base: &AttributedGraph,
    incumbent: &[VertexId],
    batch_size: usize,
) -> Vec<UpdateOp> {
    assert!(
        base.is_clique(incumbent),
        "the incumbent to delete must be a clique of the base graph"
    );
    let mut writer = BatchWriter::new(batch_size);
    for &v in incumbent {
        writer.push(UpdateOp::RemoveVertex { v });
    }
    for &v in incumbent {
        writer.push(UpdateOp::RestoreVertex {
            v,
            attr: base.attribute(v),
        });
    }
    for (i, &u) in incumbent.iter().enumerate() {
        for &v in &incumbent[i + 1..] {
            writer.push(UpdateOp::InsertEdge {
                u: u.min(v),
                v: u.max(v),
            });
        }
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfc_graph::delta::GraphDelta;
    use rfc_graph::GraphBuilder;
    use std::collections::BTreeSet;

    /// Replays a stream through [`GraphDelta`] (panicking on any invalid op) and
    /// returns the final committed graph plus the number of commits.
    fn replay(base: &AttributedGraph, ops: &[UpdateOp]) -> (AttributedGraph, usize) {
        let mut graph = base.clone();
        let mut delta = GraphDelta::new();
        let mut commits = 0usize;
        for op in ops {
            if *op == UpdateOp::Commit {
                let tombstones = delta.tombstones();
                graph = delta.apply(&graph);
                delta = GraphDelta::with_tombstones(tombstones);
                commits += 1;
            } else {
                delta
                    .apply_op(&graph, op)
                    .unwrap_or_else(|e| panic!("invalid op {op:?}: {e}"));
            }
        }
        assert!(delta.is_empty(), "streams must end on a commit boundary");
        (graph, commits)
    }

    fn base_graph() -> AttributedGraph {
        let mut b = GraphBuilder::new(12);
        for v in 0..12u32 {
            b.set_attribute(
                v,
                if v % 2 == 0 {
                    Attribute::A
                } else {
                    Attribute::B
                },
            );
        }
        // Two squares plus a bridge and some chords.
        b.add_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 4),
            (3, 4),
            (8, 9),
            (10, 11),
        ]);
        b.build().unwrap()
    }

    #[test]
    fn grow_only_streams_are_valid_deterministic_and_insert_only() {
        let base = base_graph();
        let ops = grow_only_stream(&base, 120, 25, 7);
        assert_eq!(ops, grow_only_stream(&base, 120, 25, 7));
        assert_ne!(ops, grow_only_stream(&base, 120, 25, 8));
        assert!(ops.iter().all(|op| matches!(
            op,
            UpdateOp::InsertEdge { .. } | UpdateOp::InsertVertex { .. } | UpdateOp::Commit
        )));
        assert_eq!(
            ops.iter().filter(|op| **op != UpdateOp::Commit).count(),
            120
        );
        let (graph, commits) = replay(&base, &ops);
        assert_eq!(commits, 120usize.div_ceil(25));
        assert!(graph.num_edges() > base.num_edges());
        assert!(graph.num_vertices() >= base.num_vertices());
    }

    #[test]
    fn churn_streams_replay_cleanly_within_their_pool() {
        let base = base_graph();
        let pool: Vec<VertexId> = (0..8).collect();
        let ops = churn_stream(&base, &pool, 200, 40, 11);
        assert_eq!(ops, churn_stream(&base, &pool, 200, 40, 11));
        let (graph, commits) = replay(&base, &ops);
        assert_eq!(commits, 5);
        assert_eq!(graph.num_vertices(), base.num_vertices());
        // Ops never touch vertices outside the pool (both untouched components and
        // their edges survive verbatim).
        for op in &ops {
            let touched: Vec<VertexId> = match *op {
                UpdateOp::InsertEdge { u, v } | UpdateOp::RemoveEdge { u, v } => vec![u, v],
                UpdateOp::RemoveVertex { v } | UpdateOp::RestoreVertex { v, .. } => vec![v],
                UpdateOp::InsertVertex { .. } | UpdateOp::Commit => vec![],
            };
            assert!(touched.iter().all(|&v| pool.contains(&v)), "{op:?}");
        }
        assert!(graph.has_edge(8, 9));
        assert!(graph.has_edge(10, 11));
        // The mix actually exercises removals and restores.
        assert!(ops
            .iter()
            .any(|op| matches!(op, UpdateOp::RemoveEdge { .. })));
        assert!(ops
            .iter()
            .any(|op| matches!(op, UpdateOp::RemoveVertex { .. })));
    }

    #[test]
    fn delete_incumbent_stream_kills_and_rebuilds_the_clique() {
        let base = base_graph();
        let clique: Vec<VertexId> = vec![0, 1, 2];
        let ops = delete_incumbent_stream(&base, &clique, 2);
        // First batch: removals only.
        let first_commit = ops.iter().position(|op| *op == UpdateOp::Commit).unwrap();
        assert!(ops[..first_commit]
            .iter()
            .all(|op| matches!(op, UpdateOp::RemoveVertex { .. })));
        // Mid-stream prefixes replay cleanly too.
        let mid = ops
            .iter()
            .take(first_commit + 1)
            .copied()
            .collect::<Vec<_>>();
        let (after_first, _) = replay(&base, &mid);
        assert_eq!(after_first.degree(0), 0);
        // The full stream restores the clique with its original attributes.
        let (graph, _) = replay(&base, &ops);
        assert!(graph.is_clique(&clique));
        let attrs: BTreeSet<_> = clique.iter().map(|&v| graph.attribute(v)).collect();
        let original: BTreeSet<_> = clique.iter().map(|&v| base.attribute(v)).collect();
        assert_eq!(attrs, original);
    }

    #[test]
    #[should_panic(expected = "must be a clique")]
    fn delete_incumbent_rejects_non_cliques() {
        let base = base_graph();
        let _ = delete_incumbent_stream(&base, &[0, 1, 7], 4);
    }
}
