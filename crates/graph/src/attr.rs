//! Binary vertex attributes and attribute bookkeeping.
//!
//! The paper (and this reproduction) focuses on the two-dimensional attribute case
//! `A = {a, b}` (Section II). [`Attribute`] is that two-valued attribute and
//! [`AttributeCounts`] is the `(cnt(a), cnt(b))` pair that the fairness constraints are
//! expressed over.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A binary vertex attribute (`a` or `b` in the paper).
///
/// In application terms this is e.g. gender in a collaboration network, research area in
/// a co-authorship network, nationality in a sports network, or seniority in a movie
/// collaboration network (Section VI-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attribute {
    /// Attribute value `a` (index 0).
    A,
    /// Attribute value `b` (index 1).
    B,
}

impl Attribute {
    /// All attribute values in index order.
    pub const ALL: [Attribute; 2] = [Attribute::A, Attribute::B];

    /// The number of distinct attribute values (`An = 2` in the paper).
    pub const COUNT: usize = 2;

    /// Returns the 0-based index of this attribute value (`A → 0`, `B → 1`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Attribute::A => 0,
            Attribute::B => 1,
        }
    }

    /// Returns the attribute with the given index.
    ///
    /// # Panics
    /// Panics if `idx >= 2`.
    #[inline]
    pub fn from_index(idx: usize) -> Attribute {
        match idx {
            0 => Attribute::A,
            1 => Attribute::B,
            _ => panic!("attribute index out of range: {idx}"),
        }
    }

    /// Returns the other attribute value.
    #[inline]
    pub fn other(self) -> Attribute {
        match self {
            Attribute::A => Attribute::B,
            Attribute::B => Attribute::A,
        }
    }

    /// Parses an attribute from common textual spellings.
    ///
    /// Accepts `a`/`A`/`0` for [`Attribute::A`] and `b`/`B`/`1` for [`Attribute::B`].
    pub fn parse(s: &str) -> Option<Attribute> {
        match s.trim() {
            "a" | "A" | "0" => Some(Attribute::A),
            "b" | "B" | "1" => Some(Attribute::B),
            _ => None,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::A => write!(f, "a"),
            Attribute::B => write!(f, "b"),
        }
    }
}

/// A pair of per-attribute counts: `(cnt(a), cnt(b))`.
///
/// This is the quantity the relative-fairness constraint is stated over:
/// `cnt(a) ≥ k`, `cnt(b) ≥ k`, `|cnt(a) − cnt(b)| ≤ δ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttributeCounts {
    counts: [usize; 2],
}

impl AttributeCounts {
    /// An empty (all-zero) count pair.
    #[inline]
    pub fn new() -> Self {
        Self { counts: [0, 0] }
    }

    /// Builds counts from explicit values.
    #[inline]
    pub fn from_counts(a: usize, b: usize) -> Self {
        Self { counts: [a, b] }
    }

    /// The count for attribute `a`.
    #[inline]
    pub fn a(&self) -> usize {
        self.counts[0]
    }

    /// The count for attribute `b`.
    #[inline]
    pub fn b(&self) -> usize {
        self.counts[1]
    }

    /// The total count (`cnt(a) + cnt(b)`).
    #[inline]
    pub fn total(&self) -> usize {
        self.counts[0] + self.counts[1]
    }

    /// The smaller of the two counts.
    #[inline]
    pub fn min(&self) -> usize {
        self.counts[0].min(self.counts[1])
    }

    /// The larger of the two counts.
    #[inline]
    pub fn max(&self) -> usize {
        self.counts[0].max(self.counts[1])
    }

    /// Absolute difference `|cnt(a) − cnt(b)|`.
    #[inline]
    pub fn imbalance(&self) -> usize {
        self.max() - self.min()
    }

    /// Increments the count of `attr`.
    #[inline]
    pub fn add(&mut self, attr: Attribute) {
        self.counts[attr.index()] += 1;
    }

    /// Decrements the count of `attr`.
    ///
    /// # Panics
    /// Panics if the count is already zero.
    #[inline]
    pub fn remove(&mut self, attr: Attribute) {
        assert!(self.counts[attr.index()] > 0, "attribute count underflow");
        self.counts[attr.index()] -= 1;
    }

    /// Returns whether a vertex set with these counts satisfies the relative fairness
    /// constraint for parameters `k` and `δ`.
    #[inline]
    pub fn is_fair(&self, k: usize, delta: usize) -> bool {
        self.min() >= k && self.imbalance() <= delta
    }

    /// Size of the largest *subset* of a vertex set with these counts that satisfies the
    /// fairness constraint, or `None` if no subset does.
    ///
    /// Any subset of a clique is a clique, so for a clique with counts `(x, y)` the best
    /// fair sub-clique keeps `min(x, y)` vertices of the rarer attribute (must be ≥ k)
    /// and `min(max(x, y), min(x, y) + δ)` of the more common one.
    pub fn best_fair_subset_size(&self, k: usize, delta: usize) -> Option<usize> {
        let lo = self.min();
        let hi = self.max();
        if lo < k {
            return None;
        }
        Some(lo + hi.min(lo + delta))
    }
}

impl FromIterator<Attribute> for AttributeCounts {
    /// Counts attributes over an iterator of attribute values.
    fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        let mut c = Self::new();
        for attr in iter {
            c.add(attr);
        }
        c
    }
}

impl Index<Attribute> for AttributeCounts {
    type Output = usize;

    #[inline]
    fn index(&self, attr: Attribute) -> &usize {
        &self.counts[attr.index()]
    }
}

impl IndexMut<Attribute> for AttributeCounts {
    #[inline]
    fn index_mut(&mut self, attr: Attribute) -> &mut usize {
        &mut self.counts[attr.index()]
    }
}

impl fmt::Display for AttributeCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(a: {}, b: {})", self.a(), self.b())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_index_roundtrip() {
        for attr in Attribute::ALL {
            assert_eq!(Attribute::from_index(attr.index()), attr);
        }
    }

    #[test]
    fn attribute_other_is_involution() {
        assert_eq!(Attribute::A.other(), Attribute::B);
        assert_eq!(Attribute::B.other(), Attribute::A);
        for attr in Attribute::ALL {
            assert_eq!(attr.other().other(), attr);
        }
    }

    #[test]
    fn attribute_parse_accepts_common_spellings() {
        assert_eq!(Attribute::parse("a"), Some(Attribute::A));
        assert_eq!(Attribute::parse(" A "), Some(Attribute::A));
        assert_eq!(Attribute::parse("0"), Some(Attribute::A));
        assert_eq!(Attribute::parse("b"), Some(Attribute::B));
        assert_eq!(Attribute::parse("B"), Some(Attribute::B));
        assert_eq!(Attribute::parse("1"), Some(Attribute::B));
        assert_eq!(Attribute::parse("x"), None);
        assert_eq!(Attribute::parse("2"), None);
    }

    #[test]
    #[should_panic(expected = "attribute index out of range")]
    fn attribute_from_index_out_of_range_panics() {
        let _ = Attribute::from_index(2);
    }

    #[test]
    fn counts_add_remove_total() {
        let mut c = AttributeCounts::new();
        c.add(Attribute::A);
        c.add(Attribute::A);
        c.add(Attribute::B);
        assert_eq!(c.a(), 2);
        assert_eq!(c.b(), 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.min(), 1);
        assert_eq!(c.max(), 2);
        assert_eq!(c.imbalance(), 1);
        c.remove(Attribute::A);
        assert_eq!(c.a(), 1);
        assert_eq!(c.imbalance(), 0);
    }

    #[test]
    #[should_panic(expected = "attribute count underflow")]
    fn counts_remove_underflow_panics() {
        let mut c = AttributeCounts::new();
        c.remove(Attribute::B);
    }

    #[test]
    fn counts_from_iter_matches_manual() {
        let attrs = [Attribute::A, Attribute::B, Attribute::B, Attribute::B];
        let c = AttributeCounts::from_iter(attrs);
        assert_eq!(c, AttributeCounts::from_counts(1, 3));
    }

    #[test]
    fn fairness_check_matches_definition() {
        // cnt(a)=3, cnt(b)=4, k=3, delta=1: fair.
        assert!(AttributeCounts::from_counts(3, 4).is_fair(3, 1));
        // Too few of attribute a.
        assert!(!AttributeCounts::from_counts(2, 4).is_fair(3, 1));
        // Imbalance too large.
        assert!(!AttributeCounts::from_counts(3, 5).is_fair(3, 1));
        // Exactly balanced at the threshold.
        assert!(AttributeCounts::from_counts(3, 3).is_fair(3, 0));
    }

    #[test]
    fn best_fair_subset_size_matches_hand_calculation() {
        // x=5, y=9, k=3, delta=2 -> keep 5 + min(9, 7) = 12.
        assert_eq!(
            AttributeCounts::from_counts(5, 9).best_fair_subset_size(3, 2),
            Some(12)
        );
        // Already balanced: keep everything.
        assert_eq!(
            AttributeCounts::from_counts(4, 4).best_fair_subset_size(3, 1),
            Some(8)
        );
        // Rarer attribute below k: infeasible.
        assert_eq!(
            AttributeCounts::from_counts(2, 9).best_fair_subset_size(3, 2),
            None
        );
        // delta = 0 forces strict balance.
        assert_eq!(
            AttributeCounts::from_counts(5, 9).best_fair_subset_size(3, 0),
            Some(10)
        );
    }

    #[test]
    fn indexing_by_attribute() {
        let mut c = AttributeCounts::new();
        c[Attribute::A] = 7;
        c[Attribute::B] = 2;
        assert_eq!(c[Attribute::A], 7);
        assert_eq!(c[Attribute::B], 2);
        assert_eq!(c.total(), 9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Attribute::A.to_string(), "a");
        assert_eq!(Attribute::B.to_string(), "b");
        assert_eq!(
            AttributeCounts::from_counts(1, 2).to_string(),
            "(a: 1, b: 2)"
        );
    }
}
