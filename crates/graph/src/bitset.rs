//! Fixed-capacity bitsets and dense bitset adjacency matrices.
//!
//! The branch-and-bound search in `rfc-core` spends most of its time intersecting a
//! candidate set with the neighborhood of the branching vertex. Over the small,
//! re-labeled vertex spaces of post-reduction connected components that intersection is
//! fastest as a word-wise AND of `u64` blocks:
//!
//! * [`Bitset`] — a fixed-capacity set of small integers backed by words of `u64`.
//! * [`BitMatrix`] — a dense `n × n` bit matrix, one [`Bitset`]-compatible row per
//!   vertex, used as an adjacency matrix so `candidates ∩ N(v)` is a single AND pass.
//!
//! Both types deliberately expose their raw `&[u64]` words so a [`Bitset`] can be
//! intersected directly with a [`BitMatrix`] row without an intermediate allocation.

/// Number of bits per storage word.
const WORD_BITS: usize = u64::BITS as usize;

#[inline]
fn word_count(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// 4-way unrolled AND+popcount over two equal-length word slices.
#[inline]
fn and_popcount(a: &[u64], b: &[u64]) -> usize {
    let n = a.len();
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    let mut i = 0;
    while i + 4 <= n {
        c0 += (a[i] & b[i]).count_ones() as usize;
        c1 += (a[i + 1] & b[i + 1]).count_ones() as usize;
        c2 += (a[i + 2] & b[i + 2]).count_ones() as usize;
        c3 += (a[i + 3] & b[i + 3]).count_ones() as usize;
        i += 4;
    }
    while i < n {
        c0 += (a[i] & b[i]).count_ones() as usize;
        i += 1;
    }
    c0 + c1 + c2 + c3
}

/// A fixed-capacity set of integers in `0..capacity`, stored as words of `u64`.
///
/// The capacity is fixed at construction; all per-element operations are `O(1)` and the
/// set-wide operations (`count`, intersections) are `O(capacity / 64)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    nbits: usize,
    words: Vec<u64>,
}

impl Bitset {
    /// Creates an empty bitset with room for values in `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        Self {
            nbits,
            words: vec![0; word_count(nbits)],
        }
    }

    /// Creates a bitset with every value in `0..nbits` present.
    pub fn full(nbits: usize) -> Self {
        let mut words = vec![u64::MAX; word_count(nbits)];
        if let Some(last) = words.last_mut() {
            let used = nbits % WORD_BITS;
            if used != 0 {
                *last = (1u64 << used) - 1;
            }
        }
        Self { nbits, words }
    }

    /// The fixed capacity: values must lie in `0..capacity()`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `i` into the set.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.nbits, "bit {i} out of range 0..{}", self.nbits);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes `i` from the set.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.nbits, "bit {i} out of range 0..{}", self.nbits);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits, "bit {i} out of range 0..{}", self.nbits);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 != 0
    }

    /// Number of elements in the set (population count).
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The smallest element of the set, if any.
    #[inline]
    pub fn first_set(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|wi| wi * WORD_BITS + self.words[wi].trailing_zeros() as usize)
    }

    /// The raw storage words (least-significant bit of word 0 is element 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// `|self ∩ other|` where `other` is the word representation of a set with the same
    /// capacity (another [`Bitset`]'s [`words`](Self::words) or a [`BitMatrix`] row).
    ///
    /// This is the innermost kernel of the branch-and-bound (attribute counting runs it
    /// on every node), so the AND+popcount loop is unrolled 4-wide over independent
    /// accumulators to keep the popcount units busy instead of serializing on one sum.
    #[inline]
    pub fn intersection_count(&self, other: &[u64]) -> usize {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        and_popcount(&self.words, other)
    }

    /// Fused AND+popcount into a scratch bitset: writes `self ∩ other` over `out`'s
    /// previous contents (every word is overwritten, so `out` may hold stale data from
    /// a [`BitsetPool`]) and returns the intersection's population count in the same
    /// pass. `out` must have the same capacity as `self`.
    ///
    /// This is the allocation-free replacement for
    /// [`intersection_with`](Self::intersection_with) on the branch hot loop: the
    /// search reuses one scratch bitset per recursion depth instead of allocating a
    /// fresh `Vec<u64>` per node.
    #[inline]
    pub fn intersect_into(&self, other: &[u64], out: &mut Bitset) -> usize {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        debug_assert_eq!(self.nbits, out.nbits, "scratch capacity mismatch");
        let n = self.words.len();
        let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
        let mut i = 0;
        while i + 4 <= n {
            let w0 = self.words[i] & other[i];
            let w1 = self.words[i + 1] & other[i + 1];
            let w2 = self.words[i + 2] & other[i + 2];
            let w3 = self.words[i + 3] & other[i + 3];
            out.words[i] = w0;
            out.words[i + 1] = w1;
            out.words[i + 2] = w2;
            out.words[i + 3] = w3;
            c0 += w0.count_ones() as usize;
            c1 += w1.count_ones() as usize;
            c2 += w2.count_ones() as usize;
            c3 += w3.count_ones() as usize;
            i += 4;
        }
        while i < n {
            let w = self.words[i] & other[i];
            out.words[i] = w;
            c0 += w.count_ones() as usize;
            i += 1;
        }
        c0 + c1 + c2 + c3
    }

    /// Overwrites this bitset with a copy of `src` (same capacity required).
    #[inline]
    pub fn copy_from(&mut self, src: &Bitset) {
        debug_assert_eq!(self.nbits, src.nbits, "capacity mismatch");
        self.words.copy_from_slice(&src.words);
    }

    /// Returns `self ∩ other` as a new bitset (`other` as in
    /// [`intersection_count`](Self::intersection_count)).
    #[inline]
    pub fn intersection_with(&self, other: &[u64]) -> Bitset {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        Bitset {
            nbits: self.nbits,
            words: self.words.iter().zip(other).map(|(a, b)| a & b).collect(),
        }
    }

    /// Intersects in place: `self ← self ∩ other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &[u64]) {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other) {
            *a &= b;
        }
    }

    /// Returns `self ∪ other` as a new bitset (`other` as in
    /// [`intersection_count`](Self::intersection_count)).
    #[inline]
    pub fn union_with(&self, other: &[u64]) -> Bitset {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        Bitset {
            nbits: self.nbits,
            words: self.words.iter().zip(other).map(|(a, b)| a | b).collect(),
        }
    }

    /// Returns `self \ other` as a new bitset (`other` as in
    /// [`intersection_count`](Self::intersection_count)).
    #[inline]
    pub fn difference_with(&self, other: &[u64]) -> Bitset {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        Bitset {
            nbits: self.nbits,
            words: self.words.iter().zip(other).map(|(a, b)| a & !b).collect(),
        }
    }

    /// Iterates the elements of the set in increasing order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a Bitset {
    type Item = usize;
    type IntoIter = SetBits<'a>;

    fn into_iter(self) -> SetBits<'a> {
        self.iter()
    }
}

/// Iterator over the elements of a [`Bitset`], in increasing order.
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear the lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// A dense `n × n` bit matrix with [`Bitset`]-compatible rows.
///
/// Used as an adjacency matrix over the compact vertex space of one connected component:
/// row `v` is the neighborhood `N(v)` as a bitset, so candidate-set intersection during
/// branching is a word-wise AND against [`row`](Self::row). Memory is `n² / 8` bytes,
/// which is cheap for post-reduction components (a 4 096-vertex component takes 2 MiB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = word_count(n);
        Self {
            n,
            words_per_row,
            words: vec![0; n * words_per_row],
        }
    }

    /// The number of rows (and columns).
    #[inline]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Sets the bit at `(i, j)` **and** its mirror `(j, i)` — an undirected edge.
    #[inline]
    pub fn set_edge(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.words[i * self.words_per_row + j / WORD_BITS] |= 1u64 << (j % WORD_BITS);
        self.words[j * self.words_per_row + i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Whether the bit at `(i, j)` is set.
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.words[i * self.words_per_row + j / WORD_BITS] >> (j % WORD_BITS) & 1 != 0
    }

    /// Row `i` as bitset words, directly usable with the [`Bitset`] intersection
    /// operations.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.n, "row out of range");
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }
}

/// A reusable pool of same-capacity scratch [`Bitset`]s.
///
/// The branch-and-bound needs one candidate bitset per recursion depth; allocating a
/// fresh `Vec<u64>` per node dominated the hot loop. A pool hands out previously
/// released bitsets instead, so steady-state recursion allocates nothing. Pools are
/// per-worker (not shared), so acquisition is a plain `Vec::pop`.
///
/// Buffers come back dirty: the acquire methods therefore always overwrite every word
/// ([`acquire_copy`](Self::acquire_copy) / [`acquire_intersection`](Self::acquire_intersection))
/// rather than exposing a "blank" buffer that could leak stale bits.
#[derive(Debug, Default)]
pub struct BitsetPool {
    nbits: usize,
    free: Vec<Bitset>,
}

impl BitsetPool {
    /// A pool handing out bitsets of capacity `nbits`.
    pub fn new(nbits: usize) -> Self {
        Self {
            nbits,
            free: Vec::new(),
        }
    }

    /// The capacity of the bitsets this pool hands out.
    #[inline]
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Re-targets the pool to a new capacity, dropping cached buffers if the capacity
    /// actually changed. Lets one worker reuse its pool across components of different
    /// sizes.
    pub fn reset(&mut self, nbits: usize) {
        if self.nbits != nbits {
            self.nbits = nbits;
            self.free.clear();
        }
    }

    /// Acquires a bitset holding a copy of `src` (which must match the pool capacity).
    pub fn acquire_copy(&mut self, src: &Bitset) -> Bitset {
        debug_assert_eq!(src.capacity(), self.nbits, "pool capacity mismatch");
        match self.free.pop() {
            Some(mut buf) => {
                buf.copy_from(src);
                buf
            }
            None => src.clone(),
        }
    }

    /// Acquires a bitset holding `set ∩ other`, returning it together with its
    /// population count (fused in one pass via [`Bitset::intersect_into`]).
    pub fn acquire_intersection(&mut self, set: &Bitset, other: &[u64]) -> (Bitset, usize) {
        debug_assert_eq!(set.capacity(), self.nbits, "pool capacity mismatch");
        let mut buf = self.free.pop().unwrap_or_else(|| Bitset::new(self.nbits));
        let count = set.intersect_into(other, &mut buf);
        (buf, count)
    }

    /// Returns a bitset to the pool for reuse.
    pub fn release(&mut self, buf: Bitset) {
        debug_assert_eq!(buf.capacity(), self.nbits, "pool capacity mismatch");
        self.free.push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = Bitset::new(130);
        assert_eq!(s.capacity(), 130);
        assert!(s.is_empty());
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 7);
        // Removing an absent element is a no-op.
        s.remove(64);
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn full_sets_exactly_the_capacity() {
        for n in [0usize, 1, 63, 64, 65, 128, 130] {
            let s = Bitset::full(n);
            assert_eq!(s.count(), n, "n = {n}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        }
        // No stray bits above the capacity in the last word.
        let s = Bitset::full(65);
        assert_eq!(s.words()[1], 1);
    }

    #[test]
    fn iteration_is_ascending_and_matches_first_set() {
        let mut s = Bitset::new(200);
        for i in [5usize, 64, 66, 150, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 66, 150, 199]);
        assert_eq!(s.first_set(), Some(5));
        s.remove(5);
        assert_eq!(s.first_set(), Some(64));
        let empty = Bitset::new(100);
        assert_eq!(empty.first_set(), None);
        assert_eq!(empty.iter().count(), 0);
        assert_eq!((&s).into_iter().count(), 4);
    }

    #[test]
    fn intersections() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        for i in 0..100 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
        }
        // Multiples of 6 in 0..100: 0, 6, ..., 96 → 17 of them.
        assert_eq!(a.intersection_count(b.words()), 17);
        let c = a.intersection_with(b.words());
        assert_eq!(c.count(), 17);
        assert!(c.iter().all(|i| i % 6 == 0));
        let mut d = a.clone();
        d.intersect_with(b.words());
        assert_eq!(d, c);
    }

    #[test]
    fn union_and_difference() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        for i in 0..100 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
        }
        // |evens ∪ multiples-of-3| = 50 + 34 - 17.
        let u = a.union_with(b.words());
        assert_eq!(u.count(), 67);
        assert!(u.iter().all(|i| i % 2 == 0 || i % 3 == 0));
        // evens \ multiples-of-3: 50 - 17.
        let d = a.difference_with(b.words());
        assert_eq!(d.count(), 33);
        assert!(d.iter().all(|i| i % 2 == 0 && i % 3 != 0));
        // Difference against self empties; union with self is identity.
        assert!(a.difference_with(a.words()).is_empty());
        assert_eq!(a.union_with(a.words()), a);
    }

    #[test]
    fn bit_matrix_roundtrip() {
        let mut m = BitMatrix::new(70);
        assert_eq!(m.order(), 70);
        m.set_edge(0, 69);
        m.set_edge(3, 4);
        assert!(m.contains(0, 69) && m.contains(69, 0));
        assert!(m.contains(3, 4) && m.contains(4, 3));
        assert!(!m.contains(0, 1));
        // Rows interoperate with Bitset: N(69) ∩ {0..70} = {0}.
        let all = Bitset::full(70);
        assert_eq!(
            all.intersection_with(m.row(69)).iter().collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(all.intersection_count(m.row(3)), 1);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = Bitset::new(0);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.first_set(), None);
        let m = BitMatrix::new(0);
        assert_eq!(m.order(), 0);
    }

    /// Deterministic pseudo-random bitset for kernel cross-checks.
    fn scrambled(nbits: usize, mut seed: u64) -> Bitset {
        let mut s = Bitset::new(nbits);
        for i in 0..nbits {
            // SplitMix64 step.
            seed = seed.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            if (z ^ (z >> 31)) & 1 == 1 {
                s.insert(i);
            }
        }
        s
    }

    #[test]
    fn unrolled_intersection_count_matches_naive() {
        // Sweep capacities across the 4-word unroll boundary (0..4 remainder words).
        for nbits in [0usize, 1, 64, 65, 192, 256, 257, 500, 1024, 1030] {
            let a = scrambled(nbits, 7);
            let b = scrambled(nbits, 99);
            let naive: usize = a
                .words()
                .iter()
                .zip(b.words())
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum();
            assert_eq!(a.intersection_count(b.words()), naive, "nbits = {nbits}");
        }
    }

    #[test]
    fn intersect_into_matches_intersection_with_and_overwrites_stale_bits() {
        for nbits in [1usize, 63, 64, 200, 257, 1000] {
            let a = scrambled(nbits, 11);
            let b = scrambled(nbits, 23);
            // Start from a full (all-stale-bits) scratch to prove every word is written.
            let mut out = Bitset::full(nbits);
            let count = a.intersect_into(b.words(), &mut out);
            let expected = a.intersection_with(b.words());
            assert_eq!(out, expected, "nbits = {nbits}");
            assert_eq!(count, expected.count(), "nbits = {nbits}");
        }
    }

    #[test]
    fn copy_from_replaces_contents() {
        let src = scrambled(130, 5);
        let mut dst = Bitset::full(130);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn pool_reuses_buffers_and_never_leaks_stale_bits() {
        let mut pool = BitsetPool::new(150);
        assert_eq!(pool.nbits(), 150);
        let a = scrambled(150, 1);
        let b = scrambled(150, 2);

        let copy = pool.acquire_copy(&a);
        assert_eq!(copy, a);
        pool.release(copy);

        // The recycled buffer still holds `a`'s bits; the next acquire must fully
        // overwrite them.
        let (inter, count) = pool.acquire_intersection(&b, a.words());
        let expected = b.intersection_with(a.words());
        assert_eq!(inter, expected);
        assert_eq!(count, expected.count());
        pool.release(inter);

        let copy2 = pool.acquire_copy(&b);
        assert_eq!(copy2, b);
    }

    #[test]
    fn pool_reset_retargets_capacity() {
        let mut pool = BitsetPool::new(64);
        let a = Bitset::full(64);
        let buf = pool.acquire_copy(&a);
        pool.release(buf);
        // Same capacity: cached buffers survive.
        pool.reset(64);
        assert_eq!(pool.nbits(), 64);
        // New capacity: the pool must hand out correctly sized buffers.
        pool.reset(130);
        assert_eq!(pool.nbits(), 130);
        let b = Bitset::full(130);
        let buf = pool.acquire_copy(&b);
        assert_eq!(buf.capacity(), 130);
        assert_eq!(buf, b);
    }
}
