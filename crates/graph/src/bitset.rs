//! Fixed-capacity bitsets and dense bitset adjacency matrices.
//!
//! The branch-and-bound search in `rfc-core` spends most of its time intersecting a
//! candidate set with the neighborhood of the branching vertex. Over the small,
//! re-labeled vertex spaces of post-reduction connected components that intersection is
//! fastest as a word-wise AND of `u64` blocks:
//!
//! * [`Bitset`] — a fixed-capacity set of small integers backed by words of `u64`.
//! * [`BitMatrix`] — a dense `n × n` bit matrix, one [`Bitset`]-compatible row per
//!   vertex, used as an adjacency matrix so `candidates ∩ N(v)` is a single AND pass.
//!
//! Both types deliberately expose their raw `&[u64]` words so a [`Bitset`] can be
//! intersected directly with a [`BitMatrix`] row without an intermediate allocation.

/// Number of bits per storage word.
const WORD_BITS: usize = u64::BITS as usize;

#[inline]
fn word_count(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// A fixed-capacity set of integers in `0..capacity`, stored as words of `u64`.
///
/// The capacity is fixed at construction; all per-element operations are `O(1)` and the
/// set-wide operations (`count`, intersections) are `O(capacity / 64)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    nbits: usize,
    words: Vec<u64>,
}

impl Bitset {
    /// Creates an empty bitset with room for values in `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        Self {
            nbits,
            words: vec![0; word_count(nbits)],
        }
    }

    /// Creates a bitset with every value in `0..nbits` present.
    pub fn full(nbits: usize) -> Self {
        let mut words = vec![u64::MAX; word_count(nbits)];
        if let Some(last) = words.last_mut() {
            let used = nbits % WORD_BITS;
            if used != 0 {
                *last = (1u64 << used) - 1;
            }
        }
        Self { nbits, words }
    }

    /// The fixed capacity: values must lie in `0..capacity()`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `i` into the set.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.nbits, "bit {i} out of range 0..{}", self.nbits);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes `i` from the set.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.nbits, "bit {i} out of range 0..{}", self.nbits);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits, "bit {i} out of range 0..{}", self.nbits);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 != 0
    }

    /// Number of elements in the set (population count).
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The smallest element of the set, if any.
    #[inline]
    pub fn first_set(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|wi| wi * WORD_BITS + self.words[wi].trailing_zeros() as usize)
    }

    /// The raw storage words (least-significant bit of word 0 is element 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// `|self ∩ other|` where `other` is the word representation of a set with the same
    /// capacity (another [`Bitset`]'s [`words`](Self::words) or a [`BitMatrix`] row).
    #[inline]
    pub fn intersection_count(&self, other: &[u64]) -> usize {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        self.words
            .iter()
            .zip(other)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns `self ∩ other` as a new bitset (`other` as in
    /// [`intersection_count`](Self::intersection_count)).
    #[inline]
    pub fn intersection_with(&self, other: &[u64]) -> Bitset {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        Bitset {
            nbits: self.nbits,
            words: self.words.iter().zip(other).map(|(a, b)| a & b).collect(),
        }
    }

    /// Intersects in place: `self ← self ∩ other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &[u64]) {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other) {
            *a &= b;
        }
    }

    /// Returns `self ∪ other` as a new bitset (`other` as in
    /// [`intersection_count`](Self::intersection_count)).
    #[inline]
    pub fn union_with(&self, other: &[u64]) -> Bitset {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        Bitset {
            nbits: self.nbits,
            words: self.words.iter().zip(other).map(|(a, b)| a | b).collect(),
        }
    }

    /// Returns `self \ other` as a new bitset (`other` as in
    /// [`intersection_count`](Self::intersection_count)).
    #[inline]
    pub fn difference_with(&self, other: &[u64]) -> Bitset {
        debug_assert_eq!(self.words.len(), other.len(), "capacity mismatch");
        Bitset {
            nbits: self.nbits,
            words: self.words.iter().zip(other).map(|(a, b)| a & !b).collect(),
        }
    }

    /// Iterates the elements of the set in increasing order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a Bitset {
    type Item = usize;
    type IntoIter = SetBits<'a>;

    fn into_iter(self) -> SetBits<'a> {
        self.iter()
    }
}

/// Iterator over the elements of a [`Bitset`], in increasing order.
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear the lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// A dense `n × n` bit matrix with [`Bitset`]-compatible rows.
///
/// Used as an adjacency matrix over the compact vertex space of one connected component:
/// row `v` is the neighborhood `N(v)` as a bitset, so candidate-set intersection during
/// branching is a word-wise AND against [`row`](Self::row). Memory is `n² / 8` bytes,
/// which is cheap for post-reduction components (a 4 096-vertex component takes 2 MiB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = word_count(n);
        Self {
            n,
            words_per_row,
            words: vec![0; n * words_per_row],
        }
    }

    /// The number of rows (and columns).
    #[inline]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Sets the bit at `(i, j)` **and** its mirror `(j, i)` — an undirected edge.
    #[inline]
    pub fn set_edge(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.words[i * self.words_per_row + j / WORD_BITS] |= 1u64 << (j % WORD_BITS);
        self.words[j * self.words_per_row + i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Whether the bit at `(i, j)` is set.
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.words[i * self.words_per_row + j / WORD_BITS] >> (j % WORD_BITS) & 1 != 0
    }

    /// Row `i` as bitset words, directly usable with the [`Bitset`] intersection
    /// operations.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.n, "row out of range");
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = Bitset::new(130);
        assert_eq!(s.capacity(), 130);
        assert!(s.is_empty());
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 7);
        // Removing an absent element is a no-op.
        s.remove(64);
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn full_sets_exactly_the_capacity() {
        for n in [0usize, 1, 63, 64, 65, 128, 130] {
            let s = Bitset::full(n);
            assert_eq!(s.count(), n, "n = {n}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        }
        // No stray bits above the capacity in the last word.
        let s = Bitset::full(65);
        assert_eq!(s.words()[1], 1);
    }

    #[test]
    fn iteration_is_ascending_and_matches_first_set() {
        let mut s = Bitset::new(200);
        for i in [5usize, 64, 66, 150, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 66, 150, 199]);
        assert_eq!(s.first_set(), Some(5));
        s.remove(5);
        assert_eq!(s.first_set(), Some(64));
        let empty = Bitset::new(100);
        assert_eq!(empty.first_set(), None);
        assert_eq!(empty.iter().count(), 0);
        assert_eq!((&s).into_iter().count(), 4);
    }

    #[test]
    fn intersections() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        for i in 0..100 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
        }
        // Multiples of 6 in 0..100: 0, 6, ..., 96 → 17 of them.
        assert_eq!(a.intersection_count(b.words()), 17);
        let c = a.intersection_with(b.words());
        assert_eq!(c.count(), 17);
        assert!(c.iter().all(|i| i % 6 == 0));
        let mut d = a.clone();
        d.intersect_with(b.words());
        assert_eq!(d, c);
    }

    #[test]
    fn union_and_difference() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        for i in 0..100 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
        }
        // |evens ∪ multiples-of-3| = 50 + 34 - 17.
        let u = a.union_with(b.words());
        assert_eq!(u.count(), 67);
        assert!(u.iter().all(|i| i % 2 == 0 || i % 3 == 0));
        // evens \ multiples-of-3: 50 - 17.
        let d = a.difference_with(b.words());
        assert_eq!(d.count(), 33);
        assert!(d.iter().all(|i| i % 2 == 0 && i % 3 != 0));
        // Difference against self empties; union with self is identity.
        assert!(a.difference_with(a.words()).is_empty());
        assert_eq!(a.union_with(a.words()), a);
    }

    #[test]
    fn bit_matrix_roundtrip() {
        let mut m = BitMatrix::new(70);
        assert_eq!(m.order(), 70);
        m.set_edge(0, 69);
        m.set_edge(3, 4);
        assert!(m.contains(0, 69) && m.contains(69, 0));
        assert!(m.contains(3, 4) && m.contains(4, 3));
        assert!(!m.contains(0, 1));
        // Rows interoperate with Bitset: N(69) ∩ {0..70} = {0}.
        let all = Bitset::full(70);
        assert_eq!(
            all.intersection_with(m.row(69)).iter().collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(all.intersection_count(m.row(3)), 1);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = Bitset::new(0);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.first_set(), None);
        let m = BitMatrix::new(0);
        assert_eq!(m.order(), 0);
    }
}
