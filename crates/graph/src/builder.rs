//! Mutable graph construction.
//!
//! [`GraphBuilder`] accumulates vertices (with attributes) and edges, then produces an
//! immutable [`AttributedGraph`]. The builder is forgiving: duplicate edges and
//! self-loops are silently dropped (real-world edge lists contain both), but edges that
//! reference vertices outside the declared range are reported as [`BuildError`]s.

use crate::attr::Attribute;
use crate::graph::{AttributedGraph, VertexId};

/// Errors reported by [`GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge referenced a vertex id outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The number of declared vertices.
        num_vertices: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "edge endpoint {vertex} out of range for graph with {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`AttributedGraph`].
///
/// Vertices are identified by dense ids `0..n`; attributes default to [`Attribute::A`]
/// until set. Edges may be added in any order and direction.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    attributes: Vec<Attribute>,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices, all initially [`Attribute::A`].
    pub fn new(n: usize) -> Self {
        Self {
            attributes: vec![Attribute::A; n],
            edges: Vec::new(),
        }
    }

    /// Creates a builder with the given per-vertex attributes.
    pub fn with_attributes(attributes: Vec<Attribute>) -> Self {
        Self {
            attributes,
            edges: Vec::new(),
        }
    }

    /// The number of declared vertices.
    pub fn num_vertices(&self) -> usize {
        self.attributes.len()
    }

    /// Appends a new vertex with the given attribute and returns its id.
    pub fn add_vertex(&mut self, attr: Attribute) -> VertexId {
        self.attributes.push(attr);
        (self.attributes.len() - 1) as VertexId
    }

    /// Sets the attribute of an existing vertex.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn set_attribute(&mut self, v: VertexId, attr: Attribute) {
        self.attributes[v as usize] = attr;
    }

    /// Adds an undirected edge `(u, v)`. Self-loops and duplicates are dropped at
    /// [`Self::build`] time; out-of-range endpoints are reported then as well.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Adds every edge from an iterator of `(u, v)` pairs.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, edges: I) {
        self.edges.extend(edges);
    }

    /// Number of edge insertions so far (before dedup / self-loop removal).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into an immutable [`AttributedGraph`].
    ///
    /// Self-loops are removed, duplicate edges collapsed, and neighbor lists sorted.
    pub fn build(self) -> Result<AttributedGraph, BuildError> {
        let n = self.attributes.len();
        let mut canonical: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.edges.len());
        for (u, v) in self.edges {
            if u as usize >= n {
                return Err(BuildError::VertexOutOfRange {
                    vertex: u,
                    num_vertices: n,
                });
            }
            if v as usize >= n {
                return Err(BuildError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: n,
                });
            }
            if u == v {
                continue; // drop self-loop
            }
            canonical.push((u.min(v), u.max(v)));
        }
        canonical.sort_unstable();
        canonical.dedup();
        Ok(AttributedGraph::from_parts(self.attributes, canonical))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn deduplicates_and_drops_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in the other direction
        b.add_edge(0, 1); // exact duplicate
        b.add_edge(2, 2); // self loop
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 1);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn rejects_out_of_range_endpoints() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            BuildError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn add_vertex_and_attributes() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_vertex(Attribute::B);
        assert_eq!(v, 1);
        b.set_attribute(0, Attribute::B);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.attribute(0), Attribute::B);
        assert_eq!(g.attribute(1), Attribute::B);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn with_attributes_and_bulk_edges() {
        let attrs = vec![Attribute::A, Attribute::B, Attribute::A, Attribute::B];
        let mut b = GraphBuilder::with_attributes(attrs);
        b.add_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(b.num_pending_edges(), 4);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
    }
}
