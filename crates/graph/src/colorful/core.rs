//! Colorful k-cores, colorful core numbers, colorful degeneracy and the colorful
//! h-index (Definitions 3, 8, 9 and 10).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::coloring::Coloring;
use crate::cores::h_index_of;
use crate::graph::{AttributedGraph, VertexId};

use super::degrees::{colorful_degrees, NeighborColorCounts};

/// Result of the colorful core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorfulCoreDecomposition {
    /// Colorful core number of each vertex (Definition 8).
    pub core_numbers: Vec<u32>,
    /// Colorful degeneracy: the maximum colorful core number (Definition 9).
    pub colorful_degeneracy: u32,
    /// Peeling order (vertices removed earliest first). This is the colorful-core based
    /// ordering `CalColorOD` used by the branch-and-bound framework: vertices that
    /// survive longest (largest colorful core number) appear last.
    pub order: Vec<VertexId>,
}

/// Membership mask of the colorful k-core (Definition 3): the maximal subgraph `H` in
/// which every vertex has `min(D_a(v, H), D_b(v, H)) ≥ k`.
pub fn colorful_k_core_mask(g: &AttributedGraph, coloring: &Coloring, k: usize) -> Vec<bool> {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    if n == 0 {
        return alive;
    }
    let mut counts = NeighborColorCounts::new(g, coloring);
    let mut degs = counts.colorful_degrees();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut queued = vec![false; n];
    for v in g.vertices() {
        if (degs.min_degree(v) as usize) < k {
            queue.push_back(v);
            queued[v as usize] = true;
        }
    }
    while let Some(v) = queue.pop_front() {
        if !alive[v as usize] {
            continue;
        }
        alive[v as usize] = false;
        let color_v = coloring.color(v);
        let attr_v = g.attribute(v);
        for &u in g.neighbors(v) {
            if !alive[u as usize] {
                continue;
            }
            if counts.remove_neighbor(u, color_v, attr_v) {
                degs.per_attr[u as usize][attr_v.index()] -= 1;
                if (degs.min_degree(u) as usize) < k && !queued[u as usize] {
                    queue.push_back(u);
                    queued[u as usize] = true;
                }
            }
        }
    }
    alive
}

/// Vertices of the colorful k-core, as a sorted list.
pub fn colorful_k_core_vertices(
    g: &AttributedGraph,
    coloring: &Coloring,
    k: usize,
) -> Vec<VertexId> {
    colorful_k_core_mask(g, coloring, k)
        .iter()
        .enumerate()
        .filter_map(|(v, &keep)| keep.then_some(v as VertexId))
        .collect()
}

/// Full colorful core decomposition: colorful core numbers (Definition 8), colorful
/// degeneracy (Definition 9), and the peeling order (`CalColorOD`).
///
/// Uses lazy-deletion heap peeling on `D_min`: repeatedly remove the vertex with the
/// currently smallest `D_min`; its colorful core number is the running maximum of the
/// values at removal time. Runs in `O((|V| + |E|) log |V|)`.
pub fn colorful_core_decomposition(
    g: &AttributedGraph,
    coloring: &Coloring,
) -> ColorfulCoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return ColorfulCoreDecomposition {
            core_numbers: Vec::new(),
            colorful_degeneracy: 0,
            order: Vec::new(),
        };
    }
    let mut counts = NeighborColorCounts::new(g, coloring);
    let mut degs = counts.colorful_degrees();
    let mut alive = vec![true; n];
    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = g
        .vertices()
        .map(|v| Reverse((degs.min_degree(v), v)))
        .collect();
    let mut running_max = 0u32;
    while let Some(Reverse((d, v))) = heap.pop() {
        if !alive[v as usize] || d != degs.min_degree(v) {
            continue; // stale heap entry
        }
        alive[v as usize] = false;
        running_max = running_max.max(d);
        core[v as usize] = running_max;
        order.push(v);
        let color_v = coloring.color(v);
        let attr_v = g.attribute(v);
        for &u in g.neighbors(v) {
            if !alive[u as usize] {
                continue;
            }
            if counts.remove_neighbor(u, color_v, attr_v) {
                degs.per_attr[u as usize][attr_v.index()] -= 1;
                heap.push(Reverse((degs.min_degree(u), u)));
            }
        }
    }
    let colorful_degeneracy = core.iter().copied().max().unwrap_or(0);
    ColorfulCoreDecomposition {
        core_numbers: core,
        colorful_degeneracy,
        order,
    }
}

/// The colorful h-index of the graph (Definition 10): the largest `h` such that at least
/// `h` vertices have `D_min(v) ≥ h`.
pub fn colorful_h_index(g: &AttributedGraph, coloring: &Coloring) -> usize {
    let degs = colorful_degrees(g, coloring);
    let values: Vec<usize> = g.vertices().map(|v| degs.min_degree(v) as usize).collect();
    h_index_of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::greedy_coloring;
    use crate::fixtures;

    #[test]
    fn colorful_core_of_balanced_clique() {
        // K8 alternating: every vertex sees 3 colors of its own attribute and 4 of the
        // other, so Dmin = 3 everywhere: the graph is a colorful 3-core but not 4-core.
        let g = fixtures::balanced_clique(8);
        let c = greedy_coloring(&g);
        assert_eq!(colorful_k_core_vertices(&g, &c, 3).len(), 8);
        assert!(colorful_k_core_vertices(&g, &c, 4).is_empty());
        let d = colorful_core_decomposition(&g, &c);
        assert_eq!(d.colorful_degeneracy, 3);
        assert!(d.core_numbers.iter().all(|&x| x == 3));
        assert_eq!(colorful_h_index(&g, &c), 3);
    }

    #[test]
    fn colorful_core_peels_unbalanced_parts() {
        // Two cliques joined by a bridge: the all-a clique has D_b = 0 everywhere, so it
        // is peeled away entirely even for k = 1.
        let g = fixtures::two_cliques_with_bridge(6, 5);
        let c = greedy_coloring(&g);
        let keep = colorful_k_core_vertices(&g, &c, 1);
        assert!(keep.iter().all(|&v| (v as usize) < 6));
        assert!(!keep.is_empty());
    }

    #[test]
    fn colorful_core_nesting() {
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        for k in 0..5usize {
            let inner = colorful_k_core_vertices(&g, &c, k + 1);
            let outer = colorful_k_core_vertices(&g, &c, k);
            assert!(inner.iter().all(|v| outer.contains(v)), "nesting at k={k}");
        }
    }

    #[test]
    fn core_numbers_agree_with_k_core_membership() {
        // v is in the colorful k-core iff ccore(v) >= k.
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        let decomp = colorful_core_decomposition(&g, &c);
        for k in 0..=4usize {
            let mask = colorful_k_core_mask(&g, &c, k);
            for v in g.vertices() {
                assert_eq!(
                    mask[v as usize],
                    decomp.core_numbers[v as usize] as usize >= k,
                    "vertex {v}, k={k}"
                );
            }
        }
    }

    #[test]
    fn peeling_order_is_permutation() {
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        let decomp = colorful_core_decomposition(&g, &c);
        let mut sorted = decomp.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.num_vertices() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn colorful_degeneracy_bounds_fair_clique_side() {
        // In the Fig. 1 fixture the maximum fair clique (k=3, δ=1) has 7 vertices with
        // 4 a's and 3 b's. Its members must survive in the colorful 2-core (Lemma 1 with
        // k=3), so the colorful degeneracy is at least 2.
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        let d = colorful_core_decomposition(&g, &c);
        assert!(d.colorful_degeneracy >= 2);
    }

    #[test]
    fn empty_graph() {
        let g = crate::builder::GraphBuilder::new(0).build().unwrap();
        let c = greedy_coloring(&g);
        let d = colorful_core_decomposition(&g, &c);
        assert_eq!(d.colorful_degeneracy, 0);
        assert!(colorful_k_core_vertices(&g, &c, 0).is_empty());
        assert_eq!(colorful_h_index(&g, &c), 0);
    }

    #[test]
    fn path_graph_has_zero_colorful_core() {
        // In a path with alternating attributes each endpoint has a single neighbor, so
        // Dmin = 0 at the ends; interior vertices have one neighbor of each attribute.
        let g = fixtures::path_graph(5);
        let c = greedy_coloring(&g);
        let keep1 = colorful_k_core_vertices(&g, &c, 1);
        // The whole path unravels for k = 1: once the endpoints go, their neighbors
        // lose their only a- or b-neighbor, and so on.
        assert!(keep1.is_empty());
        let d = colorful_core_decomposition(&g, &c);
        assert!(d.colorful_degeneracy <= 1);
    }
}
