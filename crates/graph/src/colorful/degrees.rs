//! Colorful degrees (Definition 2) and the per-vertex neighbor color counting structure
//! shared by the colorful-core and enhanced-colorful-core peelings.

use std::collections::HashMap;

use crate::attr::Attribute;
use crate::coloring::Coloring;
use crate::graph::{AttributedGraph, VertexId};

/// Per-vertex colorful degrees: `D_a(v)` and `D_b(v)` — the number of distinct colors
/// among `v`'s neighbors with attribute `a` (resp. `b`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorfulDegrees {
    /// `per_attr[v] = [D_a(v), D_b(v)]`.
    pub per_attr: Vec<[u32; 2]>,
}

impl ColorfulDegrees {
    /// `D_attr(v)`.
    #[inline]
    pub fn degree(&self, v: VertexId, attr: Attribute) -> u32 {
        self.per_attr[v as usize][attr.index()]
    }

    /// `D_min(v) = min(D_a(v), D_b(v))` (Definition 10 uses this quantity).
    #[inline]
    pub fn min_degree(&self, v: VertexId) -> u32 {
        let [a, b] = self.per_attr[v as usize];
        a.min(b)
    }

    /// `D_a(v) + D_b(v)`.
    #[inline]
    pub fn sum_degree(&self, v: VertexId) -> u32 {
        let [a, b] = self.per_attr[v as usize];
        a + b
    }
}

/// Mutable per-vertex counts of neighbors by `(color, attribute)`.
///
/// `counts(v)[color] = [#a-neighbors of v with that color, #b-neighbors …]`. The peeling
/// algorithms decrement these counts as vertices/edges are removed and derive colorful
/// degrees (a color contributes to `D_attr(v)` while its count for `attr` is non-zero).
#[derive(Debug, Clone)]
pub struct NeighborColorCounts {
    counts: Vec<HashMap<u32, [u32; 2]>>,
}

impl NeighborColorCounts {
    /// Builds the counts for every vertex of `g` under `coloring`.
    pub fn new(g: &AttributedGraph, coloring: &Coloring) -> Self {
        let n = g.num_vertices();
        let mut counts: Vec<HashMap<u32, [u32; 2]>> = vec![HashMap::new(); n];
        for v in g.vertices() {
            let map = &mut counts[v as usize];
            for &u in g.neighbors(v) {
                let entry = map.entry(coloring.color(u)).or_insert([0, 0]);
                entry[g.attribute(u).index()] += 1;
            }
        }
        Self { counts }
    }

    /// Builds the counts restricted to vertices in `mask` (both the center vertex and
    /// its neighbors must be in the mask).
    pub fn new_masked(g: &AttributedGraph, coloring: &Coloring, mask: &[bool]) -> Self {
        let n = g.num_vertices();
        let mut counts: Vec<HashMap<u32, [u32; 2]>> = vec![HashMap::new(); n];
        for v in g.vertices() {
            if !mask[v as usize] {
                continue;
            }
            let map = &mut counts[v as usize];
            for &u in g.neighbors(v) {
                if !mask[u as usize] {
                    continue;
                }
                let entry = map.entry(coloring.color(u)).or_insert([0, 0]);
                entry[g.attribute(u).index()] += 1;
            }
        }
        Self { counts }
    }

    /// The colorful degrees implied by the current counts.
    pub fn colorful_degrees(&self) -> ColorfulDegrees {
        let per_attr = self
            .counts
            .iter()
            .map(|map| {
                let mut d = [0u32; 2];
                for &[ca, cb] in map.values() {
                    if ca > 0 {
                        d[0] += 1;
                    }
                    if cb > 0 {
                        d[1] += 1;
                    }
                }
                d
            })
            .collect();
        ColorfulDegrees { per_attr }
    }

    /// Removes one neighbor `w` (with the given color and attribute) from `v`'s view.
    ///
    /// Returns `true` if the count for `(color, attribute)` dropped to zero — i.e. the
    /// colorful degree `D_attr(v)` decreased by one.
    pub fn remove_neighbor(&mut self, v: VertexId, color: u32, attr: Attribute) -> bool {
        let map = &mut self.counts[v as usize];
        let entry = map
            .get_mut(&color)
            .expect("removing a neighbor color that was never counted");
        let slot = &mut entry[attr.index()];
        assert!(*slot > 0, "neighbor color count underflow");
        *slot -= 1;
        let exhausted = *slot == 0;
        if entry[0] == 0 && entry[1] == 0 {
            map.remove(&color);
        }
        exhausted
    }

    /// Current count for `(v, color, attr)`.
    pub fn count(&self, v: VertexId, color: u32, attr: Attribute) -> u32 {
        self.counts[v as usize]
            .get(&color)
            .map(|e| e[attr.index()])
            .unwrap_or(0)
    }

    /// Iterates over `(color, [count_a, count_b])` entries of vertex `v`.
    pub fn colors_of(&self, v: VertexId) -> impl Iterator<Item = (u32, [u32; 2])> + '_ {
        self.counts[v as usize].iter().map(|(&c, &e)| (c, e))
    }
}

/// Computes the colorful degrees of every vertex (Definition 2).
pub fn colorful_degrees(g: &AttributedGraph, coloring: &Coloring) -> ColorfulDegrees {
    NeighborColorCounts::new(g, coloring).colorful_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::greedy_coloring;
    use crate::fixtures;

    #[test]
    fn colorful_degrees_on_balanced_clique() {
        // In K6 with alternating attributes every vertex has 3 neighbors of one
        // attribute and 2 of the other, all distinctly colored.
        let g = fixtures::balanced_clique(6);
        let c = greedy_coloring(&g);
        let d = colorful_degrees(&g, &c);
        for v in g.vertices() {
            let mine = g.attribute(v);
            // 2 neighbors share my attribute, 3 have the other.
            assert_eq!(d.degree(v, mine), 2);
            assert_eq!(d.degree(v, mine.other()), 3);
            assert_eq!(d.min_degree(v), 2);
            assert_eq!(d.sum_degree(v), 5);
        }
    }

    #[test]
    fn colorful_degree_counts_distinct_colors_not_neighbors() {
        // Star: center 0 with 4 leaves of attribute B. Leaves are pairwise
        // non-adjacent, so greedy coloring gives them all the same color; the center's
        // colorful b-degree is 1 even though it has 4 b-neighbors.
        let mut b = crate::builder::GraphBuilder::new(5);
        b.set_attribute(0, Attribute::A);
        for v in 1..5 {
            b.set_attribute(v, Attribute::B);
            b.add_edge(0, v);
        }
        let g = b.build().unwrap();
        let c = greedy_coloring(&g);
        let d = colorful_degrees(&g, &c);
        assert_eq!(d.degree(0, Attribute::B), 1);
        assert_eq!(d.degree(0, Attribute::A), 0);
        assert_eq!(d.min_degree(0), 0);
        for v in 1..5 {
            assert_eq!(d.degree(v, Attribute::A), 1);
            assert_eq!(d.degree(v, Attribute::B), 0);
        }
    }

    #[test]
    fn fig1_graph_is_a_colorful_2_core_candidate() {
        // Example 2 states Dmin(u, G) >= 2 for every vertex of the Fig. 1 graph. Our
        // fixture is only adapted from the figure, so check the planted-clique side
        // which must certainly satisfy it.
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        let d = colorful_degrees(&g, &c);
        for v in [6u32, 7, 9, 10, 11, 12, 13, 14] {
            assert!(d.min_degree(v) >= 2, "vertex {v} has Dmin < 2");
        }
    }

    #[test]
    fn remove_neighbor_updates_counts() {
        let g = fixtures::balanced_clique(4);
        let coloring = greedy_coloring(&g);
        let mut counts = NeighborColorCounts::new(&g, &coloring);
        let v = 0u32;
        let w = 1u32;
        let color_w = coloring.color(w);
        let attr_w = g.attribute(w);
        assert_eq!(counts.count(v, color_w, attr_w), 1);
        let exhausted = counts.remove_neighbor(v, color_w, attr_w);
        assert!(exhausted);
        assert_eq!(counts.count(v, color_w, attr_w), 0);
        let d = counts.colorful_degrees();
        // v lost one distinct color of w's attribute.
        let full = colorful_degrees(&g, &coloring);
        assert_eq!(d.degree(v, attr_w) + 1, full.degree(v, attr_w));
    }

    #[test]
    fn masked_counts_ignore_outside_vertices() {
        let g = fixtures::fig1_graph();
        let coloring = greedy_coloring(&g);
        let mut mask = vec![false; g.num_vertices()];
        for v in [6usize, 7, 9, 10] {
            mask[v] = true;
        }
        let counts = NeighborColorCounts::new_masked(&g, &coloring, &mask);
        let d = counts.colorful_degrees();
        // Within {v7, v8, v10, v11}: v11 (id 10, attribute a) sees 3 b... actually
        // v7, v8, v10 are b and v11 is a; so id 10 sees 3 distinct b-colors, 0 a.
        assert_eq!(d.degree(10, Attribute::B), 3);
        assert_eq!(d.degree(10, Attribute::A), 0);
        // Vertices outside the mask have empty counts.
        assert_eq!(d.degree(0, Attribute::A), 0);
        assert_eq!(d.degree(0, Attribute::B), 0);
    }

    #[test]
    #[should_panic(expected = "never counted")]
    fn remove_unknown_neighbor_panics() {
        let g = fixtures::path_graph(3);
        let coloring = greedy_coloring(&g);
        let mut counts = NeighborColorCounts::new(&g, &coloring);
        // Vertex 0 has no neighbor with a bogus color id 99.
        counts.remove_neighbor(0, 99, Attribute::A);
    }
}
