//! Enhanced colorful degree and enhanced colorful k-core (Definitions 4–5).
//!
//! The plain colorful degree counts colors per attribute independently, so one color can
//! be counted for both attributes. Inside a fair clique this cannot happen: a clique's
//! vertices are pairwise adjacent, hence all differently colored, so each color belongs
//! to exactly one attribute. The *enhanced* colorful degree therefore assigns every
//! neighbor color exclusively to one attribute and asks how balanced the best assignment
//! can be:
//!
//! `ED(u) = max over assignments of min(#colors assigned to a, #colors assigned to b)`.
//!
//! Splitting the neighbor colors of `u` into exclusive-a (`ca`), exclusive-b (`cb`) and
//! mixed (`cm`) groups, the optimum has the closed form implemented by
//! [`enhanced_colorful_degree_from_groups`]. If `u` belongs to a relative fair clique
//! with parameter `k`, its clique neighbors provide at least `k − 1` colors exclusive to
//! `u`'s own attribute and `k` to the other, so `ED(u) ≥ k − 1` (Lemma 2): any fair
//! clique is contained in the enhanced colorful `(k−1)`-core.

use std::collections::VecDeque;

use crate::attr::Attribute;
use crate::coloring::Coloring;
use crate::graph::{AttributedGraph, VertexId};

use super::degrees::NeighborColorCounts;

/// The partition of a vertex's (or an edge's common-) neighbor colors into exclusive and
/// mixed groups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColorGroups {
    /// `exclusive[0]` = number of colors seen only on attribute-a neighbors (`c_a`);
    /// `exclusive[1]` = only on attribute-b neighbors (`c_b`).
    pub exclusive: [usize; 2],
    /// Number of colors seen on neighbors of both attributes (`c_m`).
    pub mixed: usize,
}

impl ColorGroups {
    /// Builds groups from per-color attribute counts.
    pub fn from_counts<'a, I: IntoIterator<Item = &'a [u32; 2]>>(counts: I) -> Self {
        let mut g = ColorGroups::default();
        for &[a, b] in counts {
            match (a > 0, b > 0) {
                (true, true) => g.mixed += 1,
                (true, false) => g.exclusive[0] += 1,
                (false, true) => g.exclusive[1] += 1,
                (false, false) => {}
            }
        }
        g
    }

    /// Classifies a single color given its per-attribute counts.
    fn class_of(counts: [u32; 2]) -> Option<usize> {
        match (counts[0] > 0, counts[1] > 0) {
            (true, true) => Some(2),
            (true, false) => Some(0),
            (false, true) => Some(1),
            (false, false) => None,
        }
    }

    /// Total number of distinct colors.
    pub fn total(&self) -> usize {
        self.exclusive[0] + self.exclusive[1] + self.mixed
    }

    /// The enhanced colorful degree implied by these groups.
    pub fn enhanced_degree(&self) -> usize {
        enhanced_colorful_degree_from_groups(self.exclusive[0], self.exclusive[1], self.mixed)
    }

    /// Greedily assigns the mixed colors to satisfy a demand of `need_a` colors for
    /// attribute `a` and `need_b` for attribute `b`, exactly as in the computation of the
    /// enhanced colorful support (Definition 7): first top up attribute `a` from the
    /// mixed pool, then attribute `b` from what remains. Returns the resulting
    /// `(gsup_a, gsup_b)` pair.
    pub fn demand_assignment(&self, need_a: usize, need_b: usize) -> (usize, usize) {
        let ca = self.exclusive[0];
        let cb = self.exclusive[1];
        let cm = self.mixed;
        let take_a = if ca < need_a {
            (need_a - ca).min(cm)
        } else {
            0
        };
        let gsup_a = ca + take_a;
        let remaining = cm - take_a;
        let take_b = if cb < need_b {
            (need_b - cb).min(remaining)
        } else {
            0
        };
        let gsup_b = cb + take_b;
        (gsup_a, gsup_b)
    }
}

/// Closed form of the enhanced colorful degree: the maximum over assignments of the
/// mixed colors of `min(#a-colors, #b-colors)`.
pub fn enhanced_colorful_degree_from_groups(ca: usize, cb: usize, cm: usize) -> usize {
    if ca + cm <= cb {
        ca + cm
    } else if cb + cm <= ca {
        cb + cm
    } else {
        (ca + cb + cm) / 2
    }
}

/// The enhanced colorful degree `ED(u)` of every vertex (Definition 4).
pub fn enhanced_colorful_degrees(g: &AttributedGraph, coloring: &Coloring) -> Vec<usize> {
    let counts = NeighborColorCounts::new(g, coloring);
    g.vertices()
        .map(|v| {
            let groups = ColorGroups::from_counts(
                counts
                    .colors_of(v)
                    .map(|(_, c)| c)
                    .collect::<Vec<_>>()
                    .iter(),
            );
            groups.enhanced_degree()
        })
        .collect()
}

/// Membership mask of the enhanced colorful k-core (Definition 5): the maximal subgraph
/// in which every vertex has `ED(u) ≥ k`.
pub fn enhanced_colorful_k_core_mask(
    g: &AttributedGraph,
    coloring: &Coloring,
    k: usize,
) -> Vec<bool> {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    if n == 0 {
        return alive;
    }
    let mut counts = NeighborColorCounts::new(g, coloring);
    // Per-vertex color groups, maintained incrementally.
    let mut groups: Vec<ColorGroups> = g
        .vertices()
        .map(|v| {
            let per_color: Vec<[u32; 2]> = counts.colors_of(v).map(|(_, c)| c).collect();
            ColorGroups::from_counts(per_color.iter())
        })
        .collect();

    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut queued = vec![false; n];
    for v in g.vertices() {
        if groups[v as usize].enhanced_degree() < k {
            queue.push_back(v);
            queued[v as usize] = true;
        }
    }
    while let Some(v) = queue.pop_front() {
        if !alive[v as usize] {
            continue;
        }
        alive[v as usize] = false;
        let color_v = coloring.color(v);
        let attr_v = g.attribute(v);
        for &u in g.neighbors(v) {
            if !alive[u as usize] {
                continue;
            }
            let before = [
                counts.count(u, color_v, Attribute::A),
                counts.count(u, color_v, Attribute::B),
            ];
            counts.remove_neighbor(u, color_v, attr_v);
            let after = [
                counts.count(u, color_v, Attribute::A),
                counts.count(u, color_v, Attribute::B),
            ];
            let old_class = ColorGroups::class_of(before);
            let new_class = ColorGroups::class_of(after);
            if old_class != new_class {
                let gu = &mut groups[u as usize];
                match old_class {
                    Some(2) => gu.mixed -= 1,
                    Some(i) => gu.exclusive[i] -= 1,
                    None => {}
                }
                match new_class {
                    Some(2) => gu.mixed += 1,
                    Some(i) => gu.exclusive[i] += 1,
                    None => {}
                }
                if gu.enhanced_degree() < k && !queued[u as usize] {
                    queue.push_back(u);
                    queued[u as usize] = true;
                }
            }
        }
    }
    alive
}

/// Vertices of the enhanced colorful k-core, as a sorted list.
pub fn enhanced_colorful_k_core_vertices(
    g: &AttributedGraph,
    coloring: &Coloring,
    k: usize,
) -> Vec<VertexId> {
    enhanced_colorful_k_core_mask(g, coloring, k)
        .iter()
        .enumerate()
        .filter_map(|(v, &keep)| keep.then_some(v as VertexId))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colorful::colorful_k_core_vertices;
    use crate::coloring::greedy_coloring;
    use crate::fixtures;

    #[test]
    fn closed_form_matches_brute_force() {
        // Brute force over all ways to split cm mixed colors.
        for ca in 0..6usize {
            for cb in 0..6usize {
                for cm in 0..6usize {
                    let best = (0..=cm)
                        .map(|x| (ca + x).min(cb + (cm - x)))
                        .max()
                        .unwrap_or(ca.min(cb));
                    assert_eq!(
                        enhanced_colorful_degree_from_groups(ca, cb, cm),
                        best,
                        "ca={ca} cb={cb} cm={cm}"
                    );
                }
            }
        }
    }

    #[test]
    fn demand_assignment_matches_paper_example() {
        // Example 3 / Fig. 2: ca = 1, cb = 2, cm = 2, k = 4, endpoints both attribute a,
        // so the demand is (k-2, k) = (2, 4). Expected gsup_a = 2, gsup_b = 3.
        let groups = ColorGroups {
            exclusive: [1, 2],
            mixed: 2,
        };
        assert_eq!(groups.demand_assignment(2, 4), (2, 3));
        assert_eq!(groups.total(), 5);
    }

    #[test]
    fn demand_assignment_no_mixed() {
        let groups = ColorGroups {
            exclusive: [3, 4],
            mixed: 0,
        };
        assert_eq!(groups.demand_assignment(5, 5), (3, 4));
        assert_eq!(groups.demand_assignment(1, 1), (3, 4));
    }

    #[test]
    fn enhanced_degree_on_balanced_clique() {
        // K8 alternating: every vertex has 3 own-attribute and 4 other-attribute
        // neighbor colors, all exclusive (clique vertices are all distinctly colored),
        // so ED = min(3, 4) = 3.
        let g = fixtures::balanced_clique(8);
        let c = greedy_coloring(&g);
        let ed = enhanced_colorful_degrees(&g, &c);
        assert!(ed.iter().all(|&x| x == 3));
    }

    #[test]
    fn enhanced_core_is_subset_of_colorful_core() {
        // ED(u) <= Dmin-ish relationship: assigning colors exclusively can only reduce
        // the per-attribute color counts, so the enhanced colorful k-core is contained
        // in the colorful k-core.
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        for k in 0..4usize {
            let enhanced = enhanced_colorful_k_core_vertices(&g, &c, k);
            let plain = colorful_k_core_vertices(&g, &c, k);
            assert!(
                enhanced.iter().all(|v| plain.contains(v)),
                "containment failed at k={k}"
            );
        }
    }

    #[test]
    fn enhanced_core_keeps_planted_fair_clique() {
        // The 8-clique of the Fig. 1 fixture has 3 b's and 5 a's. Each of its vertices
        // has, inside the clique, at least 2 own-colors and 3 other-colors, so for
        // k = 2 (i.e. the (k-1)-core for k = 3) all clique vertices must survive.
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        let keep = enhanced_colorful_k_core_vertices(&g, &c, 2);
        for v in [6u32, 7, 9, 10, 11, 12, 13, 14] {
            assert!(keep.contains(&v), "clique vertex {v} was peeled");
        }
    }

    #[test]
    fn all_same_attribute_graph_has_zero_enhanced_core() {
        let g = fixtures::two_cliques_with_bridge(0, 6); // single all-a clique
        let c = greedy_coloring(&g);
        let ed = enhanced_colorful_degrees(&g, &c);
        assert!(ed.iter().all(|&x| x == 0));
        assert!(enhanced_colorful_k_core_vertices(&g, &c, 1).is_empty());
        // k = 0 keeps everything.
        assert_eq!(enhanced_colorful_k_core_vertices(&g, &c, 0).len(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = crate::builder::GraphBuilder::new(0).build().unwrap();
        let c = greedy_coloring(&g);
        assert!(enhanced_colorful_degrees(&g, &c).is_empty());
        assert!(enhanced_colorful_k_core_mask(&g, &c, 1).is_empty());
    }
}
