//! Colorful degrees, colorful cores and their enhanced variants.
//!
//! These are the attribute-and-color-aware analogues of degree and k-core that the
//! paper's reductions and upper bounds are built on:
//!
//! * [`ColorfulDegrees`] / [`colorful_degrees`] — Definition 2: for each vertex, the
//!   number of distinct colors among its neighbors of each attribute.
//! * [`colorful_k_core_mask`] — Definition 3: the maximal subgraph in which every vertex
//!   sees at least `k` distinct colors of **each** attribute among its neighbors.
//! * [`ColorfulCoreDecomposition`] / [`colorful_core_decomposition`] — Definitions 8–9:
//!   colorful core numbers, colorful degeneracy, and the colorful-core peeling order
//!   (`CalColorOD` in Algorithm 2).
//! * [`colorful_h_index`] — Definition 10.
//! * [`enhanced_colorful_degrees`] / [`enhanced_colorful_k_core_mask`] — Definitions 4–5:
//!   the variant in which every color must be assigned exclusively to one attribute.

mod core;
mod degrees;
mod enhanced;

pub use self::core::{
    colorful_core_decomposition, colorful_h_index, colorful_k_core_mask, colorful_k_core_vertices,
    ColorfulCoreDecomposition,
};
pub use self::degrees::{colorful_degrees, ColorfulDegrees, NeighborColorCounts};
pub use self::enhanced::{
    enhanced_colorful_degree_from_groups, enhanced_colorful_degrees, enhanced_colorful_k_core_mask,
    enhanced_colorful_k_core_vertices, ColorGroups,
};
