//! Degree-based greedy proper vertex coloring.
//!
//! Every reduction and bound in the paper is built on a proper coloring of the graph:
//! adjacent vertices get distinct colors, so vertices sharing a color can never coexist
//! in a clique. The paper uses the classic degree-ordered greedy heuristic
//! (largest-degree-first), which runs in `O(|V| + |E|)` time and gives at most
//! `d_max + 1` colors.

use crate::graph::{AttributedGraph, VertexId};

/// A proper vertex coloring of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Color of each vertex, a dense index in `0..num_colors`.
    pub colors: Vec<u32>,
    /// Number of distinct colors used (`color(G)` in the paper).
    pub num_colors: usize,
}

impl Coloring {
    /// The color of vertex `v`.
    #[inline]
    pub fn color(&self, v: VertexId) -> u32 {
        self.colors[v as usize]
    }

    /// Verifies that the coloring is proper for `g`: every edge joins differently
    /// colored vertices and every color index is within range.
    pub fn is_proper(&self, g: &AttributedGraph) -> bool {
        if self.colors.len() != g.num_vertices() {
            return false;
        }
        if self.colors.iter().any(|&c| c as usize >= self.num_colors) {
            return false;
        }
        g.edge_list()
            .iter()
            .all(|&(u, v)| self.colors[u as usize] != self.colors[v as usize])
    }
}

/// Colors the whole graph with the degree-based greedy heuristic.
///
/// Vertices are processed in non-increasing degree order (ties broken by vertex id for
/// determinism); each vertex receives the smallest color not used by its already-colored
/// neighbors.
pub fn greedy_coloring(g: &AttributedGraph) -> Coloring {
    let order: Vec<VertexId> = degree_descending_order(g);
    greedy_coloring_in_order(g, &order)
}

/// Colors only the vertices listed in `vertices` (the induced subgraph view), using the
/// degree-within-the-subset greedy order. Vertices outside the set keep color `u32::MAX`
/// (an invalid marker) and are ignored.
///
/// Returns the coloring over the *full* vertex-id space (so callers can index by
/// original vertex id) together with the number of colors used on the subset.
pub fn greedy_coloring_of_subset(g: &AttributedGraph, vertices: &[VertexId]) -> Coloring {
    let mut in_set = vec![false; g.num_vertices()];
    for &v in vertices {
        in_set[v as usize] = true;
    }
    // Degree restricted to the subset.
    let mut sub_deg: Vec<(usize, VertexId)> = vertices
        .iter()
        .map(|&v| {
            let d = g
                .neighbors(v)
                .iter()
                .filter(|&&u| in_set[u as usize])
                .count();
            (d, v)
        })
        .collect();
    sub_deg.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut colors = vec![u32::MAX; g.num_vertices()];
    let mut used = Vec::new();
    let mut max_color = 0u32;
    let mut any = false;
    for &(_, v) in &sub_deg {
        used.clear();
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if in_set[u as usize] && c != u32::MAX {
                used.push(c);
            }
        }
        let c = smallest_absent(&mut used);
        colors[v as usize] = c;
        max_color = max_color.max(c);
        any = true;
    }
    Coloring {
        colors,
        num_colors: if any { max_color as usize + 1 } else { 0 },
    }
}

/// Colors the graph processing vertices in the given order.
pub fn greedy_coloring_in_order(g: &AttributedGraph, order: &[VertexId]) -> Coloring {
    let n = g.num_vertices();
    let mut colors = vec![u32::MAX; n];
    let mut used = Vec::new();
    let mut max_color = 0u32;
    for &v in order {
        used.clear();
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if c != u32::MAX {
                used.push(c);
            }
        }
        let c = smallest_absent(&mut used);
        colors[v as usize] = c;
        max_color = max_color.max(c);
    }
    // Any vertex not covered by `order` (callers normally pass all vertices) gets a
    // fresh color of its own to keep the coloring proper.
    for color in colors.iter_mut() {
        if *color == u32::MAX {
            max_color += 1;
            *color = max_color;
        }
    }
    let num_colors = if n == 0 { 0 } else { max_color as usize + 1 };
    Coloring { colors, num_colors }
}

/// Vertices sorted by non-increasing degree (ties by id) — the order used by the
/// degree-based greedy coloring of the paper.
pub fn degree_descending_order(g: &AttributedGraph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    order
}

/// Smallest non-negative integer not present in `used` (which is clobbered/sorted).
fn smallest_absent(used: &mut Vec<u32>) -> u32 {
    used.sort_unstable();
    used.dedup();
    let mut c = 0u32;
    for &x in used.iter() {
        if x == c {
            c += 1;
        } else if x > c {
            break;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn smallest_absent_works() {
        assert_eq!(smallest_absent(&mut vec![]), 0);
        assert_eq!(smallest_absent(&mut vec![0, 1, 2]), 3);
        assert_eq!(smallest_absent(&mut vec![1, 2]), 0);
        assert_eq!(smallest_absent(&mut vec![0, 2, 3]), 1);
        assert_eq!(smallest_absent(&mut vec![2, 0, 0, 1, 5]), 3);
    }

    #[test]
    fn coloring_of_clique_uses_n_colors() {
        let g = fixtures::balanced_clique(7);
        let c = greedy_coloring(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors, 7);
    }

    #[test]
    fn coloring_of_path_uses_two_colors() {
        let g = fixtures::path_graph(10);
        let c = greedy_coloring(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn coloring_of_fig1_is_proper_and_at_least_clique_size() {
        let g = fixtures::fig1_graph();
        let c = greedy_coloring(&g);
        assert!(c.is_proper(&g));
        // Contains an 8-clique, so at least 8 colors are necessary.
        assert!(c.num_colors >= 8);
        // Greedy never exceeds max degree + 1.
        assert!(c.num_colors <= g.max_degree() + 1);
    }

    #[test]
    fn coloring_is_deterministic() {
        let g = fixtures::fig1_graph();
        assert_eq!(greedy_coloring(&g), greedy_coloring(&g));
    }

    #[test]
    fn empty_graph_coloring() {
        let g = crate::builder::GraphBuilder::new(0).build().unwrap();
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors, 0);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn isolated_vertices_all_get_color_zero() {
        let g = crate::builder::GraphBuilder::new(4).build().unwrap();
        let c = greedy_coloring(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors, 1);
    }

    #[test]
    fn subset_coloring_only_colors_subset_and_is_proper_on_it() {
        let g = fixtures::fig1_graph();
        let subset: Vec<u32> = vec![6, 7, 9, 10, 11, 12, 13, 14];
        let c = greedy_coloring_of_subset(&g, &subset);
        // The subset is an 8-clique: exactly 8 colors, all distinct.
        assert_eq!(c.num_colors, 8);
        let mut seen: Vec<u32> = subset.iter().map(|&v| c.color(v)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8);
        // Vertices outside the subset keep the invalid marker.
        assert_eq!(c.color(0), u32::MAX);
    }

    #[test]
    fn is_proper_rejects_bad_colorings() {
        let g = fixtures::path_graph(3);
        let bad = Coloring {
            colors: vec![0, 0, 1],
            num_colors: 2,
        };
        assert!(!bad.is_proper(&g));
        let wrong_len = Coloring {
            colors: vec![0, 1],
            num_colors: 2,
        };
        assert!(!wrong_len.is_proper(&g));
        let out_of_range = Coloring {
            colors: vec![0, 1, 5],
            num_colors: 2,
        };
        assert!(!out_of_range.is_proper(&g));
    }
}
