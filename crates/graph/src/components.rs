//! Connected components.
//!
//! The branch-and-bound framework (Algorithm 2) runs one search per connected component
//! of the reduced graph, and the reductions can disconnect the graph, so component
//! extraction is on the hot path between reduction and search.

use crate::graph::{AttributedGraph, VertexId};

/// A partition of the vertices into connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component id of each vertex (dense, `0..num_components`).
    pub labels: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
}

impl Components {
    /// The vertices of component `c`, in increasing id order.
    pub fn vertices_of(&self, c: u32) -> Vec<VertexId> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(v, &l)| (l == c).then_some(v as VertexId))
            .collect()
    }

    /// All components as vertex lists, ordered by component id.
    pub fn all(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_components];
        for (v, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(v as VertexId);
        }
        out
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest_size(&self) -> usize {
        self.all().iter().map(|c| c.len()).max().unwrap_or(0)
    }
}

/// Labels the connected components of `g` with an iterative BFS.
pub fn connected_components(g: &AttributedGraph) -> Components {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    Components {
        labels,
        num_components: next as usize,
    }
}

/// Connected components restricted to a vertex subset: only vertices in `subset` are
/// labeled and only edges with both endpoints in `subset` are traversed. Returns the
/// components as vertex lists (each sorted by id), skipping vertices outside `subset`.
pub fn components_of_subset(g: &AttributedGraph, subset: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut in_set = vec![false; g.num_vertices()];
    for &v in subset {
        in_set[v as usize] = true;
    }
    let mut visited = vec![false; g.num_vertices()];
    let mut out = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for &start in subset {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        let mut comp = Vec::new();
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for &u in g.neighbors(v) {
                if in_set[u as usize] && !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::fixtures;

    #[test]
    fn single_component_graph() {
        let g = fixtures::fig1_graph();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 1);
        assert_eq!(c.largest_size(), 15);
    }

    #[test]
    fn disconnected_graph() {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (3, 4)]);
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(c.vertices_of(c.labels[0]), vec![0, 1, 2]);
        assert_eq!(c.vertices_of(c.labels[3]), vec![3, 4]);
        assert_eq!(c.vertices_of(c.labels[5]), vec![5]);
        assert_eq!(c.largest_size(), 3);
        let all = c.all();
        assert_eq!(all.iter().map(|x| x.len()).sum::<usize>(), 6);
    }

    #[test]
    fn empty_graph_components() {
        let g = GraphBuilder::new(0).build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 0);
        assert_eq!(c.largest_size(), 0);
    }

    #[test]
    fn subset_components_ignore_outside_vertices() {
        // Path 0-1-2-3-4; subset {0, 1, 3, 4} splits into {0,1} and {3,4} because 2 is
        // excluded.
        let g = fixtures::path_graph(5);
        let comps = components_of_subset(&g, &[0, 1, 3, 4]);
        assert_eq!(comps, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn subset_components_of_bridge_graph() {
        let g = fixtures::two_cliques_with_bridge(3, 3);
        // Excluding the bridge endpoints separates nothing extra here; full subset is
        // one component because of the bridge edge (2,3).
        let comps = components_of_subset(&g, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(comps.len(), 1);
        // Dropping a bridge endpoint splits it.
        let comps = components_of_subset(&g, &[0, 1, 3, 4, 5]);
        assert_eq!(comps.len(), 2);
    }
}
