//! Classic core decomposition, degeneracy and the graph h-index.
//!
//! These provide the `ub△` (degeneracy) and `ubh` (h-index) upper bounds of Lemmas 10
//! and 11, the `(|R*| − 1)`-core pruning inside the heuristic framework `HeurRFC`
//! (Algorithm 6), and the degeneracy ordering used by the Bron–Kerbosch baseline.

use crate::graph::{AttributedGraph, VertexId};

/// Result of a full core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// Core number of every vertex.
    pub core_numbers: Vec<u32>,
    /// The degeneracy of the graph: the maximum core number (0 for an empty graph).
    pub degeneracy: u32,
    /// A degeneracy ordering: the order in which vertices were peeled (smallest core
    /// first). Iterating this order, every vertex has at most `degeneracy` neighbors
    /// later in the order.
    pub order: Vec<VertexId>,
}

/// Computes core numbers, degeneracy and a degeneracy ordering with the linear-time
/// bucket peeling algorithm of Batagelj–Zaveršnik (`O(|V| + |E|)`).
pub fn core_decomposition(g: &AttributedGraph) -> CoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            core_numbers: Vec::new(),
            degeneracy: 0,
            order: Vec::new(),
        };
    }
    let mut degree: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap_or(&0);

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as VertexId; n];
    {
        let mut next = bin.clone();
        for v in 0..n {
            pos[v] = next[degree[v]];
            vert[pos[v]] = v as VertexId;
            next[degree[v]] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize] as u32;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v as usize] {
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u as u32 != w {
                    pos[u] = pw;
                    pos[w as usize] = pu;
                    vert[pu] = w;
                    vert[pw] = u as VertexId;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }

    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core_numbers: core,
        degeneracy,
        order: vert,
    }
}

/// The degeneracy of the graph (maximum core number).
pub fn degeneracy(g: &AttributedGraph) -> u32 {
    core_decomposition(g).degeneracy
}

/// Vertices of the k-core of `g`: the maximal set of vertices whose induced subgraph
/// has minimum degree ≥ `k`. Returned as a membership mask indexed by vertex id.
pub fn k_core_mask(g: &AttributedGraph, k: usize) -> Vec<bool> {
    let decomp = core_decomposition(g);
    decomp
        .core_numbers
        .iter()
        .map(|&c| c as usize >= k)
        .collect()
}

/// Vertices of the k-core, as a sorted vertex list.
pub fn k_core_vertices(g: &AttributedGraph, k: usize) -> Vec<VertexId> {
    k_core_mask(g, k)
        .iter()
        .enumerate()
        .filter_map(|(v, &keep)| keep.then_some(v as VertexId))
        .collect()
}

/// The h-index of the graph (Lemma 11): the largest `h` such that at least `h` vertices
/// have degree ≥ `h`.
pub fn graph_h_index(g: &AttributedGraph) -> usize {
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    h_index_of(&degrees)
}

/// The h-index of an arbitrary sequence of values: the largest `h` such that at least
/// `h` entries are ≥ `h`. Runs in `O(len)` using a counting pass.
pub fn h_index_of(values: &[usize]) -> usize {
    let n = values.len();
    if n == 0 {
        return 0;
    }
    // counts[i] = number of entries with value exactly i (values > n count as n).
    let mut counts = vec![0usize; n + 1];
    for &v in values {
        counts[v.min(n)] += 1;
    }
    let mut at_least = 0usize;
    for h in (0..=n).rev() {
        at_least += counts[h];
        if at_least >= h {
            return h;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::fixtures;

    #[test]
    fn h_index_of_sequences() {
        assert_eq!(h_index_of(&[]), 0);
        assert_eq!(h_index_of(&[0, 0, 0]), 0);
        assert_eq!(h_index_of(&[1, 1, 1]), 1);
        assert_eq!(h_index_of(&[5, 4, 3, 2, 1]), 3);
        assert_eq!(h_index_of(&[10, 10, 10]), 3);
        assert_eq!(h_index_of(&[3, 3, 3, 3]), 3);
    }

    #[test]
    fn clique_core_numbers() {
        let g = fixtures::balanced_clique(6);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 5);
        assert!(d.core_numbers.iter().all(|&c| c == 5));
        assert_eq!(graph_h_index(&g), 5);
    }

    #[test]
    fn path_core_numbers() {
        let g = fixtures::path_graph(6);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core_numbers.iter().all(|&c| c == 1));
    }

    #[test]
    fn fig1_degeneracy_is_clique_minus_one() {
        let g = fixtures::fig1_graph();
        let d = core_decomposition(&g);
        // The densest part is the 8-clique, so degeneracy = 7.
        assert_eq!(d.degeneracy, 7);
        // Each clique vertex has core number 7.
        for v in [6u32, 7, 9, 10, 11, 12, 13, 14] {
            assert_eq!(d.core_numbers[v as usize], 7);
        }
    }

    #[test]
    fn degeneracy_order_property() {
        // In a degeneracy order, every vertex has at most `degeneracy` neighbors that
        // appear later in the order.
        let g = fixtures::fig1_graph();
        let d = core_decomposition(&g);
        let mut rank = vec![0usize; g.num_vertices()];
        for (i, &v) in d.order.iter().enumerate() {
            rank[v as usize] = i;
        }
        for v in g.vertices() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| rank[u as usize] > rank[v as usize])
                .count();
            assert!(later <= d.degeneracy as usize);
        }
        // The order is a permutation.
        let mut sorted = d.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.num_vertices() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn k_core_peels_pendants() {
        // Triangle with a pendant: 2-core is the triangle.
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let g = b.build().unwrap();
        assert_eq!(k_core_vertices(&g, 2), vec![0, 1, 2]);
        assert_eq!(k_core_vertices(&g, 1), vec![0, 1, 2, 3]);
        assert_eq!(k_core_vertices(&g, 3), Vec::<u32>::new());
    }

    #[test]
    fn empty_graph_core() {
        let g = GraphBuilder::new(0).build().unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
        assert_eq!(graph_h_index(&g), 0);
    }

    #[test]
    fn core_numbers_monotone_under_k() {
        let g = fixtures::two_cliques_with_bridge(5, 3);
        for k in 0..6 {
            let inner = k_core_vertices(&g, k + 1);
            let outer = k_core_vertices(&g, k);
            // k-cores are nested.
            assert!(inner.iter().all(|v| outer.contains(v)));
        }
    }
}
